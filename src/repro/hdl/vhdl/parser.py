"""Recursive-descent parser for the uVHDL subset.

Entity/architecture pairs become :class:`repro.hdl.ast.Module` instances
(named after the entity).  VHDL constructs map onto the shared AST:

===============================  =====================================
VHDL                             shared AST
===============================  =====================================
generic                          ParamDecl
constant                         ParamDecl(local=True)
signal                           SignalDecl
array type + signal              SignalDecl(depth=...)
concurrent assignment            ContinuousAssign
conditional/selected assignment  ContinuousAssign of nested Ternary
process (clocked)                ProcessBlock(kind="seq")
process (combinational)          ProcessBlock(kind="comb")
component / entity instantiation Instance
for ... generate                 GenerateFor
if ... generate                  GenerateIf
===============================  =====================================

Clock-edge detection understands both ``rising_edge(clk)`` and
``clk'event and clk = '1'``.  A process with an asynchronous reset branch
(`if rst then ... elsif rising_edge(clk)`) is accepted and treated as a
synchronously-reset register, which is metric-equivalent for this
package's purposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hdl import ast
from repro.hdl.source import HdlSyntaxError, SourceFile
from repro.hdl.vhdl.lexer import BITSTRING, CHAR, EOF, ID, NUMBER, OP, Token, tokenize

#: Function names stripped as bit-level identities.
_TRANSPARENT_FUNCTIONS = {
    "to_integer", "unsigned", "signed", "std_logic_vector",
    "to_stdlogicvector", "conv_integer", "to_01", "std_ulogic_vector",
}
#: Functions whose second argument is a target width.
_RESIZE_FUNCTIONS = {"to_unsigned", "to_signed", "resize", "conv_std_logic_vector"}

#: Frontend revision.  Part of the on-disk cache salt (:mod:`repro.cache`):
#: bump whenever parsing changes the AST produced for accepted sources.
PARSER_VERSION = 1

_VHDL_BINARY_TO_AST = {
    "and": "&", "or": "|", "xor": "^", "nand": "~&", "nor": "~|",
    "=": "==", "/=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "sll": "<<", "srl": ">>", "+": "+", "-": "-", "*": "*",
    "/": "/", "mod": "%", "rem": "%",
}


@dataclass
class _Type:
    kind: str  # "scalar" | "vector" | "array"
    msb: ast.Expr | None = None
    lsb: ast.Expr | None = None
    depth: ast.Expr | None = None  # for arrays: number of words


class _Parser:
    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0
        self.entities: dict[str, tuple[tuple[ast.PortDecl, ...], tuple[ast.ParamDecl, ...]]] = {}
        self.array_types: dict[str, _Type] = {}

    # -- token plumbing ------------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def check(self, value: str) -> bool:
        tok = self.peek()
        return tok.kind in (ID, OP) and tok.value == value

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            tok = self.peek()
            raise HdlSyntaxError(
                f"expected {value!r}, found {tok.value or 'end of file'!r}",
                self.source.name, tok.line,
            )
        return self.advance()

    def expect_id(self) -> Token:
        tok = self.peek()
        if tok.kind != ID:
            raise HdlSyntaxError(
                f"expected identifier, found {tok.value or 'end of file'!r}",
                self.source.name, tok.line,
            )
        return self.advance()

    def fail(self, message: str) -> HdlSyntaxError:
        return HdlSyntaxError(message, self.source.name, self.peek().line)

    def _skip_to_semicolon(self) -> None:
        while not self.accept(";"):
            if self.peek().kind == EOF:
                raise self.fail("unexpected end of file")
            self.advance()

    # -- top level ------------------------------------------------------------

    def parse_design(self) -> ast.Design:
        design = ast.Design()
        while self.peek().kind != EOF:
            tok = self.peek()
            if tok.value in ("library", "use"):
                self._skip_to_semicolon()
            elif tok.value == "entity":
                self._parse_entity()
            elif tok.value == "architecture":
                design.add(self._parse_architecture())
            elif tok.value == "package":
                self._skip_package()
            else:
                raise self.fail(f"unexpected token {tok.value!r} at design level")
        return design

    def _skip_package(self) -> None:
        self.expect("package")
        while not (self.check("end")):
            if self.peek().kind == EOF:
                raise self.fail("unterminated package")
            self.advance()
        self.expect("end")
        self._skip_to_semicolon()

    def _parse_entity(self) -> None:
        self.expect("entity")
        name = self.expect_id().value
        self.expect("is")
        params: list[ast.ParamDecl] = []
        ports: list[ast.PortDecl] = []
        if self.accept("generic"):
            self.expect("(")
            params.extend(self._parse_generic_decls())
            self.expect(")")
            self.expect(";")
        if self.accept("port"):
            self.expect("(")
            ports.extend(self._parse_port_decls())
            self.expect(")")
            self.expect(";")
        self.expect("end")
        self.accept("entity")
        if self.peek().kind == ID:
            self.advance()
        self.expect(";")
        self.entities[name] = (tuple(ports), tuple(params))

    def _parse_generic_decls(self) -> list[ast.ParamDecl]:
        decls: list[ast.ParamDecl] = []
        while True:
            names = [self.expect_id().value]
            while self.accept(","):
                names.append(self.expect_id().value)
            self.expect(":")
            self._parse_type()  # generic type (integer/natural/positive)
            default: ast.Expr = ast.Number(1)
            if self.accept(":="):
                default = self.parse_expr()
            decls.extend(ast.ParamDecl(n, default) for n in names)
            if not self.accept(";"):
                break
        return decls

    def _parse_port_decls(self) -> list[ast.PortDecl]:
        ports: list[ast.PortDecl] = []
        while True:
            names = [self.expect_id().value]
            while self.accept(","):
                names.append(self.expect_id().value)
            self.expect(":")
            direction = self.expect_id().value
            if direction == "buffer":
                direction = "out"
            if direction not in ("in", "out", "inout"):
                raise self.fail(f"bad port direction {direction!r}")
            direction = {"in": "input", "out": "output", "inout": "inout"}[direction]
            ptype = self._parse_type()
            if ptype.kind == "array":
                raise self.fail("array types are not allowed on ports")
            for n in names:
                ports.append(ast.PortDecl(n, direction, ptype.msb, ptype.lsb))
            if not self.accept(";"):
                break
        return ports

    def _parse_type(self) -> _Type:
        name = self.expect_id().value
        if name in ("std_logic", "std_ulogic", "bit", "boolean"):
            return _Type("scalar")
        if name in ("std_logic_vector", "std_ulogic_vector", "unsigned", "signed",
                    "bit_vector"):
            self.expect("(")
            first = self.parse_expr()
            direction = self.expect_id().value
            second = self.parse_expr()
            self.expect(")")
            if direction == "downto":
                msb, lsb = first, second
            elif direction == "to":
                msb, lsb = second, first
            else:
                raise self.fail(f"expected downto/to, found {direction!r}")
            return _Type("vector", msb, lsb)
        if name in ("integer", "natural", "positive"):
            if self.accept("range"):
                self.parse_expr()
                self.expect_id()  # to / downto
                self.parse_expr()
            return _Type("vector", ast.Number(31), ast.Number(0))
        if name in self.array_types:
            return self.array_types[name]
        raise self.fail(f"unknown type {name!r}")

    def _parse_architecture(self) -> ast.Module:
        self.expect("architecture")
        self.expect_id()  # architecture name
        self.expect("of")
        entity_name = self.expect_id().value
        self.expect("is")
        if entity_name not in self.entities:
            raise self.fail(
                f"architecture references unknown entity {entity_name!r}"
            )
        ports, params = self.entities[entity_name]
        items: list[ast.Item] = list(params)
        self._parse_declarations(items)
        self.expect("begin")
        while not self.check("end"):
            self._parse_concurrent(items)
        self.expect("end")
        self.accept("architecture")
        if self.peek().kind == ID:
            self.advance()
        self.expect(";")
        return ast.Module(
            name=entity_name,
            ports=ports,
            items=tuple(items),
            language="vhdl",
            source_name=self.source.name,
        )

    def _parse_declarations(self, items: list[ast.Item]) -> None:
        while True:
            tok = self.peek()
            if tok.value == "signal":
                self.advance()
                names = [self.expect_id().value]
                while self.accept(","):
                    names.append(self.expect_id().value)
                self.expect(":")
                stype = self._parse_type()
                if self.accept(":="):
                    self.parse_expr()  # initial value: ignored for synthesis
                self.expect(";")
                for n in names:
                    if stype.kind == "array":
                        items.append(
                            ast.SignalDecl(n, stype.msb, stype.lsb, stype.depth)
                        )
                    else:
                        items.append(ast.SignalDecl(n, stype.msb, stype.lsb))
            elif tok.value == "constant":
                self.advance()
                name = self.expect_id().value
                self.expect(":")
                self._parse_type()
                self.expect(":=")
                items.append(ast.ParamDecl(name, self.parse_expr(), local=True))
                self.expect(";")
            elif tok.value == "type":
                self._parse_type_decl()
            elif tok.value == "component":
                self._skip_component_decl()
            elif tok.value in ("attribute", "subtype"):
                self._skip_to_semicolon()
            else:
                return

    def _parse_type_decl(self) -> None:
        self.expect("type")
        name = self.expect_id().value
        self.expect("is")
        self.expect("array")
        self.expect("(")
        first = self.parse_expr()
        direction = self.expect_id().value
        second = self.parse_expr()
        self.expect(")")
        self.expect("of")
        elem = self._parse_type()
        self.expect(";")
        if elem.kind == "array":
            raise self.fail("nested array types are not supported")
        if direction == "to":
            lo, hi = first, second
        elif direction == "downto":
            lo, hi = second, first
        else:
            raise self.fail(f"expected to/downto, found {direction!r}")
        depth = ast.Binary("+", ast.Binary("-", hi, lo), ast.Number(1))
        self.array_types[name] = _Type("array", elem.msb, elem.lsb, depth)

    def _skip_component_decl(self) -> None:
        self.expect("component")
        while not self.check("end"):
            if self.peek().kind == EOF:
                raise self.fail("unterminated component declaration")
            self.advance()
        self.expect("end")
        self.expect("component")
        if self.peek().kind == ID:
            self.advance()
        self.expect(";")

    # -- concurrent statements --------------------------------------------------

    def _parse_concurrent(self, items: list[ast.Item]) -> None:
        tok = self.peek()
        if tok.value == "process":
            items.append(self._parse_process())
            return
        if tok.value == "with":
            items.append(self._parse_selected_assign())
            return
        # Labeled statement?
        if tok.kind == ID and self.peek(1).kind == OP and self.peek(1).value == ":":
            label = self.advance().value
            self.expect(":")
            nxt = self.peek()
            if nxt.value == "process":
                items.append(self._parse_process())
            elif nxt.value == "for":
                items.append(self._parse_generate_for(label))
            elif nxt.value == "if":
                items.append(self._parse_generate_if())
            else:
                items.append(self._parse_instance(label))
            return
        # Plain concurrent signal assignment.
        line = tok.line
        target = self._parse_name()
        self.expect("<=")
        value = self._parse_waveform()
        self.expect(";")
        items.append(ast.ContinuousAssign(target, value, line))

    def _parse_waveform(self) -> ast.Expr:
        """``e1 [when c1 else e2 [when c2 else e3 ...]]`` -> nested Ternary."""
        value = self.parse_expr()
        if self.accept("when"):
            cond = self.parse_expr()
            self.expect("else")
            other = self._parse_waveform()
            return ast.Ternary(cond, value, other)
        return value

    def _parse_selected_assign(self) -> ast.ContinuousAssign:
        line = self.expect("with").line
        subject = self.parse_expr()
        self.expect("select")
        target = self._parse_name()
        self.expect("<=")
        arms: list[tuple[list[ast.Expr], ast.Expr]] = []
        default: ast.Expr | None = None
        while True:
            value = self.parse_expr()
            self.expect("when")
            if self.accept("others"):
                default = value
            else:
                choices = [self.parse_expr()]
                while self.accept("|"):
                    choices.append(self.parse_expr())
                arms.append((choices, value))
            if not self.accept(","):
                break
        self.expect(";")
        if default is None:
            raise self.fail("selected assignment needs a 'when others' arm")
        result = default
        for choices, value in reversed(arms):
            cond: ast.Expr | None = None
            for choice in choices:
                eq = ast.Binary("==", subject, choice)
                cond = eq if cond is None else ast.Binary("|", cond, eq)
            assert cond is not None
            result = ast.Ternary(cond, value, result)
        return ast.ContinuousAssign(target, result, line)

    def _parse_instance(self, label: str) -> ast.Instance:
        line = self.peek().line
        if self.accept("entity"):
            # direct instantiation: entity work.name
            self.expect_id()  # library (work)
            self.expect(".")
            module_name = self.expect_id().value
        else:
            self.accept("component")
            module_name = self.expect_id().value
        param_overrides: list[tuple[str, ast.Expr]] = []
        connections: list[tuple[str, ast.Expr]] = []
        if self.accept("generic"):
            self.expect("map")
            self.expect("(")
            param_overrides = self._parse_association_list()
            self.expect(")")
        if self.accept("port"):
            self.expect("map")
            self.expect("(")
            connections = self._parse_association_list()
            self.expect(")")
        self.expect(";")
        return ast.Instance(
            module_name=module_name,
            name=label,
            connections=tuple(connections),
            param_overrides=tuple(param_overrides),
            line=line,
        )

    def _parse_association_list(self) -> list[tuple[str, ast.Expr]]:
        assocs: list[tuple[str, ast.Expr]] = []
        while True:
            if (
                self.peek().kind == ID
                and self.peek(1).kind == OP
                and self.peek(1).value == "=>"
            ):
                name = self.advance().value
                self.expect("=>")
                if self.accept("open"):
                    pass  # unconnected output
                else:
                    assocs.append((name, self.parse_expr()))
            else:
                if self.accept("open"):
                    raise self.fail("positional 'open' association is ambiguous")
                assocs.append(("", self.parse_expr()))
            if not self.accept(","):
                break
        return assocs

    def _parse_generate_for(self, label: str) -> ast.GenerateFor:
        line = self.expect("for").line
        var = self.expect_id().value
        self.expect("in")
        start = self.parse_expr()
        self.expect("to")
        stop = self.parse_expr()
        self.expect("generate")
        body: list[ast.Item] = []
        self._parse_declarations(body)
        self.accept("begin")
        while not self.check("end"):
            self._parse_concurrent(body)
        self.expect("end")
        self.expect("generate")
        if self.peek().kind == ID:
            self.advance()
        self.expect(";")
        return ast.GenerateFor(
            var=var,
            start=start,
            cond=ast.Binary("<=", ast.Ident(var), stop),
            step=ast.Binary("+", ast.Ident(var), ast.Number(1)),
            body=tuple(body),
            label=label,
            line=line,
        )

    def _parse_generate_if(self) -> ast.GenerateIf:
        line = self.expect("if").line
        cond = self.parse_expr()
        self.expect("generate")
        body: list[ast.Item] = []
        self._parse_declarations(body)
        self.accept("begin")
        while not self.check("end"):
            self._parse_concurrent(body)
        self.expect("end")
        self.expect("generate")
        if self.peek().kind == ID:
            self.advance()
        self.expect(";")
        return ast.GenerateIf(cond, tuple(body), (), line)

    # -- processes ----------------------------------------------------------------

    def _parse_process(self) -> ast.ProcessBlock:
        line = self.expect("process").line
        if self.accept("("):
            if not self.check(")"):
                self.expect_id()
                while self.accept(","):
                    self.expect_id()
            self.expect(")")
        if self.check("variable"):
            raise self.fail("process variables are outside the uVHDL subset")
        self.expect("begin")
        stmts: list[ast.Stmt] = []
        while not self.check("end"):
            stmt = self._parse_statement()
            if stmt is not None:
                stmts.append(stmt)
        self.expect("end")
        self.expect("process")
        if self.peek().kind == ID:
            self.advance()
        self.expect(";")
        return self._classify_process(tuple(stmts), line)

    def _classify_process(
        self, stmts: tuple[ast.Stmt, ...], line: int
    ) -> ast.ProcessBlock:
        """Detect the clocked-process idioms and strip the edge test."""
        if len(stmts) == 1 and isinstance(stmts[0], ast.If):
            top = stmts[0]
            clock = _clock_of(top.cond)
            if clock is not None and not top.else_body:
                return ast.ProcessBlock("seq", top.then_body, clock, line)
            # Async-reset idiom: if reset then ... elsif rising_edge(clk) ...
            if (
                not _mentions_clock(top.cond)
                and len(top.else_body) == 1
                and isinstance(top.else_body[0], ast.If)
            ):
                inner = top.else_body[0]
                clock = _clock_of(inner.cond)
                if clock is not None and not inner.else_body:
                    body: tuple[ast.Stmt, ...] = (
                        ast.If(top.cond, top.then_body, inner.then_body, top.line),
                    )
                    return ast.ProcessBlock("seq", body, clock, line)
        return ast.ProcessBlock("comb", stmts, None, line)

    # -- sequential statements -------------------------------------------------------

    def _parse_statement(self) -> ast.Stmt | None:
        tok = self.peek()
        if tok.value == "if":
            return self._parse_if()
        if tok.value == "case":
            return self._parse_case()
        if tok.value == "for":
            return self._parse_for()
        if tok.value == "null":
            self.advance()
            self.expect(";")
            return None
        line = tok.line
        target = self._parse_name()
        self.expect("<=")
        value = self.parse_expr()
        self.expect(";")
        return ast.Assign(target, value, blocking=False, line=line)

    def _parse_if(self) -> ast.If:
        line = self.expect("if").line
        cond = self.parse_expr()
        self.expect("then")
        then_body: list[ast.Stmt] = []
        while not (self.check("elsif") or self.check("else") or self.check("end")):
            stmt = self._parse_statement()
            if stmt is not None:
                then_body.append(stmt)
        else_body: tuple[ast.Stmt, ...] = ()
        if self.check("elsif"):
            self.advance()
            # Re-enter as a nested if sharing the same 'end if'.
            nested = self._parse_elsif_chain()
            else_body = (nested,)
        elif self.accept("else"):
            body: list[ast.Stmt] = []
            while not self.check("end"):
                stmt = self._parse_statement()
                if stmt is not None:
                    body.append(stmt)
            else_body = tuple(body)
            self.expect("end")
            self.expect("if")
            self.expect(";")
            return ast.If(cond, tuple(then_body), else_body, line)
        if not else_body:
            self.expect("end")
            self.expect("if")
            self.expect(";")
        return ast.If(cond, tuple(then_body), else_body, line)

    def _parse_elsif_chain(self) -> ast.If:
        line = self.peek().line
        cond = self.parse_expr()
        self.expect("then")
        then_body: list[ast.Stmt] = []
        while not (self.check("elsif") or self.check("else") or self.check("end")):
            stmt = self._parse_statement()
            if stmt is not None:
                then_body.append(stmt)
        else_body: tuple[ast.Stmt, ...] = ()
        if self.accept("elsif"):
            else_body = (self._parse_elsif_chain(),)
            return ast.If(cond, tuple(then_body), else_body, line)
        if self.accept("else"):
            body: list[ast.Stmt] = []
            while not self.check("end"):
                stmt = self._parse_statement()
                if stmt is not None:
                    body.append(stmt)
            else_body = tuple(body)
        self.expect("end")
        self.expect("if")
        self.expect(";")
        return ast.If(cond, tuple(then_body), else_body, line)

    def _parse_case(self) -> ast.Case:
        line = self.expect("case").line
        subject = self.parse_expr()
        self.expect("is")
        arms: list[ast.CaseItem] = []
        while self.check("when"):
            self.advance()
            choices: tuple[ast.Expr, ...] = ()
            if not self.accept("others"):
                choice_list = [self.parse_expr()]
                while self.accept("|"):
                    choice_list.append(self.parse_expr())
                choices = tuple(choice_list)
            self.expect("=>")
            body: list[ast.Stmt] = []
            while not (self.check("when") or self.check("end")):
                stmt = self._parse_statement()
                if stmt is not None:
                    body.append(stmt)
            arms.append(ast.CaseItem(choices, tuple(body)))
        self.expect("end")
        self.expect("case")
        self.expect(";")
        return ast.Case(subject, tuple(arms), line)

    def _parse_for(self) -> ast.For:
        line = self.expect("for").line
        var = self.expect_id().value
        self.expect("in")
        start = self.parse_expr()
        self.expect("to")
        stop = self.parse_expr()
        self.expect("loop")
        body: list[ast.Stmt] = []
        while not self.check("end"):
            stmt = self._parse_statement()
            if stmt is not None:
                body.append(stmt)
        self.expect("end")
        self.expect("loop")
        self.expect(";")
        return ast.For(
            var=var,
            start=start,
            cond=ast.Binary("<=", ast.Ident(var), stop),
            step=ast.Binary("+", ast.Ident(var), ast.Number(1)),
            body=tuple(body),
            line=line,
        )

    # -- expressions ---------------------------------------------------------------

    def _parse_name(self) -> ast.Expr:
        """A signal name with optional index/slice, as an lvalue."""
        name = self.expect_id().value
        expr: ast.Expr = ast.Ident(name)
        while self.check("("):
            self.advance()
            first = self.parse_expr()
            if self.check("downto") or self.check("to"):
                direction = self.advance().value
                second = self.parse_expr()
                self.expect(")")
                if direction == "downto":
                    expr = ast.PartSelect(expr, first, second)
                else:
                    expr = ast.PartSelect(expr, second, first)
            else:
                self.expect(")")
                expr = ast.Select(expr, first)
        return expr

    def parse_expr(self) -> ast.Expr:
        return self._parse_logical()

    def _parse_logical(self) -> ast.Expr:
        lhs = self._parse_relational()
        while self.peek().kind == ID and self.peek().value in (
            "and", "or", "xor", "nand", "nor",
        ):
            op = self.advance().value
            rhs = self._parse_relational()
            mapped = _VHDL_BINARY_TO_AST[op]
            if mapped.startswith("~"):
                lhs = ast.Unary("~", ast.Binary(mapped[1:], lhs, rhs))
            else:
                lhs = ast.Binary(mapped, lhs, rhs)
        return lhs

    def _parse_relational(self) -> ast.Expr:
        lhs = self._parse_shift()
        while self.peek().kind == OP and self.peek().value in (
            "=", "/=", "<", "<=", ">", ">=",
        ):
            op = self.advance().value
            rhs = self._parse_shift()
            lhs = ast.Binary(_VHDL_BINARY_TO_AST[op], lhs, rhs)
        return lhs

    def _parse_shift(self) -> ast.Expr:
        lhs = self._parse_adding()
        while self.peek().kind == ID and self.peek().value in ("sll", "srl"):
            op = self.advance().value
            rhs = self._parse_adding()
            lhs = ast.Binary(_VHDL_BINARY_TO_AST[op], lhs, rhs)
        return lhs

    def _parse_adding(self) -> ast.Expr:
        lhs = self._parse_multiplying()
        while True:
            tok = self.peek()
            if tok.kind == OP and tok.value in ("+", "-"):
                op = self.advance().value
                lhs = ast.Binary(op, lhs, self._parse_multiplying())
            elif tok.kind == OP and tok.value == "&":
                self.advance()
                rhs = self._parse_multiplying()
                # VHDL & is concatenation (left part is more significant).
                if isinstance(lhs, ast.Concat):
                    lhs = ast.Concat(lhs.parts + (rhs,))
                else:
                    lhs = ast.Concat((lhs, rhs))
            else:
                return lhs

    def _parse_multiplying(self) -> ast.Expr:
        lhs = self._parse_unary()
        while (
            self.peek().kind == OP and self.peek().value in ("*", "/")
        ) or (
            self.peek().kind == ID and self.peek().value in ("mod", "rem")
        ):
            op = self.advance().value
            lhs = ast.Binary(_VHDL_BINARY_TO_AST[op], lhs, self._parse_unary())
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == ID and tok.value == "not":
            self.advance()
            return ast.Unary("~", self._parse_unary())
        if tok.kind == OP and tok.value == "-":
            self.advance()
            return ast.Unary("-", self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind in (NUMBER, BITSTRING, CHAR):
            self.advance()
            return ast.Number(tok.int_value, tok.width)
        if tok.kind == OP and tok.value == "(":
            self.advance()
            if self.check("others"):
                self.advance()
                self.expect("=>")
                value = self.parse_expr()
                self.expect(")")
                return ast.Others(value)
            expr = self.parse_expr()
            self.expect(")")
            return self._parse_index_suffix(expr)
        if tok.kind == ID:
            return self._parse_name_or_call()
        raise self.fail(f"unexpected token {tok.value!r} in expression")

    def _parse_name_or_call(self) -> ast.Expr:
        name = self.expect_id().value
        # Attribute: clk'event
        if self.check("'"):
            self.advance()
            attr = self.expect_id().value
            if attr == "event":
                return ast.Unary("@event", ast.Ident(name))
            raise self.fail(f"unsupported attribute '{attr}")
        if name == "rising_edge" and self.check("("):
            self.advance()
            clock = self.expect_id().value
            self.expect(")")
            return ast.Unary("@rising", ast.Ident(clock))
        if name in _RESIZE_FUNCTIONS and self.check("("):
            self.advance()
            value = self.parse_expr()
            self.expect(",")
            width = self.parse_expr()
            self.expect(")")
            return ast.Resize(value, width)
        if name in _TRANSPARENT_FUNCTIONS and self.check("("):
            self.advance()
            inner = self.parse_expr()
            self.expect(")")
            return self._parse_index_suffix(inner)
        expr: ast.Expr = ast.Ident(name)
        return self._parse_index_suffix(expr)

    def _parse_index_suffix(self, expr: ast.Expr) -> ast.Expr:
        while self.check("("):
            self.advance()
            first = self.parse_expr()
            if self.check("downto") or self.check("to"):
                direction = self.advance().value
                second = self.parse_expr()
                self.expect(")")
                if direction == "downto":
                    expr = ast.PartSelect(expr, first, second)
                else:
                    expr = ast.PartSelect(expr, second, first)
            else:
                self.expect(")")
                expr = ast.Select(expr, first)
        return expr


def _clock_of(cond: ast.Expr) -> str | None:
    """The clock name if ``cond`` is a clock-edge test, else None.

    Recognizes ``rising_edge(clk)`` and ``clk'event and clk = '1'``.
    """
    if isinstance(cond, ast.Unary) and cond.op == "@rising":
        operand = cond.operand
        assert isinstance(operand, ast.Ident)
        return operand.name
    if isinstance(cond, ast.Binary) and cond.op == "&":
        for side, other in ((cond.lhs, cond.rhs), (cond.rhs, cond.lhs)):
            if isinstance(side, ast.Unary) and side.op == "@event":
                operand = side.operand
                assert isinstance(operand, ast.Ident)
                return operand.name
    return None


def _mentions_clock(cond: ast.Expr) -> bool:
    return _clock_of(cond) is not None


def parse_vhdl(source: SourceFile) -> ast.Design:
    """Parse a uVHDL source file into a design."""
    from repro.obs import metrics as obs_metrics

    parser = _Parser(source)
    design = parser.parse_design()
    obs_metrics.counter("hdl.tokens_lexed").inc(len(parser.tokens))
    return design
