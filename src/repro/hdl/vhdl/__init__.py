"""uVHDL frontend: a synthesizable VHDL subset.

Covers the VHDL-87/93 style the Leon3-like design uses: entity/architecture
pairs with generics, std_logic/std_logic_vector/unsigned signals, clocked
and combinational processes, concurrent (plain, conditional, and selected)
signal assignments, component instantiation, array types for memories, and
for/if generate.  Parsing produces the same language-neutral AST as the
uVerilog frontend.
"""

from repro.hdl.vhdl.parser import parse_vhdl

__all__ = ["parse_vhdl"]
