"""HDL frontend substrate.

The designs the paper measures are written in VHDL (Leon3), Verilog-95
(PUMA, IVM), and Verilog-2001 (RAT).  This package provides frontends for
synthesizable subsets of those languages -- uVerilog and uVHDL -- that both
produce the *same* language-neutral AST (:mod:`repro.hdl.ast`), so the
elaborator and synthesis pipeline downstream are language-agnostic.

:mod:`repro.hdl.metrics` measures the two software metrics of Table 3
(``LoC`` and ``Stmts``) from source text and AST respectively.
"""

from repro.hdl.ast import Design, Module
from repro.hdl.metrics import count_loc, count_statements, software_metrics
from repro.hdl.source import HdlSyntaxError, SourceFile
from repro.hdl.verilog import parse_verilog
from repro.hdl.vhdl import parse_vhdl

__all__ = [
    "Design",
    "HdlSyntaxError",
    "Module",
    "SourceFile",
    "count_loc",
    "count_statements",
    "parse_verilog",
    "parse_vhdl",
    "software_metrics",
]


def parse_source(source: "SourceFile") -> "Design":
    """Parse an HDL file, dispatching on its extension (.v/.sv vs .vhd)."""
    name = source.name.lower()
    if name.endswith((".vhd", ".vhdl")):
        return parse_vhdl(source)
    if name.endswith((".v", ".sv")):
        return parse_verilog(source)
    raise ValueError(
        f"cannot infer HDL language from file name {source.name!r}; "
        "expected a .v/.sv or .vhd/.vhdl extension"
    )
