"""HDL frontend substrate.

The designs the paper measures are written in VHDL (Leon3), Verilog-95
(PUMA, IVM), and Verilog-2001 (RAT).  This package provides frontends for
synthesizable subsets of those languages -- uVerilog and uVHDL -- that both
produce the *same* language-neutral AST (:mod:`repro.hdl.ast`), so the
elaborator and synthesis pipeline downstream are language-agnostic.

:mod:`repro.hdl.metrics` measures the two software metrics of Table 3
(``LoC`` and ``Stmts``) from source text and AST respectively.
"""

from dataclasses import fields, is_dataclass

from repro.hdl.ast import Design, Module
from repro.hdl.metrics import count_loc, count_statements, software_metrics
from repro.hdl.source import (
    VERILOG,
    VHDL,
    HdlSyntaxError,
    SourceFile,
    detect_language,
)
from repro.hdl.verilog import parse_verilog
from repro.hdl.vhdl import parse_vhdl
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = [
    "Design",
    "HdlSyntaxError",
    "Module",
    "SourceFile",
    "VERILOG",
    "VHDL",
    "count_loc",
    "count_statements",
    "detect_language",
    "parse_verilog",
    "parse_vhdl",
    "software_metrics",
]


def _count_ast_nodes(node: object) -> int:
    """Recursive dataclass-node count (only run when a tracer is active)."""
    if is_dataclass(node) and not isinstance(node, type):
        return 1 + sum(
            _count_ast_nodes(getattr(node, f.name)) for f in fields(node)
        )
    if isinstance(node, (tuple, list)):
        return sum(_count_ast_nodes(v) for v in node)
    if isinstance(node, dict):
        return sum(_count_ast_nodes(v) for v in node.values())
    return 0


def parse_source(source: "SourceFile") -> "Design":
    """Parse an HDL file, dispatching via :func:`detect_language`.

    Extension wins (.v/.sv vs .vhd/.vhdl); a file with an unknown suffix is
    recognized from its contents, so the LoC counter (which shares the same
    dispatch) always strips comments with the rules of the language the
    parser actually used.
    """
    language = detect_language(source)
    with obs_trace.span("parse.file", file=source.name) as sp:
        if language == VHDL:
            design = parse_vhdl(source)
        elif language == VERILOG:
            design = parse_verilog(source)
        else:
            raise ValueError(
                f"cannot infer HDL language from file name {source.name!r} "
                "or its contents; expected a .v/.sv or .vhd/.vhdl extension "
                "(or recognizable Verilog/VHDL text)"
            )
        obs_metrics.counter("hdl.files_parsed").inc()
        if obs_trace.active() is not None:
            obs_metrics.counter("hdl.ast_nodes").inc(_count_ast_nodes(design))
            sp.set_attr("modules", len(design.modules))
        return design
