"""Source text containers and diagnostics for the HDL frontends."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class SourceFile:
    """A named piece of HDL source text."""

    name: str
    text: str

    @classmethod
    def from_path(cls, path: str | Path) -> "SourceFile":
        path = Path(path)
        return cls(name=path.name, text=path.read_text(encoding="utf-8"))

    def line(self, number: int) -> str:
        """1-based line lookup (for diagnostics)."""
        lines = self.text.splitlines()
        if not 1 <= number <= len(lines):
            raise IndexError(f"{self.name} has no line {number}")
        return lines[number - 1]


class HdlError(Exception):
    """Base class for all HDL frontend/elaboration errors."""


class HdlSyntaxError(HdlError):
    """A lexing or parsing failure, with source position."""

    def __init__(self, message: str, file: str = "", line: int = 0) -> None:
        location = f"{file}:{line}: " if file else ""
        super().__init__(f"{location}{message}")
        self.file = file
        self.line = line
