"""Source text containers and diagnostics for the HDL frontends."""

from __future__ import annotations

import re
from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class SourceFile:
    """A named piece of HDL source text."""

    name: str
    text: str

    @classmethod
    def from_path(cls, path: str | Path) -> "SourceFile":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise HdlIoError(
                f"no such file: {path}",
                file=str(path),
                hint="check the path; HDL sources must exist on disk",
            ) from None
        except IsADirectoryError:
            raise HdlIoError(
                f"{path} is a directory, not an HDL file",
                file=str(path),
                hint="pass the .v/.vhd files inside the directory instead",
            ) from None
        except OSError as exc:
            raise HdlIoError(
                f"cannot read {path}: {exc}",
                file=str(path),
                hint="check file permissions and that the path is readable",
            ) from None
        except UnicodeDecodeError as exc:
            raise HdlIoError(
                f"{path} is not valid UTF-8 (byte offset {exc.start})",
                file=str(path),
                hint="re-encode the file as UTF-8 (or plain ASCII); "
                     "binary files cannot be measured",
            ) from None
        return cls(name=path.name, text=text)

    def line(self, number: int) -> str:
        """1-based line lookup (for diagnostics)."""
        lines = self.text.splitlines()
        if not 1 <= number <= len(lines):
            raise IndexError(f"{self.name} has no line {number}")
        return lines[number - 1]


#: Language names used across the package (parser dispatch, LoC rules).
VERILOG = "verilog"
VHDL = "vhdl"

_VERILOG_MARKERS = (
    re.compile(r"\bmodule\b"),
    re.compile(r"\bendmodule\b"),
    re.compile(r"\balways\b"),
    re.compile(r"\bassign\b"),
    re.compile(r"\bwire\b|\breg\b"),
    re.compile(r"//"),
)
_VHDL_MARKERS = (
    re.compile(r"\bentity\b", re.IGNORECASE),
    re.compile(r"\barchitecture\b", re.IGNORECASE),
    re.compile(r"\bend\s+(entity|architecture|process)\b", re.IGNORECASE),
    re.compile(r"\bsignal\b|\bstd_logic\b", re.IGNORECASE),
    re.compile(r"--"),
)


def detect_language(source: "SourceFile") -> str | None:
    """The HDL language of ``source``: extension first, then content.

    This is the single dispatch point shared by the parser front door
    (:func:`repro.hdl.parse_source`) and the LoC counter
    (:func:`repro.hdl.metrics.count_loc`), so comment-stripping rules always
    match the language the parser actually used -- a VHDL file without a
    ``.vhd`` suffix is still recognized as VHDL from its text.

    Returns ``"verilog"``, ``"vhdl"``, or None when neither the file name
    nor the contents identify a language.
    """
    name = source.name.lower()
    if name.endswith((".vhd", ".vhdl")):
        return VHDL
    if name.endswith((".v", ".sv")):
        return VERILOG
    # Unknown extension: sniff the text.  Count distinct marker classes per
    # language; VHDL keywords never collide with Verilog's, so whichever
    # side matches more marker classes wins.
    text = source.text
    verilog_score = sum(1 for pat in _VERILOG_MARKERS if pat.search(text))
    vhdl_score = sum(1 for pat in _VHDL_MARKERS if pat.search(text))
    if verilog_score == vhdl_score:
        return None
    return VERILOG if verilog_score > vhdl_score else VHDL


def _rebuild_hdl_error(
    cls: type, message: str, file: str, line: int, hint: str
) -> "HdlError":
    try:
        return cls(message, file=file, line=line, hint=hint)
    except TypeError:
        # A subclass with an incompatible signature still round-trips as
        # the base class rather than failing to unpickle.
        return HdlError(message, file=file, line=line, hint=hint)


class HdlError(Exception):
    """Base class for all HDL frontend/elaboration errors.

    Structured fields feed the runtime diagnostics layer
    (:mod:`repro.runtime.diagnostics`): ``file``/``line`` become the source
    span and ``hint`` the recovery hint.  All are optional so existing
    message-only raises keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        file: str = "",
        line: int = 0,
        hint: str = "",
    ) -> None:
        location = f"{file}:{line}: " if file and line else (f"{file}: " if file else "")
        super().__init__(f"{location}{message}")
        self.message = message
        self.file = file
        self.line = line
        self.hint = hint

    def __reduce__(self):
        # Default exception pickling replays __init__ with ``args`` (the
        # pre-formatted string), which would drop file/line/hint and
        # double-prefix the location after a round-trip through a process
        # pool.  Rebuild from the structured fields instead so diagnostics
        # created from an unpickled error are identical to in-process ones.
        return (
            _rebuild_hdl_error,
            (type(self), self.message, self.file, self.line, self.hint),
        )


class HdlIoError(HdlError):
    """A source file could not be read (missing, unreadable, not UTF-8)."""


class HdlSyntaxError(HdlError):
    """A lexing or parsing failure, with source position."""

    def __init__(
        self, message: str, file: str = "", line: int = 0, hint: str = ""
    ) -> None:
        super().__init__(message, file=file, line=line, hint=hint)
