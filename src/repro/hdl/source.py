"""Source text containers and diagnostics for the HDL frontends."""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path


@dataclass(frozen=True)
class SourceFile:
    """A named piece of HDL source text."""

    name: str
    text: str

    @classmethod
    def from_path(cls, path: str | Path) -> "SourceFile":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise HdlIoError(
                f"no such file: {path}",
                file=str(path),
                hint="check the path; HDL sources must exist on disk",
            ) from None
        except IsADirectoryError:
            raise HdlIoError(
                f"{path} is a directory, not an HDL file",
                file=str(path),
                hint="pass the .v/.vhd files inside the directory instead",
            ) from None
        except OSError as exc:
            raise HdlIoError(
                f"cannot read {path}: {exc}",
                file=str(path),
                hint="check file permissions and that the path is readable",
            ) from None
        except UnicodeDecodeError as exc:
            raise HdlIoError(
                f"{path} is not valid UTF-8 (byte offset {exc.start})",
                file=str(path),
                hint="re-encode the file as UTF-8 (or plain ASCII); "
                     "binary files cannot be measured",
            ) from None
        return cls(name=path.name, text=text)

    def line(self, number: int) -> str:
        """1-based line lookup (for diagnostics)."""
        lines = self.text.splitlines()
        if not 1 <= number <= len(lines):
            raise IndexError(f"{self.name} has no line {number}")
        return lines[number - 1]


class HdlError(Exception):
    """Base class for all HDL frontend/elaboration errors.

    Structured fields feed the runtime diagnostics layer
    (:mod:`repro.runtime.diagnostics`): ``file``/``line`` become the source
    span and ``hint`` the recovery hint.  All are optional so existing
    message-only raises keep working.
    """

    def __init__(
        self,
        message: str,
        *,
        file: str = "",
        line: int = 0,
        hint: str = "",
    ) -> None:
        location = f"{file}:{line}: " if file and line else (f"{file}: " if file else "")
        super().__init__(f"{location}{message}")
        self.message = message
        self.file = file
        self.line = line
        self.hint = hint


class HdlIoError(HdlError):
    """A source file could not be read (missing, unreadable, not UTF-8)."""


class HdlSyntaxError(HdlError):
    """A lexing or parsing failure, with source position."""

    def __init__(
        self, message: str, file: str = "", line: int = 0, hint: str = ""
    ) -> None:
        super().__init__(message, file=file, line=line, hint=hint)
