"""Tokenizer for the uVerilog subset."""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.hdl.source import HdlSyntaxError, SourceFile

#: Token kinds.
ID, NUMBER, SIZED_NUMBER, OP, STRING, EOF = (
    "ID", "NUMBER", "SIZED_NUMBER", "OP", "STRING", "EOF",
)

#: Multi-character operators, longest first so maximal munch works.
_OPERATORS = (
    "<<<", ">>>", "===", "!==",
    "<=", ">=", "==", "!=", "&&", "||", "<<", ">>", "**", "+:", "-:",
    "+", "-", "*", "/", "%", "&", "|", "^", "~", "!", "<", ">", "=",
    "(", ")", "[", "]", "{", "}", ";", ",", ":", ".", "#", "?", "@",
)

_ID_RE = re.compile(r"\$?[A-Za-z_][A-Za-z0-9_$]*")
# `(*` opens an attribute only when not immediately closed: `@(*)` is a
# sensitivity star, not an attribute.
_ATTR_OPEN_RE = re.compile(r"\(\*(?!\s*\))")
_DEC_RE = re.compile(r"[0-9][0-9_]*")
_SIZED_RE = re.compile(r"(?:[0-9][0-9_]*)?'[sS]?([bBoOdDhH])([0-9a-fA-FxXzZ_]+)")
_STRING_RE = re.compile(r'"[^"\n]*"')
_WS_RE = re.compile(r"[ \t\r]+")


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    line: int

    @property
    def int_value(self) -> int:
        if self.kind == NUMBER:
            return int(self.value.replace("_", ""))
        if self.kind == SIZED_NUMBER:
            return _sized_value(self.value)
        raise ValueError(f"token {self.value!r} is not a number")

    @property
    def width(self) -> int | None:
        """Explicit bit width of a sized literal (None when unsized)."""
        if self.kind != SIZED_NUMBER:
            return None
        head = self.value.split("'")[0].replace("_", "")
        return int(head) if head else None


def _sized_value(text: str) -> int:
    head, tail = text.split("'", 1)
    tail = tail.lstrip("sS")
    base_char = tail[0].lower()
    digits = tail[1:].replace("_", "")
    # x/z bits are not supported by the synthesizable subset; treat as 0,
    # which is what synthesis tools commonly assume for don't-cares.
    digits = re.sub(r"[xXzZ]", "0", digits)
    base = {"b": 2, "o": 8, "d": 10, "h": 16}[base_char]
    return int(digits, base)


def tokenize(source: SourceFile) -> list[Token]:
    """Tokenize uVerilog source, stripping comments and directives.

    Compiler directives (`timescale, `define-free code is assumed) and
    attribute instances ``(* ... *)`` are skipped.
    """
    text = source.text
    tokens: list[Token] = []
    pos = 0
    line = 1
    n = len(text)
    while pos < n:
        ch = text[pos]
        if ch == "\n":
            line += 1
            pos += 1
            continue
        m = _WS_RE.match(text, pos)
        if m:
            pos = m.end()
            continue
        if text.startswith("//", pos):
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        if text.startswith("/*", pos):
            end = text.find("*/", pos + 2)
            if end == -1:
                raise HdlSyntaxError("unterminated block comment", source.name, line)
            line += text.count("\n", pos, end)
            pos = end + 2
            continue
        if _ATTR_OPEN_RE.match(text, pos):
            end = text.find("*)", pos + 2)
            if end == -1:
                raise HdlSyntaxError("unterminated attribute", source.name, line)
            line += text.count("\n", pos, end)
            pos = end + 2
            continue
        if ch == "`":
            # Compiler directive: skip to end of line.
            end = text.find("\n", pos)
            pos = n if end == -1 else end
            continue
        m = _SIZED_RE.match(text, pos)
        if m:
            tokens.append(Token(SIZED_NUMBER, m.group(0), line))
            pos = m.end()
            continue
        m = _ID_RE.match(text, pos)
        if m:
            tokens.append(Token(ID, m.group(0), line))
            pos = m.end()
            continue
        m = _DEC_RE.match(text, pos)
        if m:
            tokens.append(Token(NUMBER, m.group(0), line))
            pos = m.end()
            continue
        m = _STRING_RE.match(text, pos)
        if m:
            tokens.append(Token(STRING, m.group(0), line))
            pos = m.end()
            continue
        for op in _OPERATORS:
            if text.startswith(op, pos):
                tokens.append(Token(OP, op, line))
                pos += len(op)
                break
        else:
            raise HdlSyntaxError(
                f"unexpected character {ch!r}", source.name, line
            )
    tokens.append(Token(EOF, "", line))
    return tokens
