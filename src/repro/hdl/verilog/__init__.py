"""uVerilog frontend: a synthesizable Verilog subset.

Supports both the verbose Verilog-95 style (non-ANSI port declarations,
``parameter`` statements in the body) used by the PUMA- and IVM-style
designs and the Verilog-2001 style (ANSI header ports, ``generate``
regions, ``genvar``) used by the RAT-style designs.
"""

from repro.hdl.verilog.parser import parse_verilog

__all__ = ["parse_verilog"]
