"""Recursive-descent parser for the uVerilog subset.

Produces the language-neutral AST of :mod:`repro.hdl.ast`.  Both Verilog-95
non-ANSI modules and Verilog-2001 ANSI-header modules are accepted; the
style found is recorded in ``Module.language`` (the distinction matters for
the LoC/Stmts productivity discussion in Section 5.2 of the paper).
"""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl.source import HdlSyntaxError, SourceFile
from repro.hdl.verilog.lexer import EOF, ID, NUMBER, OP, SIZED_NUMBER, Token, tokenize

_KEYWORDS = {
    "module", "endmodule", "input", "output", "inout", "wire", "reg",
    "integer", "genvar", "parameter", "localparam", "assign", "always",
    "begin", "end", "if", "else", "case", "casez", "casex", "endcase",
    "default", "for", "generate", "endgenerate", "initial", "posedge",
    "negedge", "or",
}

_UNARY_OPS = ("~", "!", "-", "&", "|", "^")

#: Frontend revision.  Part of the on-disk cache salt (:mod:`repro.cache`):
#: bump whenever parsing changes the AST produced for accepted sources.
PARSER_VERSION = 1


class _Parser:
    def __init__(self, source: SourceFile) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0
        # Set per module while parsing:
        self._uses_ansi_header = False

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != EOF:
            self.pos += 1
        return tok

    def check(self, value: str) -> bool:
        tok = self.peek()
        return tok.kind in (ID, OP) and tok.value == value

    def accept(self, value: str) -> bool:
        if self.check(value):
            self.advance()
            return True
        return False

    def expect(self, value: str) -> Token:
        if not self.check(value):
            tok = self.peek()
            raise HdlSyntaxError(
                f"expected {value!r}, found {tok.value or 'end of file'!r}",
                self.source.name, tok.line,
            )
        return self.advance()

    def expect_id(self) -> Token:
        tok = self.peek()
        if tok.kind != ID or tok.value in _KEYWORDS:
            raise HdlSyntaxError(
                f"expected identifier, found {tok.value or 'end of file'!r}",
                self.source.name, tok.line,
            )
        return self.advance()

    def fail(self, message: str) -> HdlSyntaxError:
        return HdlSyntaxError(message, self.source.name, self.peek().line)

    # -- top level ----------------------------------------------------------

    def parse_design(self) -> ast.Design:
        design = ast.Design()
        while self.peek().kind != EOF:
            design.add(self.parse_module())
        return design

    def parse_module(self) -> ast.Module:
        self.expect("module")
        name = self.expect_id().value
        self._uses_ansi_header = False
        items: list[ast.Item] = []
        ports: list[ast.PortDecl] = []
        port_order: list[str] = []
        port_table: dict[str, ast.PortDecl] = {}

        if self.accept("#"):
            self._uses_ansi_header = True
            self.expect("(")
            while True:
                self.accept("parameter")
                pname = self.expect_id().value
                self.expect("=")
                items.append(ast.ParamDecl(pname, self.parse_expr()))
                if not self.accept(","):
                    break
            self.expect(")")

        if self.accept("("):
            if not self.check(")"):
                if self.peek().value in ("input", "output", "inout"):
                    self._uses_ansi_header = True
                    ports.extend(self._parse_ansi_ports())
                else:
                    port_order.append(self.expect_id().value)
                    while self.accept(","):
                        port_order.append(self.expect_id().value)
            self.expect(")")
        self.expect(";")

        while not self.check("endmodule"):
            if self.peek().kind == EOF:
                raise self.fail(f"unterminated module {name!r}")
            self._parse_item(items, port_table)
        self.expect("endmodule")

        if port_order:  # non-ANSI: assemble ports in header order
            missing = [p for p in port_order if p not in port_table]
            if missing:
                raise self.fail(
                    f"module {name!r}: ports {missing} lack direction declarations"
                )
            ports = [port_table[p] for p in port_order]
        elif port_table:
            raise self.fail(
                f"module {name!r} mixes ANSI ports with body direction "
                "declarations"
            )
        language = "verilog2001" if self._uses_ansi_header else "verilog95"
        return ast.Module(
            name=name,
            ports=tuple(ports),
            items=tuple(items),
            language=language,
            source_name=self.source.name,
        )

    def _parse_ansi_ports(self) -> list[ast.PortDecl]:
        ports: list[ast.PortDecl] = []
        direction = "input"
        msb = lsb = None
        while True:
            tok = self.peek()
            if tok.value in ("input", "output", "inout"):
                direction = self.advance().value
                self.accept("reg")
                self.accept("wire")
                msb = lsb = None
                if self.accept("["):
                    msb = self.parse_expr()
                    self.expect(":")
                    lsb = self.parse_expr()
                    self.expect("]")
            pname = self.expect_id().value
            ports.append(ast.PortDecl(pname, direction, msb, lsb))
            if not self.accept(","):
                break
        return ports

    # -- module items ---------------------------------------------------------

    def _parse_item(
        self,
        items: list[ast.Item],
        port_table: dict[str, ast.PortDecl],
    ) -> None:
        tok = self.peek()
        value = tok.value
        if value in ("input", "output", "inout"):
            self._parse_direction_decl(port_table)
        elif value in ("parameter", "localparam"):
            self._parse_param_decl(items)
        elif value in ("wire", "reg", "integer"):
            self._parse_signal_decl(items, port_table)
        elif value == "genvar":
            self.advance()
            # Genvar names need no representation; loops bind them directly.
            self.expect_id()
            while self.accept(","):
                self.expect_id()
            self.expect(";")
        elif value == "assign":
            self.advance()
            line = tok.line
            target = self.parse_lvalue()
            self.expect("=")
            items.append(ast.ContinuousAssign(target, self.parse_expr(), line))
            self.expect(";")
        elif value == "always":
            items.append(self._parse_always())
        elif value == "generate":
            self.advance()
            while not self.check("endgenerate"):
                self._parse_generate_item(items)
            self.expect("endgenerate")
        elif value in ("for", "if"):
            # Verilog-2001 allows generate constructs without the
            # generate/endgenerate keywords.
            self._parse_generate_item(items)
        elif value == "initial":
            self.advance()
            self._skip_statement()
        elif tok.kind == ID and value not in _KEYWORDS:
            items.append(self._parse_instance())
        else:
            raise self.fail(f"unexpected token {value!r} in module body")

    def _parse_range(self) -> tuple[ast.Expr | None, ast.Expr | None]:
        if not self.accept("["):
            return None, None
        msb = self.parse_expr()
        self.expect(":")
        lsb = self.parse_expr()
        self.expect("]")
        return msb, lsb

    def _parse_direction_decl(self, port_table: dict[str, ast.PortDecl]) -> None:
        direction = self.advance().value
        self.accept("reg")
        self.accept("wire")
        msb, lsb = self._parse_range()
        while True:
            name = self.expect_id().value
            port_table[name] = ast.PortDecl(name, direction, msb, lsb)
            if not self.accept(","):
                break
        self.expect(";")

    def _parse_param_decl(self, items: list[ast.Item]) -> None:
        local = self.advance().value == "localparam"
        while True:
            name = self.expect_id().value
            self.expect("=")
            items.append(ast.ParamDecl(name, self.parse_expr(), local=local))
            if not self.accept(","):
                break
        self.expect(";")

    def _parse_signal_decl(
        self,
        items: list[ast.Item],
        port_table: dict[str, ast.PortDecl],
    ) -> None:
        kind = self.advance().value
        if kind == "integer":
            msb: ast.Expr | None = ast.Number(31)
            lsb: ast.Expr | None = ast.Number(0)
        else:
            msb, lsb = self._parse_range()
        while True:
            name = self.expect_id().value
            depth: ast.Expr | None = None
            if self.check("["):  # memory array dimension
                self.advance()
                lo = self.parse_expr()
                self.expect(":")
                hi = self.parse_expr()
                self.expect("]")
                depth = ast.Binary("+", ast.Binary("-", hi, lo), ast.Number(1))
            if name not in port_table:
                # 'reg' re-declaration of an output port only marks
                # registered-ness; the port declaration already carries it.
                items.append(ast.SignalDecl(name, msb, lsb, depth))
            if self.accept("="):
                # Net declaration assignment: wire x = expr;
                items.append(
                    ast.ContinuousAssign(
                        ast.Ident(name), self.parse_expr(), self.peek().line
                    )
                )
            if not self.accept(","):
                break
        self.expect(";")

    def _parse_always(self) -> ast.ProcessBlock:
        line = self.expect("always").line
        self.expect("@")
        clock: str | None = None
        if self.accept("*"):
            kind = "comb"
        else:
            self.expect("(")
            if self.accept("*"):
                kind = "comb"
            elif self.peek().value in ("posedge", "negedge"):
                kind = "seq"
                self.advance()
                clock = self.expect_id().value
                # Extra edges (e.g. asynchronous reset) are accepted but the
                # subset treats the process as clocked by the first edge.
                while self.accept("or") or self.accept(","):
                    if self.peek().value in ("posedge", "negedge"):
                        self.advance()
                    self.expect_id()
            else:
                kind = "comb"
                self.expect_id()
                while self.accept("or") or self.accept(","):
                    self.expect_id()
            self.expect(")")
        body = self._parse_statement_block()
        return ast.ProcessBlock(kind=kind, body=body, clock=clock, line=line)

    def _parse_generate_item(self, items: list[ast.Item]) -> None:
        tok = self.peek()
        if tok.value == "for":
            self.advance()
            self.expect("(")
            var = self.expect_id().value
            self.expect("=")
            start = self.parse_expr()
            self.expect(";")
            cond = self.parse_expr()
            self.expect(";")
            step_var = self.expect_id().value
            if step_var != var:
                raise self.fail(
                    f"generate loop must step its own genvar ({var!r})"
                )
            self.expect("=")
            step = self.parse_expr()
            self.expect(")")
            label = ""
            body: list[ast.Item] = []
            if self.accept("begin"):
                if self.accept(":"):
                    label = self.expect_id().value
                dummy_ports: dict[str, ast.PortDecl] = {}
                while not self.check("end"):
                    self._parse_item(body, dummy_ports)
                self.expect("end")
            else:
                dummy_ports = {}
                self._parse_item(body, dummy_ports)
            items.append(
                ast.GenerateFor(var, start, cond, step, tuple(body), label, tok.line)
            )
        elif tok.value == "if":
            self.advance()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then_body = self._parse_generate_block()
            else_body: tuple[ast.Item, ...] = ()
            if self.accept("else"):
                else_body = self._parse_generate_block()
            items.append(ast.GenerateIf(cond, then_body, else_body, tok.line))
        else:
            dummy_ports = {}
            self._parse_item(items, dummy_ports)

    def _parse_generate_block(self) -> tuple[ast.Item, ...]:
        body: list[ast.Item] = []
        dummy_ports: dict[str, ast.PortDecl] = {}
        if self.accept("begin"):
            if self.accept(":"):
                self.expect_id()
            while not self.check("end"):
                self._parse_item(body, dummy_ports)
            self.expect("end")
        else:
            self._parse_item(body, dummy_ports)
        return tuple(body)

    def _parse_instance(self) -> ast.Instance:
        tok = self.peek()
        module_name = self.expect_id().value
        param_overrides: list[tuple[str, ast.Expr]] = []
        if self.accept("#"):
            self.expect("(")
            param_overrides = self._parse_connection_list()
            self.expect(")")
        inst_name = self.expect_id().value
        self.expect("(")
        connections = self._parse_connection_list() if not self.check(")") else []
        self.expect(")")
        self.expect(";")
        return ast.Instance(
            module_name=module_name,
            name=inst_name,
            connections=tuple(connections),
            param_overrides=tuple(param_overrides),
            line=tok.line,
        )

    def _parse_connection_list(self) -> list[tuple[str, ast.Expr]]:
        """Named ``.port(expr)`` or positional ``expr`` lists.

        Positional entries use an empty-string name; the elaborator resolves
        them against the instantiated module's declaration order.
        """
        connections: list[tuple[str, ast.Expr]] = []
        while True:
            if self.accept("."):
                pname = self.expect_id().value
                self.expect("(")
                expr = self.parse_expr() if not self.check(")") else None
                self.expect(")")
                if expr is not None:
                    connections.append((pname, expr))
            else:
                connections.append(("", self.parse_expr()))
            if not self.accept(","):
                break
        return connections

    # -- statements -----------------------------------------------------------

    def _parse_statement_block(self) -> tuple[ast.Stmt, ...]:
        if self.accept("begin"):
            if self.accept(":"):
                self.expect_id()
            stmts: list[ast.Stmt] = []
            while not self.check("end"):
                stmt = self._parse_statement()
                if stmt is not None:
                    stmts.append(stmt)
            self.expect("end")
            return tuple(stmts)
        stmt = self._parse_statement()
        return (stmt,) if stmt is not None else ()

    def _parse_statement(self) -> ast.Stmt | None:
        tok = self.peek()
        if tok.value == "if":
            self.advance()
            self.expect("(")
            cond = self.parse_expr()
            self.expect(")")
            then_body = self._parse_statement_block()
            else_body: tuple[ast.Stmt, ...] = ()
            if self.accept("else"):
                else_body = self._parse_statement_block()
            return ast.If(cond, then_body, else_body, tok.line)
        if tok.value in ("case", "casez", "casex"):
            self.advance()
            self.expect("(")
            subject = self.parse_expr()
            self.expect(")")
            arms: list[ast.CaseItem] = []
            while not self.check("endcase"):
                choices: tuple[ast.Expr, ...] = ()
                if self.accept("default"):
                    self.accept(":")
                else:
                    choice_list = [self.parse_expr()]
                    while self.accept(","):
                        choice_list.append(self.parse_expr())
                    self.expect(":")
                    choices = tuple(choice_list)
                arms.append(ast.CaseItem(choices, self._parse_statement_block()))
            self.expect("endcase")
            return ast.Case(subject, tuple(arms), tok.line)
        if tok.value == "for":
            self.advance()
            self.expect("(")
            var = self.expect_id().value
            self.expect("=")
            start = self.parse_expr()
            self.expect(";")
            cond = self.parse_expr()
            self.expect(";")
            step_var = self.expect_id().value
            if step_var != var:
                raise self.fail("for loop must step its own variable")
            self.expect("=")
            step = self.parse_expr()
            self.expect(")")
            body = self._parse_statement_block()
            return ast.For(var, start, cond, step, body, tok.line)
        if self.accept(";"):
            return None
        line = tok.line
        target = self.parse_lvalue()
        if self.accept("<="):
            blocking = False
        else:
            self.expect("=")
            blocking = True
        value = self.parse_expr()
        self.expect(";")
        return ast.Assign(target, value, blocking, line)

    def _skip_statement(self) -> None:
        """Skip an initial-block statement (not synthesized)."""
        if self.accept("begin"):
            depth = 1
            while depth:
                tok = self.advance()
                if tok.kind == EOF:
                    raise self.fail("unterminated initial block")
                if tok.value == "begin":
                    depth += 1
                elif tok.value == "end":
                    depth -= 1
            return
        while True:
            tok = self.advance()
            if tok.kind == EOF:
                raise self.fail("unterminated initial statement")
            if tok.value == ";":
                return

    # -- expressions ------------------------------------------------------------

    def parse_lvalue(self) -> ast.Expr:
        if self.check("{"):
            return self._parse_concat()
        name = self.expect_id().value
        expr: ast.Expr = ast.Ident(name)
        return self._parse_selects(expr)

    def _parse_selects(self, expr: ast.Expr) -> ast.Expr:
        while self.check("["):
            self.advance()
            first = self.parse_expr()
            if self.accept(":"):
                lsb = self.parse_expr()
                self.expect("]")
                expr = ast.PartSelect(expr, first, lsb)
            elif self.accept("+:"):
                width = self.parse_expr()
                self.expect("]")
                msb = ast.Binary(
                    "+", first, ast.Binary("-", width, ast.Number(1))
                )
                expr = ast.PartSelect(expr, msb, first)
            elif self.accept("-:"):
                width = self.parse_expr()
                self.expect("]")
                lsb = ast.Binary(
                    "-", first, ast.Binary("-", width, ast.Number(1))
                )
                expr = ast.PartSelect(expr, first, lsb)
            else:
                self.expect("]")
                expr = ast.Select(expr, first)
        return expr

    def parse_expr(self) -> ast.Expr:
        return self._parse_ternary()

    def _parse_ternary(self) -> ast.Expr:
        cond = self._parse_binary(0)
        if self.accept("?"):
            then = self.parse_expr()
            self.expect(":")
            other = self.parse_expr()
            return ast.Ternary(cond, then, other)
        return cond

    _PRECEDENCE: tuple[tuple[str, ...], ...] = (
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", "<=", ">", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    )

    def _parse_binary(self, level: int) -> ast.Expr:
        if level >= len(self._PRECEDENCE):
            return self._parse_unary()
        ops = self._PRECEDENCE[level]
        lhs = self._parse_binary(level + 1)
        while self.peek().kind == OP and self.peek().value in ops:
            op = self.advance().value
            rhs = self._parse_binary(level + 1)
            lhs = ast.Binary(op, lhs, rhs)
        return lhs

    def _parse_unary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == OP and tok.value in _UNARY_OPS:
            self.advance()
            return ast.Unary(tok.value, self._parse_unary())
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        tok = self.peek()
        if tok.kind == NUMBER or tok.kind == SIZED_NUMBER:
            self.advance()
            return ast.Number(tok.int_value, tok.width)
        if tok.value == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return self._parse_selects(expr)
        if tok.value == "{":
            return self._parse_concat()
        if tok.kind == ID and tok.value not in _KEYWORDS:
            name = self.advance().value
            if name == "$signed" or name == "$unsigned":
                self.expect("(")
                inner = self.parse_expr()
                self.expect(")")
                return inner
            return self._parse_selects(ast.Ident(name))
        raise self.fail(f"unexpected token {tok.value!r} in expression")

    def _parse_concat(self) -> ast.Expr:
        self.expect("{")
        first = self.parse_expr()
        if self.check("{"):
            # Replication {N{expr}}; N may be any constant expression.
            inner = self._parse_concat_inner()
            self.expect("}")
            return ast.Repeat(first, inner)
        parts = [first]
        while self.accept(","):
            parts.append(self.parse_expr())
        self.expect("}")
        return ast.Concat(tuple(parts))

    def _parse_concat_inner(self) -> ast.Expr:
        self.expect("{")
        parts = [self.parse_expr()]
        while self.accept(","):
            parts.append(self.parse_expr())
        self.expect("}")
        if len(parts) == 1:
            return parts[0]
        return ast.Concat(tuple(parts))


def parse_verilog(source: SourceFile) -> ast.Design:
    """Parse a uVerilog source file into a design."""
    from repro.obs import metrics as obs_metrics

    parser = _Parser(source)
    design = parser.parse_design()
    obs_metrics.counter("hdl.tokens_lexed").inc(len(parser.tokens))
    return design
