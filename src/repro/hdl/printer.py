"""Print the language-neutral AST back out as Verilog-2001 source.

The printer closes the round-trip loop used by the generator self-tests:
``parse -> print -> re-parse`` must preserve every statement-level and
netlist-level metric (LoC is excluded — formatting is the printer's own).
Because the AST is shared between the two front ends, a VHDL design can
be printed as Verilog and must still synthesize to the identical netlist.

Output conventions:

* expressions are fully parenthesized, so no precedence knowledge is
  required (or trusted) on the way back in;
* non-local parameters print in the ANSI ``#(parameter ...)`` header —
  the parser re-appends them as leading items, matching both front ends'
  item order;
* ``reg``-ness does not exist in the AST; it is re-inferred by walking
  process bodies for assignment targets;
* ``genvar`` declarations (consumed without an AST item by the parser)
  are re-emitted, deduplicated, before the first generate region.

Constructs with no Verilog-2001 surface form (VHDL ``(others => ...)``
aggregates, explicit ``Resize`` nodes, attribute unaries) raise
:class:`PrintError` rather than emitting something silently wrong.
"""

from __future__ import annotations

from repro.hdl import ast

__all__ = ["PrintError", "print_expr", "print_module", "print_design"]


class PrintError(ValueError):
    """An AST node has no Verilog-2001 spelling."""


_UNARY_OPS = frozenset("~!-&|^") | {"~&", "~|"}
_BINARY_OPS = frozenset({
    "&", "|", "^", "&&", "||", "==", "!=", "<", "<=", ">", ">=",
    "<<", ">>", "+", "-", "*", "/", "%",
})


def print_expr(expr: ast.Expr) -> str:
    """Render one expression, fully parenthesized."""
    if isinstance(expr, ast.Number):
        if expr.width is not None:
            mask = (1 << expr.width) - 1
            return f"{expr.width}'d{expr.value & mask}"
        return str(expr.value)
    if isinstance(expr, ast.Ident):
        return expr.name
    if isinstance(expr, ast.Select):
        return f"{_print_base(expr.base)}[{print_expr(expr.index)}]"
    if isinstance(expr, ast.PartSelect):
        return (f"{_print_base(expr.base)}"
                f"[{print_expr(expr.msb)}:{print_expr(expr.lsb)}]")
    if isinstance(expr, ast.Concat):
        return "{" + ", ".join(print_expr(p) for p in expr.parts) + "}"
    if isinstance(expr, ast.Repeat):
        return ("{" + print_expr(expr.count)
                + "{" + print_expr(expr.value) + "}}")
    if isinstance(expr, ast.Unary):
        if expr.op not in _UNARY_OPS:
            raise PrintError(
                f"unary operator {expr.op!r} has no Verilog-2001 form "
                "(VHDL attribute expressions cannot round-trip)")
        return f"({expr.op}{print_expr(expr.operand)})"
    if isinstance(expr, ast.Binary):
        if expr.op not in _BINARY_OPS:
            raise PrintError(f"binary operator {expr.op!r} is not printable")
        return f"({print_expr(expr.lhs)} {expr.op} {print_expr(expr.rhs)})"
    if isinstance(expr, ast.Ternary):
        return (f"({print_expr(expr.cond)} ? {print_expr(expr.then)}"
                f" : {print_expr(expr.other)})")
    if isinstance(expr, ast.Resize):
        raise PrintError(
            "Resize has no explicit Verilog-2001 form; width adaptation "
            "is implicit and would change on re-parse")
    if isinstance(expr, ast.Others):
        raise PrintError(
            "(others => ...) aggregates have no Verilog-2001 form")
    raise PrintError(f"cannot print expression node {type(expr).__name__}")


def _print_base(base: ast.Expr) -> str:
    """A select base: bare identifiers stay bare, anything else gets
    parentheses (the parser allows selects after a parenthesized
    expression)."""
    if isinstance(base, ast.Ident):
        return base.name
    return f"({print_expr(base)})"


def _assigned_names(stmts: tuple[ast.Stmt, ...], into: set[str]) -> None:
    """Collect base names assigned anywhere inside process statements."""
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            target = stmt.target
            while isinstance(target, (ast.Select, ast.PartSelect)):
                target = target.base
            if isinstance(target, ast.Ident):
                into.add(target.name)
            elif isinstance(target, ast.Concat):
                for part in target.parts:
                    _assigned_names((ast.Assign(part, ast.Number(0)),), into)
        elif isinstance(stmt, ast.If):
            _assigned_names(stmt.then_body, into)
            _assigned_names(stmt.else_body, into)
        elif isinstance(stmt, ast.Case):
            for arm in stmt.items:
                _assigned_names(arm.body, into)
        elif isinstance(stmt, ast.For):
            into.add(stmt.var)
            _assigned_names(stmt.body, into)


def _reg_names(items: tuple[ast.Item, ...]) -> set[str]:
    names: set[str] = set()

    def walk(seq: tuple[ast.Item, ...]) -> None:
        for item in seq:
            if isinstance(item, ast.ProcessBlock):
                _assigned_names(item.body, names)
            elif isinstance(item, ast.GenerateFor):
                walk(item.body)
            elif isinstance(item, ast.GenerateIf):
                walk(item.then_body)
                walk(item.else_body)

    walk(items)
    return names


def _genvar_names(items: tuple[ast.Item, ...]) -> list[str]:
    seen: list[str] = []

    def walk(seq: tuple[ast.Item, ...]) -> None:
        for item in seq:
            if isinstance(item, ast.GenerateFor):
                if item.var not in seen:
                    seen.append(item.var)
                walk(item.body)
            elif isinstance(item, ast.GenerateIf):
                walk(item.then_body)
                walk(item.else_body)

    walk(items)
    return seen


class _Printer:
    def __init__(self, module: ast.Module) -> None:
        self.module = module
        self.regs = _reg_names(tuple(module.items))
        self.out: list[str] = []

    def line(self, text: str, indent: int) -> None:
        self.out.append("  " * indent + text if text else "")

    # -- statements -------------------------------------------------------

    def stmt(self, stmt: ast.Stmt, ind: int) -> None:
        if isinstance(stmt, ast.Assign):
            op = "=" if stmt.blocking else "<="
            self.line(
                f"{print_expr(stmt.target)} {op} {print_expr(stmt.value)};",
                ind)
        elif isinstance(stmt, ast.If):
            self.line(f"if ({print_expr(stmt.cond)}) begin", ind)
            for s in stmt.then_body:
                self.stmt(s, ind + 1)
            if stmt.else_body:
                self.line("end else begin", ind)
                for s in stmt.else_body:
                    self.stmt(s, ind + 1)
            self.line("end", ind)
        elif isinstance(stmt, ast.Case):
            self.line(f"case ({print_expr(stmt.subject)})", ind)
            for arm in stmt.items:
                label = ("default" if not arm.choices else
                         ", ".join(print_expr(c) for c in arm.choices))
                self.line(f"{label}: begin", ind + 1)
                for s in arm.body:
                    self.stmt(s, ind + 2)
                self.line("end", ind + 1)
            self.line("endcase", ind)
        elif isinstance(stmt, ast.For):
            header = (f"for ({stmt.var} = {print_expr(stmt.start)}; "
                      f"{print_expr(stmt.cond)}; "
                      f"{stmt.var} = {print_expr(stmt.step)}) begin")
            self.line(header, ind)
            for s in stmt.body:
                self.stmt(s, ind + 1)
            self.line("end", ind)
        else:
            raise PrintError(f"cannot print statement {type(stmt).__name__}")

    # -- items ------------------------------------------------------------

    def item(self, item: ast.Item, ind: int) -> None:
        if isinstance(item, ast.ParamDecl):
            # Non-local parameters were lifted into the header.
            self.line(
                f"localparam {item.name} = {print_expr(item.default)};", ind)
        elif isinstance(item, ast.SignalDecl):
            kw = "reg" if item.name in self.regs else "wire"
            rng = self._range(item.msb, item.lsb)
            mem = ""
            if item.depth is not None:
                mem = f" [0:({print_expr(item.depth)})-1]"
            self.line(f"{kw} {rng}{item.name}{mem};", ind)
        elif isinstance(item, ast.ContinuousAssign):
            self.line(
                f"assign {print_expr(item.target)} = "
                f"{print_expr(item.value)};", ind)
        elif isinstance(item, ast.ProcessBlock):
            if item.kind == "seq":
                self.line(f"always @(posedge {item.clock}) begin", ind)
            else:
                self.line("always @* begin", ind)
            for s in item.body:
                self.stmt(s, ind + 1)
            self.line("end", ind)
        elif isinstance(item, ast.Instance):
            text = item.module_name
            if item.param_overrides:
                overrides = ", ".join(
                    f".{n}({print_expr(v)})" for n, v in item.param_overrides)
                text += f" #({overrides})"
            conns = ", ".join(
                f".{n}({print_expr(v)})" if n else print_expr(v)
                for n, v in item.connections)
            self.line(f"{text} {item.name} ({conns});", ind)
        elif isinstance(item, ast.GenerateFor):
            self.line("generate", ind)
            label = f" : {item.label}" if item.label else ""
            self.line(
                f"for ({item.var} = {print_expr(item.start)}; "
                f"{print_expr(item.cond)}; "
                f"{item.var} = {print_expr(item.step)}) begin{label}",
                ind + 1)
            for sub in item.body:
                self.item(sub, ind + 2)
            self.line("end", ind + 1)
            self.line("endgenerate", ind)
        elif isinstance(item, ast.GenerateIf):
            self.line("generate", ind)
            self.line(f"if ({print_expr(item.cond)}) begin", ind + 1)
            for sub in item.then_body:
                self.item(sub, ind + 2)
            if item.else_body:
                self.line("end else begin", ind + 1)
                for sub in item.else_body:
                    self.item(sub, ind + 2)
            self.line("end", ind + 1)
            self.line("endgenerate", ind)
        else:
            raise PrintError(f"cannot print item {type(item).__name__}")

    def _range(self, msb: ast.Expr | None, lsb: ast.Expr | None) -> str:
        if msb is None:
            return ""
        lo = "0" if lsb is None else print_expr(lsb)
        return f"[{print_expr(msb)}:{lo}] "

    # -- module -----------------------------------------------------------

    def render(self) -> str:
        mod = self.module
        header_params = [i for i in mod.items
                         if isinstance(i, ast.ParamDecl) and not i.local]
        body_items = [i for i in mod.items if i not in header_params]

        if header_params:
            self.line(f"module {mod.name} #(", 0)
            for i, p in enumerate(header_params):
                comma = "," if i < len(header_params) - 1 else ""
                self.line(
                    f"parameter {p.name} = {print_expr(p.default)}{comma}", 1)
            self.line(") (", 0)
        else:
            self.line(f"module {mod.name} (", 0)
        ports = list(mod.ports)
        for i, port in enumerate(ports):
            reg = (" reg" if port.direction == "output"
                   and port.name in self.regs else "")
            rng = self._range(port.msb, port.lsb)
            comma = "," if i < len(ports) - 1 else ""
            self.line(f"{port.direction}{reg} {rng}{port.name}{comma}", 1)
        self.line(");", 0)

        for name in _genvar_names(tuple(body_items)):
            self.line(f"genvar {name};", 1)
        for item in body_items:
            self.item(item, 1)
        self.line("endmodule", 0)
        return "\n".join(self.out) + "\n"


def print_module(module: ast.Module) -> str:
    """Render one module as Verilog-2001 source."""
    return _Printer(module).render()


def print_design(design: ast.Design) -> str:
    """Render every module in a design, top-down by insertion order."""
    return "\n".join(print_module(m) for m in design.modules.values())
