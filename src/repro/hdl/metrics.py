"""Software metrics (Table 3): lines of code and statement counts.

* ``LoC`` counts source lines that contain something other than whitespace
  or comments -- the conventional "non-blank, non-comment" definition.
* ``Stmts`` counts statements in the parsed AST: declarations, continuous
  assignments, instantiations, and procedural statements (assignments,
  ifs, cases, loops), counted once per appearance in the source (generate
  bodies are *not* multiplied out -- these are source-text metrics, so the
  accounting procedure of Section 2.2 does not affect them).
"""

from __future__ import annotations

from repro.hdl import ast
from repro.hdl.source import VERILOG, VHDL, SourceFile, detect_language


def _strip_verilog_comments(text: str) -> str:
    """Blank out ``//`` and ``/* */`` comments, preserving line structure.

    A character scanner rather than a regex so that comment starters inside
    string literals (``"//not a comment"``) survive, and strings inside
    comments don't confuse the stripper.  Backslash escapes are honored
    inside strings; an unterminated string ends at the newline.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            out.append(ch)
            i += 1
            while i < n and text[i] != "\n":
                out.append(text[i])
                if text[i] == "\\" and i + 1 < n:
                    out.append(text[i + 1])
                    i += 2
                    continue
                if text[i] == '"':
                    i += 1
                    break
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "/":
            while i < n and text[i] != "\n":
                i += 1
        elif ch == "/" and i + 1 < n and text[i + 1] == "*":
            i += 2
            while i < n and not (text[i] == "*" and i + 1 < n and text[i + 1] == "/"):
                if text[i] == "\n":
                    out.append("\n")
                i += 1
            i = min(i + 2, n)
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def _strip_vhdl_comments(text: str) -> str:
    """Blank out ``--`` comments, preserving string literals.

    ``--`` inside a string literal (``"1--0"``) is data, not a comment; a
    doubled quote is VHDL's in-string escape.  Character literals need no
    tracking: they hold exactly one character, so no ``--`` fits inside.
    """
    out: list[str] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch == '"':
            out.append(ch)
            i += 1
            while i < n and text[i] != "\n":
                out.append(text[i])
                if text[i] == '"':
                    if i + 1 < n and text[i + 1] == '"':
                        out.append(text[i + 1])
                        i += 2
                        continue
                    i += 1
                    break
                i += 1
        elif ch == "-" and i + 1 < n and text[i + 1] == "-":
            while i < n and text[i] != "\n":
                i += 1
        else:
            out.append(ch)
            i += 1
    return "".join(out)


def count_loc(source: SourceFile, language: str | None = None) -> int:
    """Non-blank, non-comment lines in an HDL source file.

    Comment syntax is chosen by ``language`` (``"verilog"``/``"vhdl"``),
    defaulting to :func:`~repro.hdl.source.detect_language` -- the same
    dispatch the parser uses -- so a VHDL source without a ``.vhd`` suffix
    is stripped with VHDL rules, not Verilog's.  An unrecognizable source
    falls back to Verilog rules (the historical behavior) rather than
    failing a metrics pass.
    """
    if language is None:
        language = detect_language(source) or VERILOG
    if language == VHDL:
        text = _strip_vhdl_comments(source.text)
    elif language == VERILOG:
        text = _strip_verilog_comments(source.text)
    else:
        raise ValueError(f"unknown HDL language {language!r}")
    return sum(1 for line in text.splitlines() if line.strip())


def count_statements(design: ast.Design | ast.Module) -> int:
    """Statement count over a module or a whole design."""
    if isinstance(design, ast.Module):
        modules = [design]
    else:
        modules = list(design.modules.values())
    total = 0
    for module in modules:
        total += len(module.ports)
        total += _count_items(module.items)
    return total


def _count_items(items: tuple[ast.Item, ...]) -> int:
    count = 0
    for item in items:
        if isinstance(item, (ast.ParamDecl, ast.SignalDecl, ast.Instance)):
            count += 1
        elif isinstance(item, ast.ContinuousAssign):
            count += 1
        elif isinstance(item, ast.ProcessBlock):
            count += 1 + _count_stmts(item.body)
        elif isinstance(item, ast.GenerateFor):
            count += 1 + _count_items(item.body)
        elif isinstance(item, ast.GenerateIf):
            count += 1 + _count_items(item.then_body) + _count_items(item.else_body)
        else:
            raise TypeError(f"unknown item {type(item).__name__}")
    return count


def _count_stmts(stmts: tuple[ast.Stmt, ...]) -> int:
    count = 0
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            count += 1
        elif isinstance(stmt, ast.If):
            count += 1 + _count_stmts(stmt.then_body) + _count_stmts(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            count += 1
            for item in stmt.items:
                count += _count_stmts(item.body)
        elif isinstance(stmt, ast.For):
            count += 1 + _count_stmts(stmt.body)
        else:
            raise TypeError(f"unknown statement {type(stmt).__name__}")
    return count


def software_metrics(
    sources: list[SourceFile], design: ast.Design
) -> dict[str, float]:
    """``LoC`` and ``Stmts`` for a component's source files."""
    return {
        "LoC": float(sum(count_loc(s) for s in sources)),
        "Stmts": float(count_statements(design)),
    }
