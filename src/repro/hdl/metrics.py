"""Software metrics (Table 3): lines of code and statement counts.

* ``LoC`` counts source lines that contain something other than whitespace
  or comments -- the conventional "non-blank, non-comment" definition.
* ``Stmts`` counts statements in the parsed AST: declarations, continuous
  assignments, instantiations, and procedural statements (assignments,
  ifs, cases, loops), counted once per appearance in the source (generate
  bodies are *not* multiplied out -- these are source-text metrics, so the
  accounting procedure of Section 2.2 does not affect them).
"""

from __future__ import annotations

import re

from repro.hdl import ast
from repro.hdl.source import SourceFile

_BLOCK_COMMENT_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
_LINE_COMMENT_RE = re.compile(r"//[^\n]*")
_VHDL_COMMENT_RE = re.compile(r"--[^\n]*")


def count_loc(source: SourceFile) -> int:
    """Non-blank, non-comment lines in an HDL source file."""
    text = source.text
    if source.name.lower().endswith((".vhd", ".vhdl")):
        text = _VHDL_COMMENT_RE.sub("", text)
    else:
        text = _BLOCK_COMMENT_RE.sub(
            lambda m: "\n" * m.group(0).count("\n"), text
        )
        text = _LINE_COMMENT_RE.sub("", text)
    return sum(1 for line in text.splitlines() if line.strip())


def count_statements(design: ast.Design | ast.Module) -> int:
    """Statement count over a module or a whole design."""
    if isinstance(design, ast.Module):
        modules = [design]
    else:
        modules = list(design.modules.values())
    total = 0
    for module in modules:
        total += len(module.ports)
        total += _count_items(module.items)
    return total


def _count_items(items: tuple[ast.Item, ...]) -> int:
    count = 0
    for item in items:
        if isinstance(item, (ast.ParamDecl, ast.SignalDecl, ast.Instance)):
            count += 1
        elif isinstance(item, ast.ContinuousAssign):
            count += 1
        elif isinstance(item, ast.ProcessBlock):
            count += 1 + _count_stmts(item.body)
        elif isinstance(item, ast.GenerateFor):
            count += 1 + _count_items(item.body)
        elif isinstance(item, ast.GenerateIf):
            count += 1 + _count_items(item.then_body) + _count_items(item.else_body)
        else:
            raise TypeError(f"unknown item {type(item).__name__}")
    return count


def _count_stmts(stmts: tuple[ast.Stmt, ...]) -> int:
    count = 0
    for stmt in stmts:
        if isinstance(stmt, ast.Assign):
            count += 1
        elif isinstance(stmt, ast.If):
            count += 1 + _count_stmts(stmt.then_body) + _count_stmts(stmt.else_body)
        elif isinstance(stmt, ast.Case):
            count += 1
            for item in stmt.items:
                count += _count_stmts(item.body)
        elif isinstance(stmt, ast.For):
            count += 1 + _count_stmts(stmt.body)
        else:
            raise TypeError(f"unknown statement {type(stmt).__name__}")
    return count


def software_metrics(
    sources: list[SourceFile], design: ast.Design
) -> dict[str, float]:
    """``LoC`` and ``Stmts`` for a component's source files."""
    return {
        "LoC": float(sum(count_loc(s) for s in sources)),
        "Stmts": float(count_statements(design)),
    }
