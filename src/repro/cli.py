"""Command-line interface: ``ucomplexity`` / ``python -m repro``.

Subcommands:

* ``measure``   -- run the full measurement flow on HDL files and print the
  Table 3 metric vector for a component.
* ``fit``       -- fit an estimator on a CSV effort database and print the
  weights, sigmas, and per-team productivities.
* ``estimate``  -- predict the effort of a component from metric values
  using an estimator fitted on a CSV database.
* ``evaluate``  -- regenerate the Table 4 accuracy table from the paper's
  published data (or a provided CSV).
* ``gen``       -- write a seeded synthetic HDL corpus (plus its metric
  ground truth manifest) to a directory.
* ``lint``      -- statically audit HDL files against the Section 2.2
  accounting procedure (duplicates, non-minimal parameters, dead code)
  and RTL hygiene rules; exit 0 clean / 1 findings / 2 errors.
* ``selftest``  -- run the ground-truth self-test: differential oracle,
  round-trip, parallel/cache equivalence, and fitter recovery.
* ``profile``   -- attribute a recorded ``--trace`` run's wall-clock:
  top self-time spans, critical path, per-worker utilization and the
  serialization share, with ``--flame`` (collapsed stacks) and
  ``--chrome-trace`` (Perfetto) exports.
* ``bench-diff`` -- gate BENCH_obs.json against its own history: exit 1
  when a benchmark or derived series breaches its tolerance.

Failure handling (see DESIGN.md, "Failure handling & degradation ladder"):
every subcommand maps its outcome onto three exit codes --

* ``0`` -- clean result;
* ``1`` -- partial/degraded result (inputs quarantined, a fallback fitter
  engaged, or convergence unverified), diagnostics on stderr;
* ``2`` -- fatal: no usable result;
* ``130`` -- interrupted (SIGINT/SIGTERM): the worker pool was drained,
  completed results were flushed to the ``--journal`` file (when given),
  and re-running with the same journal resumes where the run stopped.

``--strict`` turns any degradation into a failure (exit 2) and
``--keep-going`` quarantines malformed dataset rows instead of aborting.
Parallel runs (``--jobs N``) execute under the supervised pool of
:mod:`repro.exec`: per-task deadlines (``--deadline``), per-worker memory
ceilings (``--worker-mem-mb``), bounded retries, and poison-task
quarantine.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro import obs
from repro.analysis.evaluation import evaluate_estimators
from repro.analysis.tables import render_table, render_table4
from repro.core.accounting import AccountingPolicy
from repro.core.estimator import DesignEffortEstimator
from repro.core.workflow import measure_component_safe
from repro.data.dataset import EffortDataset
from repro.data.paper import paper_dataset
from repro.hdl.source import SourceFile
from repro.runtime.diagnostics import (
    EXIT_DEGRADED,
    EXIT_FATAL,
    EXIT_INTERRUPTED,
    EXIT_OK,
    Diagnostic,
    Severity,
    exit_code,
    render_report,
)


def _supervision_from_args(
    args: argparse.Namespace, handle_signals: bool = True
):
    """The run's supervision policy (``--jobs`` pools only).

    One-shot CLI runs install signal handlers so Ctrl-C drains the pool
    and flushes the journal instead of dumping a traceback; the serve
    daemon passes ``handle_signals=False`` because its pool runs on a
    dispatcher thread (signals stay with the asyncio loop, which drains
    via :func:`repro.exec.request_interrupt`).  ``--deadline 0`` disables
    the per-task deadline entirely.
    """
    from repro.exec import SupervisionPolicy

    deadline = getattr(args, "deadline", None)
    if deadline is None:
        deadline = SupervisionPolicy.deadline_s
    chunk = getattr(args, "chunk", None)
    return SupervisionPolicy(
        deadline_s=deadline if deadline and deadline > 0 else None,
        memory_limit_mb=getattr(args, "worker_mem_mb", None) or None,
        handle_signals=handle_signals,
        progress=sys.stderr if getattr(args, "progress", False) else None,
        chunk_size=chunk if chunk and chunk > 0 else None,
        chaos=_chaos_from_args(args),
    )


def _chaos_from_args(args: argparse.Namespace):
    """A test-only chaos plan (``serve --chaos FILE``), or None.

    The file maps task labels to fault-injector invocations, e.g.
    ``{"top_mux": ["kill_once", "/tmp/marker"]}``; see
    :mod:`repro.runtime.faultinject`.
    """
    plan_file = getattr(args, "chaos", None)
    if not plan_file:
        return None
    import json

    plan = json.loads(Path(plan_file).read_text(encoding="utf-8"))
    return {
        label: tuple(fault) if isinstance(fault, list) else (fault,)
        for label, fault in plan.items()
    }


def _journal_from_args(args: argparse.Namespace):
    """The run's crash-safe journal (``--journal FILE``), or None."""
    journal = getattr(args, "journal", None)
    if not journal:
        return None
    from repro.exec import RunJournal

    return RunJournal(Path(journal))


def _cache_from_args(args: argparse.Namespace):
    """The run's synthesis cache: default location, --cache-dir, or None.

    The cache is content-addressed (keys hash the source text and pipeline
    versions), so it is on by default -- stale entries are unreachable by
    construction.  ``--no-cache`` opts out entirely.
    """
    if getattr(args, "no_cache", False):
        return None
    from repro.cache import SynthesisCache

    cache_dir = getattr(args, "cache_dir", None)
    return SynthesisCache(Path(cache_dir)) if cache_dir else SynthesisCache.default()


def _print_diagnostics(diagnostics) -> None:
    if diagnostics:
        print(render_report(list(diagnostics)), file=sys.stderr)


#: The shared 0/1/2 mapping (repro.runtime.diagnostics.exit_code); the
#: serve daemon maps the same codes onto HTTP response statuses.
_exit_code = exit_code


def _cmd_measure(args: argparse.Namespace) -> int:
    policy = (
        AccountingPolicy.disabled()
        if args.no_accounting
        else AccountingPolicy.recommended()
    )
    if args.catalog:
        if args.files:
            print("error: --catalog and FILES are mutually exclusive",
                  file=sys.stderr)
            return EXIT_FATAL
        return _measure_catalog(args, policy)
    if not args.files:
        print("error: provide HDL FILES or --catalog DIR", file=sys.stderr)
        return EXIT_FATAL
    if not args.top:
        print("error: --top is required when measuring FILES",
              file=sys.stderr)
        return EXIT_FATAL
    diagnostics: list[Diagnostic] = []
    sources = []
    for path in args.files:
        try:
            sources.append(SourceFile.from_path(path))
        except Exception as exc:  # noqa: BLE001 -- quarantine unreadable files
            diagnostics.append(Diagnostic.from_exception(exc, "parse"))
    result = measure_component_safe(
        sources, args.top, policy=policy,
        cache=_cache_from_args(args), jobs=args.jobs,
        lint=args.lint,
        supervision=_supervision_from_args(args),
        journal=_journal_from_args(args),
    )
    diagnostics.extend(result.diagnostics)
    _print_diagnostics(diagnostics)
    if result.value is None:
        return EXIT_FATAL
    measurement = result.value
    rows = sorted(measurement.metrics.items())
    print(render_table(["metric", "value"], [[k, v] for k, v in rows]))
    if args.verbose:
        print("\nmeasured specializations:")
        for module, params in measurement.specializations:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            print(f"  {module}({rendered})")
    return _exit_code(diagnostics, strict=args.strict)


def _measure_catalog(args: argparse.Namespace, policy) -> int:
    """Measure every module of a generated catalog (``measure --catalog``).

    The catalog run is the standard parallel workload of the profiling
    walkthrough: many small independent components, dispatched through
    the supervised pool when ``--jobs > 1``.
    """
    from repro.core.workflow import catalog_specs, measure_components

    try:
        specs = catalog_specs(args.catalog, policy=policy,
                              limit=args.limit)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FATAL
    batch = measure_components(
        specs, strict=args.strict, jobs=args.jobs,
        cache=_cache_from_args(args), lint=args.lint,
        supervision=_supervision_from_args(args),
        journal=_journal_from_args(args),
    )
    rows = []
    for name in sorted(batch.results):
        m = batch.measurements.get(name)
        if m is None:
            rows.append([name, "failed", "-", "-"])
        else:
            rows.append([
                name,
                m.metrics.get("Stmts", "-"),
                m.metrics.get("LoC", "-"),
                m.metrics.get("FanInLC", "-"),
            ])
    print(render_table(["component", "Stmts", "LoC", "FanInLC"], rows))
    print(f"{len(batch.measurements)}/{len(batch.results)} components "
          f"measured")
    _print_diagnostics(batch.diagnostics)
    if not batch.measurements:
        return EXIT_FATAL
    return _exit_code(batch.diagnostics, strict=args.strict)


def _load_dataset(
    path: str | None, keep_going: bool, diagnostics: list[Diagnostic]
) -> EffortDataset | None:
    """Load a CSV (or the paper data); None means a fatal load failure."""
    if path is None:
        return paper_dataset()
    result = EffortDataset.from_csv_checked(Path(path), keep_going=keep_going)
    diagnostics.extend(result.diagnostics)
    return result.value


def _cmd_fit(args: argparse.Namespace) -> int:
    diagnostics: list[Diagnostic] = []
    dataset = _load_dataset(args.dataset, args.keep_going, diagnostics)
    if dataset is None:
        _print_diagnostics(diagnostics)
        return EXIT_FATAL
    diagnostics.extend(dataset.validate())
    est = DesignEffortEstimator.fit(
        dataset,
        args.metrics,
        productivity_adjustment=not args.no_productivity,
        robust=not args.no_productivity,
    )
    diagnostics.extend(est.fit_diagnostics)
    print(f"estimator: {est.name}")
    for name, w in zip(est.metric_names, est.weights):
        print(f"  w[{name}] = {w:.6g}")
    print(f"  sigma_eps = {est.sigma_eps:.3f}")
    if est.has_productivity_adjustment:
        print(f"  sigma_rho = {est.sigma_rho:.3f}")
        for team, rho in sorted(est.productivities.items()):
            print(f"  rho[{team}] = {rho:.3f}")
    crit = est.criteria
    print(f"  AIC = {crit.aic:.1f}   BIC = {crit.bic:.1f}")
    if est.degraded:
        print(f"  fitter = {est.fitter_name} (degraded)")
    _print_diagnostics(diagnostics)
    return _exit_code(diagnostics, strict=args.strict)


def _cmd_estimate(args: argparse.Namespace) -> int:
    diagnostics: list[Diagnostic] = []
    dataset = _load_dataset(args.dataset, args.keep_going, diagnostics)
    if dataset is None:
        _print_diagnostics(diagnostics)
        return EXIT_FATAL
    metrics = {}
    for pair in args.metric:
        name, _, value = pair.partition("=")
        if not value:
            print(f"error: metric {pair!r} is not name=value", file=sys.stderr)
            return EXIT_FATAL
        metrics[name] = float(value)
    est = DesignEffortEstimator.fit(dataset, sorted(metrics), robust=True)
    diagnostics.extend(est.fit_diagnostics)
    median = est.estimate(metrics, team=args.team)
    lo, hi = est.interval(metrics, team=args.team)
    team = args.team or "(rho = 1)"
    print(f"median effort estimate for {team}: {median:.2f} person-months")
    print(f"90% confidence interval: ({lo:.2f}, {hi:.2f})")
    if est.degraded:
        print(f"fitter = {est.fitter_name} (degraded)")
    _print_diagnostics(diagnostics)
    return _exit_code(diagnostics, strict=args.strict)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    diagnostics: list[Diagnostic] = []
    dataset = _load_dataset(args.dataset, args.keep_going, diagnostics)
    if dataset is None:
        _print_diagnostics(diagnostics)
        return EXIT_FATAL
    result = evaluate_estimators(dataset)
    diagnostics.extend(result.diagnostics)
    print(render_table4(result))
    _print_diagnostics(diagnostics)
    if result.degraded:
        return EXIT_FATAL if args.strict else EXIT_DEGRADED
    return _exit_code(diagnostics, strict=args.strict)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reportgen import generate_report

    diagnostics: list[Diagnostic] = []
    dataset = (
        _load_dataset(args.dataset, args.keep_going, diagnostics)
        if args.dataset
        else None
    )
    if args.dataset and dataset is None:
        _print_diagnostics(diagnostics)
        return EXIT_FATAL
    text = generate_report(
        dataset, include_ablation=args.ablation,
        include_flow=args.flow_metrics,
        jobs=args.jobs, cache=_cache_from_args(args),
    )
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(text)
    _print_diagnostics(diagnostics)
    return _exit_code(diagnostics, strict=args.strict)


def _cmd_gen(args: argparse.Namespace) -> int:
    import json

    from repro.gen import generate_corpus
    from repro.hdl.source import VERILOG, VHDL

    languages = ((VERILOG, VHDL) if args.language == "both"
                 else (args.language,))
    out = Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    manifest: dict[str, dict] = {}
    for language in languages:
        corpus = generate_corpus(language, args.count, seed=args.seed)
        for gm in corpus:
            for source in gm.sources:
                (out / source.name).write_text(source.text, encoding="utf-8")
            manifest[gm.name] = {
                "language": gm.language,
                "files": [s.name for s in gm.sources],
                "top": gm.name,
                "tiles": list(gm.tile_kinds),
                "truth": gm.truth,
            }
    manifest_path = out / "manifest.json"
    manifest_path.write_text(
        json.dumps({"seed": args.seed, "modules": manifest}, indent=2,
                   sort_keys=True) + "\n",
        encoding="utf-8")
    print(f"wrote {len(manifest)} modules ({' + '.join(languages)}) "
          f"and {manifest_path}")
    return EXIT_OK


def _explain_rule(code: str) -> int:
    """Print one rule's catalog entry; unknown codes exit 2."""
    from repro.lint.rules import RULES

    rule = RULES.get(code.strip().upper())
    if rule is None:
        print(
            f"error: unknown lint rule {code!r}; known rules: "
            f"{', '.join(sorted(RULES))}",
            file=sys.stderr,
        )
        return EXIT_FATAL
    print(f"{rule.code} ({rule.name})")
    print(f"  severity:    {rule.severity.name}")
    print(f"  scope:       {rule.scope}")
    print(f"  description: {rule.description}")
    print(f"  hint:        {rule.hint}")
    return EXIT_OK


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.core.engine import Engine
    from repro.lint import (
        LintConfig,
        LintConfigError,
        discover_config,
        load_config,
        write_baseline,
    )

    if args.explain:
        return _explain_rule(args.explain)
    if not args.files:
        print("error: no input files (or use --explain RULE)", file=sys.stderr)
        return EXIT_FATAL

    read_errors: list[Diagnostic] = []
    sources = []
    for path in args.files:
        try:
            sources.append(SourceFile.from_path(path))
        except Exception as exc:  # noqa: BLE001 -- quarantine unreadable files
            read_errors.append(Diagnostic.from_exception(exc, "parse"))
    try:
        if args.config:
            config = load_config(args.config)
        elif args.no_config:
            config = LintConfig()
        else:
            config = discover_config(args.files[0] if args.files else ".")
    except LintConfigError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FATAL
    only = args.rules.split(",") if args.rules else None
    disable = args.disable.split(",") if args.disable else ()
    config = config.with_rules(only=only, disable=disable)

    engine = Engine(
        cache=_cache_from_args(args), jobs=args.jobs,
        supervision=_supervision_from_args(args),
    )
    report = engine.lint(sources, config)
    if args.write_baseline:
        count = write_baseline(report.findings, args.write_baseline)
        print(f"baseline written to {args.write_baseline}: "
              f"{count} suppression(s)")
        return EXIT_OK
    for finding in report.findings:
        print(finding.to_diagnostic().render())
    _print_diagnostics(list(read_errors) + list(report.errors))
    print(report.summary())
    if read_errors or report.errors:
        return EXIT_FATAL
    if report.findings:
        return EXIT_FATAL if args.strict else EXIT_DEGRADED
    return EXIT_OK


def _cmd_selftest(args: argparse.Namespace) -> int:
    from repro.gen import run_selftest

    report = run_selftest(
        modules_per_language=args.modules,
        seed=args.seed,
        jobs=args.jobs,
        recovery_datasets=args.datasets,
        recovery_bootstrap=args.bootstrap,
        skip_recovery=args.skip_recovery,
        progress=(None if args.quiet
                  else lambda msg: print(f"  .. {msg}", file=sys.stderr)),
    )
    print(report.render())
    return EXIT_OK if report.ok else EXIT_FATAL


def _cmd_timings(args: argparse.Namespace) -> int:
    try:
        rows = obs.read_jsonl(args.file)
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return EXIT_FATAL
    print(obs.render_timings_rows(rows, top=args.top))
    return EXIT_OK


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs import attrib, timeline

    try:
        rows = obs.read_jsonl(args.file)
    except OSError as exc:
        print(f"error: cannot read trace file: {exc}", file=sys.stderr)
        return EXIT_FATAL
    spans = attrib.span_rows(rows)
    if not spans:
        print("error: trace contains no finished spans", file=sys.stderr)
        return EXIT_FATAL

    rollups = attrib.rollup(rows)
    total_self = sum(r.self_s for r in rollups)
    print(f"== self time by span name (top {args.top}) ==")
    print(f"{'span':<28} {'count':>6} {'self':>10} {'total':>10} {'self%':>6}")
    for r in rollups[: args.top]:
        share = r.self_s / total_self * 100 if total_self > 0 else 0.0
        err = f"  {r.errors} err" if r.errors else ""
        print(f"{r.name:<28} {r.count:>6} {r.self_s:>9.3f}s "
              f"{r.total_s:>9.3f}s {share:>5.1f}%{err}")

    path = attrib.critical_path(rows)
    if path:
        print("\n== critical path ==")
        for depth, step in enumerate(path):
            print(f"{'  ' * depth}{step.name}  "
                  f"{step.wall_s:.3f}s (self {step.self_s:.3f}s)")

    bd = timeline.breakdown(rows)
    if bd is not None:
        print("\n== supervised pool ==")
        print(f"wall {bd.wall_s:.3f}s x {bd.jobs} jobs = "
              f"capacity {bd.capacity_s:.3f} worker-seconds")
        print(f"utilization {bd.utilization * 100:.1f}%   "
              f"serialization share {bd.serialization_share * 100:.2f}%")
        for category, fraction in bd.fractions().items():
            print(f"  {category:<14} {fraction * 100:5.1f}%")
        ser = attrib.serialization_summary(rows)
        print(f"serialization detail: pickle {ser.pickle_s:.3f}s, "
              f"unpickle {ser.unpickle_s:.3f}s, "
              f"worker unpickle {ser.worker_unpickle_s:.3f}s, "
              f"{ser.total_bytes / 1024:.0f} KiB transferred")
        print("\n== worker timeline ==")
        for line in timeline.gantt_lines(rows, width=args.width):
            print(f"  {line}")
    else:
        print("\n(no supervised pool in this trace: sequential run)")

    if args.flame:
        out = attrib.write_flamegraph(rows, args.flame)
        print(f"\nflamegraph (collapsed stacks) written to {out}",
              file=sys.stderr)
    if args.chrome_trace:
        out = timeline.write_chrome_trace(rows, args.chrome_trace)
        print(f"chrome trace (Perfetto) written to {out}", file=sys.stderr)
    return EXIT_OK


def _cmd_bench_diff(args: argparse.Namespace) -> int:
    from repro.obs import benchdiff

    try:
        config = benchdiff.load_config(args.config)
        data = benchdiff.load_bench_obs(args.file)
        report = benchdiff.diff_history(data, config)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_FATAL
    print(benchdiff.render_report(report, verbose=args.verbose))
    return EXIT_OK if report.ok else EXIT_DEGRADED


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro import exec as rexec
    from repro.core.engine import Engine
    from repro.serve import ServeConfig, ServeSession, serve_forever

    engine = Engine(
        cache=_cache_from_args(args),
        jobs=args.jobs,
        supervision=_supervision_from_args(args, handle_signals=False),
        journal=_journal_from_args(args),
    )
    # A previous forced shutdown in this process may have left the
    # cross-thread interrupt latched; a fresh daemon starts clean.
    rexec.clear_interrupt()
    session = ServeSession(engine)
    config = ServeConfig(
        host=args.host, port=args.port, grace_s=args.grace,
    )

    def _ready(server) -> None:
        print(
            f"listening on http://{server.config.host}:{server.port}",
            flush=True,
        )

    return serve_forever(session, config, ready=_ready)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ucomplexity",
        description="uComplexity processor design-effort estimation",
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--strict", action="store_true",
        help="treat any degradation (quarantined inputs, fallback fitters, "
             "unverified convergence) as a failure: exit 2 instead of 1",
    )
    common.add_argument(
        "--keep-going", action="store_true",
        help="quarantine malformed dataset rows (with diagnostics) instead "
             "of aborting the run",
    )
    common.add_argument(
        "--trace", metavar="FILE",
        help="write a JSONL trace of the run (spans, fit iterations, "
             "metrics snapshot) to FILE; render later with "
             "'ucomplexity timings FILE'",
    )
    common.add_argument(
        "--profile", action="store_true",
        help="print a timings report (slowest spans, per-stage totals, "
             "counters) to stderr at exit",
    )
    common.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="measure components/specializations across N worker processes "
             "(default 1: sequential); results are identical either way",
    )
    common.add_argument(
        "--cache-dir", metavar="DIR",
        help="directory for the content-addressed synthesis cache "
             "(default: $XDG_CACHE_HOME/ucomplexity); entries are keyed on "
             "source text, so edits invalidate automatically",
    )
    common.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk synthesis cache for this run",
    )
    common.add_argument(
        "--journal", metavar="FILE",
        help="crash-safe run journal for --jobs runs: completed tasks are "
             "appended as they finish, and re-running with the same FILE "
             "resumes, re-dispatching only unfinished work",
    )
    common.add_argument(
        "--deadline", type=float, default=None, metavar="S",
        help="per-task deadline in seconds for --jobs workers; a task that "
             "overruns is killed and retried, then quarantined "
             "(default 120; 0 disables)",
    )
    common.add_argument(
        "--worker-mem-mb", type=int, default=None, metavar="N",
        help="address-space ceiling per --jobs worker, in MiB; a task that "
             "exceeds it fails cleanly and is retried, then quarantined",
    )
    common.add_argument(
        "--progress", action="store_true",
        help="repaint a live heartbeat line (tasks done, rate, ETA) on "
             "stderr during --jobs runs",
    )
    common.add_argument(
        "--chunk", type=int, default=None, metavar="N",
        help="max tasks batched into one --jobs dispatch message "
             "(default: adaptive -- the ready queue spread over idle "
             "workers, capped at 16); 1 restores per-task dispatch",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "measure", help="measure a component's metrics", parents=[common]
    )
    p.add_argument("files", nargs="*", help="HDL source files (.v / .vhd)")
    p.add_argument("--top", help="top module/entity name (required with FILES)")
    p.add_argument(
        "--catalog", metavar="DIR",
        help="measure every module of a generated catalog directory "
             "(reads DIR/manifest.json, as written by 'ucomplexity gen'); "
             "mutually exclusive with FILES",
    )
    p.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help="with --catalog: measure only the first N modules",
    )
    p.add_argument(
        "--no-accounting", action="store_true",
        help="disable the Section 2.2 accounting procedure",
    )
    p.add_argument(
        "--lint", action=argparse.BooleanOptionalAction, default=False,
        help="audit the catalog against the ACC accounting rules before "
             "measuring; violations become WARNING diagnostics",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("fit", help="fit an effort estimator", parents=[common])
    p.add_argument(
        "--dataset", help="effort CSV (default: the paper's Table 4 data)"
    )
    p.add_argument(
        "--metrics", nargs="+", default=["Stmts", "FanInLC"],
        help="metric columns to combine (default: DEE1's Stmts FanInLC)",
    )
    p.add_argument(
        "--no-productivity", action="store_true",
        help="fit the rho=1 model of Section 3.2",
    )
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser(
        "estimate", help="estimate a component's effort", parents=[common]
    )
    p.add_argument("--dataset", help="effort CSV used for calibration")
    p.add_argument(
        "--metric", action="append", required=True,
        metavar="NAME=VALUE", help="a measured metric (repeatable)",
    )
    p.add_argument("--team", help="apply this team's fitted productivity")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser(
        "evaluate", help="regenerate the Table 4 accuracy rows",
        parents=[common],
    )
    p.add_argument("--dataset", help="effort CSV (default: paper data)")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "report", help="full reproduction report (all tables and figures)",
        parents=[common],
    )
    p.add_argument("--dataset", help="effort CSV (default: paper data)")
    p.add_argument("--output", "-o", help="write to a file instead of stdout")
    p.add_argument(
        "--ablation", action="store_true",
        help="include the Figure 6 ablation (measures the bundled designs)",
    )
    p.add_argument(
        "--flow-metrics", action="store_true",
        help="score the dataflow metric families against DEE1 "
             "(measures the bundled designs)",
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser(
        "gen", help="generate a synthetic HDL corpus with known metrics",
        parents=[common],
    )
    p.add_argument(
        "--out", required=True, metavar="DIR",
        help="directory for the generated sources and manifest.json",
    )
    p.add_argument(
        "--language", choices=["verilog", "vhdl", "both"], default="both",
        help="which front end(s) to target (default: both)",
    )
    p.add_argument(
        "--count", type=int, default=50, metavar="N",
        help="modules per language (default 50)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="corpus seed; module i depends only on (seed, i)",
    )
    p.set_defaults(func=_cmd_gen)

    p = sub.add_parser(
        "lint",
        help="audit HDL files against the Section 2.2 accounting procedure",
        parents=[common],
    )
    p.add_argument("files", nargs="*", help="HDL source files (.v / .vhd)")
    p.add_argument(
        "--explain", metavar="RULE",
        help="print a rule's description, severity, and fix hint "
             "(e.g. --explain W005) and exit",
    )
    p.add_argument(
        "--config", metavar="FILE",
        help="lint configuration TOML (default: the nearest "
             ".ucomplexity-lint.toml at or above the first input file)",
    )
    p.add_argument(
        "--no-config", action="store_true",
        help="ignore any .ucomplexity-lint.toml (all rules, defaults)",
    )
    p.add_argument(
        "--rules", metavar="CODES",
        help="comma-separated rule codes to run exclusively "
             "(e.g. ACC001,ACC002,ACC003)",
    )
    p.add_argument(
        "--disable", metavar="CODES",
        help="comma-separated rule codes to skip (e.g. W004)",
    )
    p.add_argument(
        "--write-baseline", metavar="FILE",
        help="instead of failing, write the current findings to FILE as "
             "[[suppress]] entries and exit 0",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "selftest",
        help="check the pipeline against generated ground truth",
        parents=[common],
    )
    p.add_argument(
        "--modules", type=int, default=50, metavar="N",
        help="generated modules per language for the differential oracle "
             "(default 50)",
    )
    p.add_argument("--seed", type=int, default=0, help="corpus seed")
    p.add_argument(
        "--datasets", type=int, default=14, metavar="N",
        help="replicate datasets in the recovery study (default 14)",
    )
    p.add_argument(
        "--bootstrap", type=int, default=50, metavar="N",
        help="bootstrap replicates per dataset for CI coverage "
             "(default 50; 0 skips coverage)",
    )
    p.add_argument(
        "--skip-recovery", action="store_true",
        help="skip the (slower) fitter recovery study",
    )
    p.add_argument(
        "--quiet", action="store_true",
        help="suppress progress lines on stderr",
    )
    p.set_defaults(func=_cmd_selftest)

    p = sub.add_parser(
        "timings", help="render the timings report from a --trace JSONL file",
        parents=[common],
    )
    p.add_argument("file", help="JSONL trace written by a --trace run")
    p.add_argument(
        "--top", type=int, default=10, help="slowest spans to show (default 10)"
    )
    p.set_defaults(func=_cmd_timings)

    p = sub.add_parser(
        "profile",
        help="attribute a --trace run's wall-clock: rollups, critical "
             "path, worker utilization, flamegraph/Perfetto exports",
        parents=[common],
    )
    p.add_argument("file", help="JSONL trace written by a --trace run")
    p.add_argument(
        "--top", type=int, default=10,
        help="span names to show in the self-time table (default 10)",
    )
    p.add_argument(
        "--width", type=int, default=60,
        help="character width of the worker Gantt lanes (default 60)",
    )
    p.add_argument(
        "--flame", metavar="FILE",
        help="write collapsed-stack flamegraph lines to FILE (render with "
             "flamegraph.pl or load into speedscope.app)",
    )
    p.add_argument(
        "--chrome-trace", metavar="FILE",
        help="write Chrome trace-event JSON to FILE (load at "
             "ui.perfetto.dev or chrome://tracing)",
    )
    p.set_defaults(func=_cmd_profile)

    p = sub.add_parser(
        "bench-diff",
        help="diff the latest BENCH_obs.json session against its history; "
             "exit 1 on a tolerance breach",
        parents=[common],
    )
    p.add_argument(
        "file", nargs="?", default="BENCH_obs.json",
        help="benchmark observations file (default: ./BENCH_obs.json)",
    )
    p.add_argument(
        "--config", metavar="FILE", default=None,
        help="TOML tolerance config ([benchdiff] table; default: built-in "
             "tolerances)",
    )
    p.add_argument(
        "-v", "--verbose", action="store_true",
        help="list every key's verdict, not just regressions/improvements",
    )
    p.set_defaults(func=_cmd_bench_diff)

    p = sub.add_parser(
        "serve",
        help="run the measurement pipeline as a long-lived HTTP/JSON "
             "service (POST /measure, /lint, /estimate; GET /healthz, "
             "/metrics)",
        parents=[common],
    )
    p.add_argument(
        "--host", default="127.0.0.1",
        help="listen address (default: 127.0.0.1)",
    )
    p.add_argument(
        "--port", type=int, default=8321, metavar="N",
        help="listen port (default 8321; 0 picks a free port, announced "
             "on stdout)",
    )
    p.add_argument(
        "--grace", type=float, default=30.0, metavar="S",
        help="seconds to let in-flight requests finish on SIGINT/SIGTERM "
             "before the worker pool is interrupted (default 30)",
    )
    p.add_argument(
        "--chaos", metavar="FILE",
        help="test-only fault-injection plan: JSON mapping task labels to "
             "repro.runtime.faultinject invocations, applied to the "
             "daemon's worker pool",
    )
    p.set_defaults(func=_cmd_serve)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    tracer = obs.Tracer()
    obs.reset_metrics()
    obs.activate(tracer)
    from repro.exec import RunInterrupted

    try:
        try:
            with obs.span(f"cli.{args.command}"):
                return args.func(args)
        except RunInterrupted as exc:
            print(f"interrupted: {exc}", file=sys.stderr)
            return EXIT_INTERRUPTED
        except KeyboardInterrupt:
            print("interrupted", file=sys.stderr)
            return EXIT_INTERRUPTED
        except Exception as exc:  # noqa: BLE001 -- last-resort fatal mapping
            _print_diagnostics([Diagnostic.from_exception(exc, args.command,
                                                          severity=Severity.FATAL)])
            return EXIT_FATAL
    finally:
        obs.deactivate()
        report = obs.RunReport.collect(tracer)
        if getattr(args, "trace", None):
            report.write_jsonl(args.trace)
            print(f"trace written to {args.trace}", file=sys.stderr)
        if getattr(args, "profile", False):
            print(report.render_timings(), file=sys.stderr)


if __name__ == "__main__":
    raise SystemExit(main())
