"""Command-line interface: ``ucomplexity`` / ``python -m repro``.

Subcommands:

* ``measure``   -- run the full measurement flow on HDL files and print the
  Table 3 metric vector for a component.
* ``fit``       -- fit an estimator on a CSV effort database and print the
  weights, sigmas, and per-team productivities.
* ``estimate``  -- predict the effort of a component from metric values
  using an estimator fitted on a CSV database.
* ``evaluate``  -- regenerate the Table 4 accuracy table from the paper's
  published data (or a provided CSV).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.evaluation import evaluate_estimators
from repro.analysis.tables import render_table, render_table4
from repro.core.accounting import AccountingPolicy
from repro.core.estimator import DesignEffortEstimator
from repro.core.workflow import measure_component
from repro.data.dataset import EffortDataset
from repro.data.paper import paper_dataset
from repro.hdl.source import SourceFile


def _cmd_measure(args: argparse.Namespace) -> int:
    sources = [SourceFile.from_path(p) for p in args.files]
    policy = (
        AccountingPolicy.disabled()
        if args.no_accounting
        else AccountingPolicy.recommended()
    )
    measurement = measure_component(sources, args.top, policy=policy)
    rows = sorted(measurement.metrics.items())
    print(render_table(["metric", "value"], [[k, v] for k, v in rows]))
    if args.verbose:
        print("\nmeasured specializations:")
        for module, params in measurement.specializations:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(params.items()))
            print(f"  {module}({rendered})")
    return 0


def _load_dataset(path: str | None) -> EffortDataset:
    if path is None:
        return paper_dataset()
    return EffortDataset.from_csv(Path(path))


def _cmd_fit(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    est = DesignEffortEstimator.fit(
        dataset,
        args.metrics,
        productivity_adjustment=not args.no_productivity,
    )
    print(f"estimator: {est.name}")
    for name, w in zip(est.metric_names, est.weights):
        print(f"  w[{name}] = {w:.6g}")
    print(f"  sigma_eps = {est.sigma_eps:.3f}")
    if est.has_productivity_adjustment:
        print(f"  sigma_rho = {est.sigma_rho:.3f}")
        for team, rho in sorted(est.productivities.items()):
            print(f"  rho[{team}] = {rho:.3f}")
    crit = est.criteria
    print(f"  AIC = {crit.aic:.1f}   BIC = {crit.bic:.1f}")
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    metrics = {}
    for pair in args.metric:
        name, _, value = pair.partition("=")
        if not value:
            print(f"error: metric {pair!r} is not name=value", file=sys.stderr)
            return 2
        metrics[name] = float(value)
    est = DesignEffortEstimator.fit(dataset, sorted(metrics))
    median = est.estimate(metrics, team=args.team)
    lo, hi = est.interval(metrics, team=args.team)
    team = args.team or "(rho = 1)"
    print(f"median effort estimate for {team}: {median:.2f} person-months")
    print(f"90% confidence interval: ({lo:.2f}, {hi:.2f})")
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    dataset = _load_dataset(args.dataset)
    result = evaluate_estimators(dataset)
    print(render_table4(result))
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reportgen import generate_report

    dataset = EffortDataset.from_csv(Path(args.dataset)) if args.dataset else None
    text = generate_report(dataset, include_ablation=args.ablation)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        print(f"report written to {args.output}")
    else:
        print(text)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ucomplexity",
        description="uComplexity processor design-effort estimation",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("measure", help="measure a component's metrics")
    p.add_argument("files", nargs="+", help="HDL source files (.v / .vhd)")
    p.add_argument("--top", required=True, help="top module/entity name")
    p.add_argument(
        "--no-accounting", action="store_true",
        help="disable the Section 2.2 accounting procedure",
    )
    p.add_argument("-v", "--verbose", action="store_true")
    p.set_defaults(func=_cmd_measure)

    p = sub.add_parser("fit", help="fit an effort estimator")
    p.add_argument(
        "--dataset", help="effort CSV (default: the paper's Table 4 data)"
    )
    p.add_argument(
        "--metrics", nargs="+", default=["Stmts", "FanInLC"],
        help="metric columns to combine (default: DEE1's Stmts FanInLC)",
    )
    p.add_argument(
        "--no-productivity", action="store_true",
        help="fit the rho=1 model of Section 3.2",
    )
    p.set_defaults(func=_cmd_fit)

    p = sub.add_parser("estimate", help="estimate a component's effort")
    p.add_argument("--dataset", help="effort CSV used for calibration")
    p.add_argument(
        "--metric", action="append", required=True,
        metavar="NAME=VALUE", help="a measured metric (repeatable)",
    )
    p.add_argument("--team", help="apply this team's fitted productivity")
    p.set_defaults(func=_cmd_estimate)

    p = sub.add_parser("evaluate", help="regenerate the Table 4 accuracy rows")
    p.add_argument("--dataset", help="effort CSV (default: paper data)")
    p.set_defaults(func=_cmd_evaluate)

    p = sub.add_parser(
        "report", help="full reproduction report (all tables and figures)"
    )
    p.add_argument("--dataset", help="effort CSV (default: paper data)")
    p.add_argument("--output", "-o", help="write to a file instead of stdout")
    p.add_argument(
        "--ablation", action="store_true",
        help="include the Figure 6 ablation (measures the bundled designs)",
    )
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
