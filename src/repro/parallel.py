"""Process-pool execution of the measurement pipeline.

Batch measurement is embarrassingly parallel: components are independent,
and within one component so are its specializations' synthesis runs.  This
module fans both loops out over a :class:`~concurrent.futures.
ProcessPoolExecutor` while preserving the sequential contracts bit for bit:

* **Fault isolation.**  Workers run the same fault-tolerant entry points
  (:mod:`repro.runtime.stages`), so a faulty component/specialization is
  quarantined inside its worker and comes back as a structured
  ``Result``/diagnostics -- never as a pool-crashing exception.  Strict
  mode re-raises in the parent (``HdlError`` pickles faithfully, so the
  re-raised exception carries the same file/line/hint).
* **Telemetry.**  The obs registry and tracer are process-local, so a
  naive pool would silently drop every counter a worker bumps and reuse
  span ids across workers.  Each worker task therefore runs under a fresh
  :class:`~repro.obs.metrics.MetricsRegistry` and (when the parent is
  traced) its own :class:`~repro.obs.trace.Tracer`; on join, the parent
  merges the worker's metrics dump into its registry and grafts the worker
  span tree under namespaced ids (``"w3:7"``) -- see
  :meth:`Tracer.graft <repro.obs.trace.Tracer.graft>`.
* **Degradation.**  If the pool itself cannot run (fork failures, broken
  workers), execution falls back to sequential in-process and counts
  ``parallel.fallback_sequential`` -- slower, never wrong.

Nothing here is imported eagerly by the pipeline; ``jobs=1`` (the default
everywhere) never touches this module.
"""

from __future__ import annotations

import itertools
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from contextlib import nullcontext
from dataclasses import dataclass, field, replace
from typing import Any, Mapping, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic, Result

#: Per-process namespace sequence: every pool run gets a fresh prefix so
#: grafted span ids stay unique across successive parallel sections.
_NAMESPACE_COUNTER = itertools.count()


@dataclass
class WorkerTelemetry:
    """One worker task's observability payload, shipped back on join."""

    namespace: str
    metrics: dict[str, Any] = field(default_factory=dict)
    spans: list[obs_trace.Span] = field(default_factory=list)


@dataclass
class TaskOutcome:
    """What one pool task produced: a value, an error, or a quarantine."""

    value: Any = None
    error: BaseException | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    telemetry: WorkerTelemetry | None = None


def _run_traced_task(fn, namespace: str, capture_trace: bool) -> TaskOutcome:
    """Run ``fn`` under a private registry/tracer; never raises."""
    registry = obs_metrics.MetricsRegistry()
    tracer = obs_trace.Tracer() if capture_trace else None
    value, error, diagnostics = None, None, ()
    with obs_metrics.using(registry):
        ctx = obs_trace.using(tracer) if tracer is not None else nullcontext()
        with ctx:
            try:
                value, diagnostics = fn()
            except Exception as exc:  # noqa: BLE001 -- ferried to the parent
                error = exc
    return TaskOutcome(
        value=value,
        error=error,
        diagnostics=tuple(diagnostics),
        telemetry=WorkerTelemetry(
            namespace=namespace,
            metrics=registry.dump(),
            spans=list(tracer.spans) if tracer is not None else [],
        ),
    )


# -- worker entry points (module-level: they must pickle) --------------------


def _measure_task(payload: tuple) -> TaskOutcome:
    """Measure one component (the batch-level unit of work)."""
    spec, strict, cache, lint, capture_trace, namespace = payload
    from repro.core.workflow import measure_component_safe

    def run():
        result = measure_component_safe(
            list(spec.sources),
            spec.top,
            name=spec.name,
            policy=spec.policy,
            strict=strict,
            cache=cache,
            lint=lint,
        )
        return result, ()

    return _run_traced_task(run, namespace, capture_trace)


def _synthesize_task(payload: tuple) -> TaskOutcome:
    """Synthesize one specialization (the component-level unit of work)."""
    design, module, params, label, safe, strict, capture_trace, namespace = payload
    from repro.elab.elaborator import elaborate
    from repro.runtime.stages import StageBoundary
    from repro.synth.lower import synthesize_module
    from repro.synth.report import synthesis_metrics

    def _synth():
        sub = elaborate(design, module, params)
        return synthesis_metrics(synthesize_module(sub))

    def run():
        if safe:
            boundary = StageBoundary(component=label, strict=strict)
            report = boundary.run("synthesize", _synth)
            return report, tuple(boundary.diagnostics)
        # Raising path: mirror measure_component's span + histogram.
        with obs_trace.span("measure.specialization", module=module) as sp:
            report = _synth()
        if sp.wall_s is not None:
            obs_metrics.histogram("measure.specialization_wall_s").observe(
                sp.wall_s
            )
        return report, ()

    return _run_traced_task(run, namespace, capture_trace)


def _lint_task(payload: tuple) -> TaskOutcome:
    """Lint one module (the lint run's unit of work)."""
    design, module_name, config, capture_trace, namespace = payload
    from repro.lint.engine import lint_module

    def run():
        result = lint_module(design, module_name, config)
        return result, ()

    return _run_traced_task(run, namespace, capture_trace)


# -- join-side plumbing ------------------------------------------------------


def merge_worker_telemetry(
    outcome: TaskOutcome,
) -> dict[int | str, str]:
    """Fold one worker's telemetry into the parent's registry/tracer.

    Returns the span-id remapping from :meth:`Tracer.graft` (empty when
    untraced) so callers can remap ``Diagnostic.span_id`` references.
    """
    tel = outcome.telemetry
    if tel is None:
        return {}
    obs_metrics.registry().merge(tel.metrics)
    tracer = obs_trace.active()
    if tracer is None or not tel.spans:
        return {}
    return tracer.graft(tel.spans, tel.namespace)


def remap_span_ids(
    diagnostics: Sequence[Diagnostic], mapping: Mapping[int | str, str]
) -> tuple[Diagnostic, ...]:
    """Rewrite worker-local span ids to their grafted namespaced ids."""
    if not mapping:
        return tuple(diagnostics)
    return tuple(
        replace(d, span_id=mapping[d.span_id]) if d.span_id in mapping else d
        for d in diagnostics
    )


def _pool_run(
    task, payloads: Sequence[tuple], jobs: int
) -> list[TaskOutcome] | None:
    """Run ``task`` over ``payloads``; None means the pool was unusable."""
    obs_metrics.gauge("parallel.jobs").set(jobs)
    try:
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = [pool.submit(task, p) for p in payloads]
            outcomes = [f.result() for f in futures]
    except (BrokenExecutor, OSError):
        obs_metrics.counter("parallel.fallback_sequential").inc()
        return None
    obs_metrics.counter("parallel.tasks").inc(len(payloads))
    return outcomes


def _next_namespace(kind: str) -> str:
    return f"{kind}{next(_NAMESPACE_COUNTER)}"


# -- public API --------------------------------------------------------------


def measure_components_parallel(
    specs: Sequence,
    strict: bool = False,
    jobs: int = 2,
    cache=None,
    lint: bool = False,
):
    """Measure a batch of components across a process pool.

    The parallel twin of :func:`repro.core.workflow.measure_components`
    (which delegates here for ``jobs > 1``): same result dict, same
    per-component quarantine, same diagnostics -- only wall-clock differs.
    Worker counters merge on join; with an active tracer, worker span trees
    are grafted under namespaced ids below the ``measure.batch`` span.
    """
    from repro.core.workflow import BatchMeasurement, measure_component_safe

    capture_trace = obs_trace.active() is not None
    run_ns = _next_namespace("b")
    payloads = [
        (spec, strict, cache, lint, capture_trace, f"{run_ns}.w{i}")
        for i, spec in enumerate(specs)
    ]
    results: dict[str, Result] = {}
    with obs_trace.span("measure.batch", components=len(specs), jobs=jobs):
        outcomes = _pool_run(_measure_task, payloads, jobs)
        if outcomes is None:
            for spec in specs:
                results[spec.name] = measure_component_safe(
                    list(spec.sources),
                    spec.top,
                    name=spec.name,
                    policy=spec.policy,
                    strict=strict,
                    cache=cache,
                    lint=lint,
                )
            return BatchMeasurement(results=results)
        errors: list[BaseException] = []
        for spec, outcome in zip(specs, outcomes):
            mapping = merge_worker_telemetry(outcome)
            if outcome.error is not None:
                errors.append(outcome.error)
                continue
            result = outcome.value
            results[spec.name] = Result(
                result.value, remap_span_ids(result.diagnostics, mapping)
            )
        if errors:
            # Only strict mode lets exceptions out of a worker; re-raise
            # the first in batch order, matching sequential fail-fast.
            raise errors[0]
    return BatchMeasurement(results=results)


def lint_modules_parallel(
    design,
    names: Sequence[str],
    config,
    jobs: int,
) -> list:
    """Lint the named modules of one design across a process pool.

    The parallel twin of the sequential loop in
    :func:`repro.lint.engine.lint_design`: one task per module, identical
    :class:`~repro.lint.engine.ModuleLintResult` list back (in ``names``
    order).  Worker telemetry merges on join like every other pool here;
    an unusable pool degrades to the sequential loop in-process.
    """
    from repro.lint.engine import lint_module

    capture_trace = obs_trace.active() is not None
    run_ns = _next_namespace("l")
    payloads = [
        (design, name, config, capture_trace, f"{run_ns}.w{i}")
        for i, name in enumerate(names)
    ]
    with obs_trace.span("lint.batch", modules=len(names), jobs=jobs):
        outcomes = _pool_run(_lint_task, payloads, jobs)
        if outcomes is None:
            return [lint_module(design, name, config) for name in names]
        results = []
        for name, outcome in zip(names, outcomes):
            merge_worker_telemetry(outcome)
            if outcome.error is not None:
                # lint_module quarantines rule crashes itself; anything that
                # escapes a worker is an engine bug worth surfacing.
                raise outcome.error
            results.append(outcome.value)
    return results


def synthesize_specializations(
    design,
    work: Sequence[tuple[str, Mapping[str, int]]],
    label: str,
    jobs: int,
    safe: bool,
    strict: bool = False,
) -> list[TaskOutcome]:
    """Synthesize many specializations of one design across a pool.

    ``work`` is a list of ``(module, params)`` pairs (already deduplicated
    and cache-missed by the caller); the returned outcomes line up with it.
    Telemetry is merged and diagnostic span ids are remapped before return,
    so callers only look at ``value``/``error``/``diagnostics``.
    """
    capture_trace = obs_trace.active() is not None
    run_ns = _next_namespace("s")
    payloads = [
        (design, module, dict(params), label, safe, strict, capture_trace,
         f"{run_ns}.w{i}")
        for i, (module, params) in enumerate(work)
    ]
    outcomes = _pool_run(_synthesize_task, payloads, jobs)
    if outcomes is None:
        outcomes = [_synthesize_task(p) for p in payloads]
    merged: list[TaskOutcome] = []
    for outcome in outcomes:
        mapping = merge_worker_telemetry(outcome)
        merged.append(
            TaskOutcome(
                value=outcome.value,
                error=outcome.error,
                diagnostics=remap_span_ids(outcome.diagnostics, mapping),
                telemetry=None,
            )
        )
    return merged
