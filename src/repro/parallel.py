"""Process-pool execution of the measurement pipeline.

Batch measurement is embarrassingly parallel: components are independent,
and within one component so are its specializations' synthesis runs.  This
module fans both loops out over a pool of worker processes while
preserving the sequential contracts bit for bit:

* **Fault isolation.**  Workers run the same fault-tolerant entry points
  (:mod:`repro.runtime.stages`), so a faulty component/specialization is
  quarantined inside its worker and comes back as a structured
  ``Result``/diagnostics -- never as a pool-crashing exception.  Strict
  mode re-raises in the parent (``HdlError`` pickles faithfully, so the
  re-raised exception carries the same file/line/hint).
* **Supervision.**  Execution runs under :class:`repro.exec.Supervisor`
  by default: per-task deadlines with hung-worker kill + respawn, bounded
  retry with exponential backoff, poison-task quarantine, optional
  per-worker memory ceilings, and (with a :class:`repro.exec.RunJournal`)
  crash-safe resume.  ``supervision=False`` selects the legacy bare
  :class:`~concurrent.futures.ProcessPoolExecutor` path, kept for
  overhead benchmarking.
* **Telemetry.**  The obs registry and tracer are process-local, so a
  naive pool would silently drop every counter a worker bumps and reuse
  span ids across workers.  Each worker task therefore runs under a fresh
  :class:`~repro.obs.metrics.MetricsRegistry` and (when the parent is
  traced) its own :class:`~repro.obs.trace.Tracer`; on join, the parent
  merges the worker's metrics dump into its registry and grafts the worker
  span tree under namespaced ids (``"w3:7"``) -- see
  :meth:`Tracer.graft <repro.obs.trace.Tracer.graft>`.
* **Degradation.**  If workers cannot run at all (fork failures, broken
  pools), execution falls back to in-process computation and counts
  ``parallel.fallback_sequential`` -- slower, never wrong.  The bare-pool
  path reuses every result that completed before the pool broke and
  records which task broke it in the fallback diagnostic.

Nothing here is imported eagerly by the pipeline; ``jobs=1`` (the default
everywhere) never touches this module.
"""

from __future__ import annotations

import itertools
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Any, Mapping, Sequence

from repro.exec import (
    BlobStore,
    RunJournal,
    Supervisor,
    SupervisionPolicy,
    TaskOutcome,
    WorkerContext,
    WorkerTelemetry,
    content_key,
    require_worker_context,
    run_traced_task,
    using_context,
)
from repro.exec.workers import _install_context
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import (
    Diagnostic,
    Result,
    Severity,
    render_report,
)
from repro.runtime.stages import STAGE_HINTS

__all__ = [
    "TaskOutcome",
    "WorkerTelemetry",
    "lint_modules_parallel",
    "measure_components_parallel",
    "measure_task_key",
    "merge_worker_telemetry",
    "remap_span_ids",
    "synthesize_specializations",
]

#: Back-compat alias: the traced-task runner moved to :mod:`repro.exec.task`.
_run_traced_task = run_traced_task

#: Per-process namespace sequence: every pool run gets a fresh prefix so
#: grafted span ids stay unique across successive parallel sections.
_NAMESPACE_COUNTER = itertools.count()


# -- worker entry points (module-level: they must pickle) --------------------
#
# Payloads are deliberately tiny: the task's index plus (at most) a
# content-hash :class:`~repro.exec.blobs.BlobRef` naming its heavy input
# in the run's BlobStore.  Everything run-invariant -- strictness flags,
# cache handles, the shared design, the trace namespace prefix -- rides in
# the :class:`~repro.exec.WorkerContext` installed once per worker (or via
# ``using_context`` on the parent's inline paths), not in every payload.

#: Modules each task family imports eagerly at worker startup so the
#: first attempt pays no import cost (irrelevant under ``fork``, which
#: inherits the parent's modules, but real on spawn platforms).
_MEASURE_PRELOAD = ("repro.core.workflow",)
_SYNTH_PRELOAD = (
    "repro.elab.elaborator", "repro.synth.lower", "repro.synth.report",
)
_LINT_PRELOAD = ("repro.lint.engine",)


def _measure_task(payload: tuple) -> TaskOutcome:
    """Measure one component (the batch-level unit of work).

    ``payload`` is ``(index, spec_ref)``; the spec is fetched from the
    context's BlobStore (cached per worker after first use).
    """
    index, spec_ref = payload
    ctx = require_worker_context()
    spec = ctx["blobs"].get(spec_ref)
    strict, cache, lint = ctx["strict"], ctx["cache"], ctx["lint"]
    namespace = f"{ctx['run_ns']}.w{index}"
    from repro.core.workflow import measure_component_safe

    def run():
        result = measure_component_safe(
            list(spec.sources),
            spec.top,
            name=spec.name,
            policy=spec.policy,
            strict=strict,
            cache=cache,
            lint=lint,
        )
        return result, ()

    return run_traced_task(run, namespace, ctx["capture_trace"])


def _synthesize_task(payload: tuple) -> TaskOutcome:
    """Synthesize one specialization (the component-level unit of work).

    ``payload`` is ``(index, module, params)``; the shared design is
    fetched from the context's BlobStore exactly once per worker instead
    of being re-pickled into every specialization's payload.
    """
    index, module, params = payload
    ctx = require_worker_context()
    design = ctx["blobs"].get(ctx["design_ref"])
    label, safe, strict = ctx["label"], ctx["safe"], ctx["strict"]
    namespace = f"{ctx['run_ns']}.w{index}"
    from repro.elab.elaborator import elaborate
    from repro.runtime.stages import StageBoundary
    from repro.synth.lower import synthesize_module
    from repro.synth.report import synthesis_metrics

    def _synth():
        sub = elaborate(design, module, params)
        return synthesis_metrics(synthesize_module(sub), sub, design)

    def run():
        if safe:
            boundary = StageBoundary(component=label, strict=strict)
            report = boundary.run("synthesize", _synth)
            return report, tuple(boundary.diagnostics)
        # Raising path: mirror measure_component's span + histogram.
        with obs_trace.span("measure.specialization", module=module) as sp:
            report = _synth()
        if sp.wall_s is not None:
            obs_metrics.histogram("measure.specialization_wall_s").observe(
                sp.wall_s
            )
        return report, ()

    return run_traced_task(run, namespace, ctx["capture_trace"])


def _lint_task(payload: tuple) -> TaskOutcome:
    """Lint one module (the lint run's unit of work).

    ``payload`` is ``(index, module_name)``; the shared design and lint
    config ride in the worker context.
    """
    index, module_name = payload
    ctx = require_worker_context()
    design = ctx["blobs"].get(ctx["design_ref"])
    config = ctx["config"]
    namespace = f"{ctx['run_ns']}.w{index}"
    from repro.lint.engine import lint_module

    def run():
        result = lint_module(design, module_name, config)
        return result, ()

    return run_traced_task(run, namespace, ctx["capture_trace"])


# -- join-side plumbing ------------------------------------------------------


def merge_worker_telemetry(
    outcome: TaskOutcome,
) -> dict[int | str, str]:
    """Fold one worker's telemetry into the parent's registry/tracer.

    Returns the span-id remapping from :meth:`Tracer.graft` (empty when
    untraced) so callers can remap ``Diagnostic.span_id`` references.

    When the supervisor recorded an ``exec.task`` attempt span for this
    task (matched through the telemetry namespace), the worker's span
    tree is grafted *under that attempt* instead of under the join
    point, so rollups and flamegraphs attribute worker compute to the
    dispatch that caused it and the attempt's residual self time is pure
    transfer/supervision overhead.
    """
    tel = outcome.telemetry
    if tel is None:
        return {}
    obs_metrics.registry().merge(tel.metrics)
    tracer = obs_trace.active()
    if tracer is None or not tel.spans:
        return {}
    return tracer.graft(
        tel.spans, tel.namespace,
        parent_id=_attempt_span_id(tracer, tel.namespace),
    )


def _attempt_span_id(tracer, namespace: str):
    """The ``exec.task`` span of this task's successful attempt, if any.

    Namespaces are unique per task per run (see ``_next_namespace``), so
    the newest match is the one attempt that produced this outcome; the
    reverse scan is cheap because the attempt was recorded moments ago.
    ``None`` falls back to :meth:`Tracer.graft`'s default (the join
    point) -- e.g. sequential fallback runs record no attempt spans.
    """
    for sp in reversed(tracer.spans):
        if sp.name != "exec.task":
            continue
        if sp.attrs.get("ns") == namespace and \
                sp.attrs.get("outcome") == "ok":
            return sp.span_id
    return None


def remap_span_ids(
    diagnostics: Sequence[Diagnostic], mapping: Mapping[int | str, str]
) -> tuple[Diagnostic, ...]:
    """Rewrite worker-local span ids to their grafted namespaced ids."""
    if not mapping:
        return tuple(diagnostics)
    from dataclasses import replace

    return tuple(
        replace(d, span_id=mapping[d.span_id]) if d.span_id in mapping else d
        for d in diagnostics
    )


# -- execution strategies ----------------------------------------------------


def _pool_run(
    task,
    payloads: Sequence[tuple],
    jobs: int,
    labels: Sequence[str] | None = None,
    context: WorkerContext | None = None,
) -> tuple[list[TaskOutcome], Diagnostic | None]:
    """The legacy bare pool: one :class:`ProcessPoolExecutor`, no deadlines.

    The worker context is delivered through the pool initializer (the
    same once-per-worker contract as the supervised path), and installed
    around the in-process recompute of broken-pool leftovers.

    A broken pool (a worker died; every outstanding future is poisoned) no
    longer throws completed work away: results that finished before the
    break are reused, only the rest are recomputed in-process, and the
    returned diagnostic records which task broke the pool.  The caller
    attaches it to that task's result stream.
    """
    obs_metrics.gauge("parallel.jobs").set(jobs)
    outcomes: list[TaskOutcome | None] = [None] * len(payloads)
    broken: tuple[int, BaseException] | None = None
    try:
        with ProcessPoolExecutor(
            max_workers=jobs,
            initializer=_install_context,
            initargs=(context,),
        ) as pool:
            futures = [pool.submit(task, p) for p in payloads]
            for i, future in enumerate(futures):
                try:
                    outcomes[i] = future.result()
                except (BrokenExecutor, OSError) as exc:
                    broken = (i, exc)
                    break
            if broken is not None:
                # Later futures may have finished before the pool broke;
                # harvest them instead of recomputing.
                for i, future in enumerate(futures):
                    if outcomes[i] is None and future.done():
                        try:
                            if future.exception() is None:
                                outcomes[i] = future.result()
                        except Exception:  # noqa: BLE001 -- cancelled/broken
                            pass
    except (BrokenExecutor, OSError) as exc:
        if broken is None:
            broken = (0, exc)
    if broken is None:
        obs_metrics.counter("parallel.tasks").inc(len(payloads))
        return outcomes, None  # type: ignore[return-value]

    index, exc = broken
    reused = sum(1 for o in outcomes if o is not None)
    missing = len(payloads) - reused
    obs_metrics.counter("parallel.fallback_sequential").inc()
    obs_metrics.counter("parallel.tasks").inc(reused)
    label = labels[index] if labels is not None else f"task {index}"
    diagnostic = Diagnostic(
        severity=Severity.WARNING,
        stage="exec",
        message=(
            f"worker pool broke at {label} "
            f"({type(exc).__name__}: {exc}); {reused}/{len(payloads)} pooled "
            f"result(s) reused, {missing} recomputed sequentially"
        ),
        component=label,
        hint=STAGE_HINTS.get("exec"),
    )
    with using_context(context):
        for i, payload in enumerate(payloads):
            if outcomes[i] is None:
                outcomes[i] = task(payload)
    return outcomes, diagnostic  # type: ignore[return-value]


def _execute(
    task,
    payloads: Sequence[tuple],
    jobs: int,
    supervision: "SupervisionPolicy | bool | None",
    labels: Sequence[str] | None = None,
    keys: Sequence[str] | None = None,
    journal: "RunJournal | None" = None,
    namespaces: Sequence[str] | None = None,
    context: WorkerContext | None = None,
) -> tuple[list[TaskOutcome], Diagnostic | None]:
    """Run one homogeneous batch under the selected execution strategy.

    ``supervision`` is the policy to supervise under (``None`` = default
    policy); ``False`` selects the legacy bare pool (no deadlines, no
    retries, no journal -- kept for overhead benchmarking).  ``namespaces``
    (the tasks' worker-telemetry namespaces) let the supervisor stamp each
    ``exec.task`` span with its task's ``ns``, joining the attempt
    timeline to the grafted worker span trees.  ``context`` is the batch's
    run-invariant :class:`WorkerContext`, installed once per worker by
    either strategy.
    """
    if supervision is False:
        return _pool_run(task, payloads, jobs, labels, context)
    policy = supervision if isinstance(supervision, SupervisionPolicy) else None
    supervisor = Supervisor(jobs, policy)
    outcomes = supervisor.run(
        task, payloads, keys=keys, labels=labels, journal=journal,
        namespaces=namespaces, context=context,
    )
    return outcomes, None


def _next_namespace(kind: str) -> str:
    return f"{kind}{next(_NAMESPACE_COUNTER)}"


# -- journal keys ------------------------------------------------------------


def measure_task_key(spec, strict: bool = False, lint: bool = False) -> str:
    """Content-addressed journal key of one component-measurement task.

    Folds in the pipeline version salt (via :data:`repro.cache.SALT`), the
    component's sources, top, accounting policy, and the flags that change
    the result -- so a resumed run only reuses outcomes that would be
    recomputed identically.
    """
    from repro.cache import SALT

    parts = [
        SALT,
        "measure-task",
        spec.name,
        spec.top,
        repr(spec.policy),
        f"strict={bool(strict)}",
        f"lint={bool(lint)}",
    ]
    for source in spec.sources:
        parts.append(f"{source.name}\x00{source.text}")
    return content_key(*parts)


def synthesis_task_key(
    source_texts: Sequence[str],
    module: str,
    params: Mapping[str, int],
    safe: bool,
    strict: bool,
) -> str:
    """Content-addressed journal key of one specialization-synthesis task."""
    from repro.cache import SALT

    parts = [
        SALT,
        "synthesis-task",
        module,
        f"safe={bool(safe)}",
        f"strict={bool(strict)}",
    ]
    parts.extend(f"{name}={int(value)}" for name, value in sorted(params.items()))
    parts.extend(source_texts)
    return content_key(*parts)


# -- public API --------------------------------------------------------------


def measure_components_parallel(
    specs: Sequence,
    strict: bool = False,
    jobs: int = 2,
    cache=None,
    lint: bool = False,
    supervision: "SupervisionPolicy | bool | None" = None,
    journal: "RunJournal | str | None" = None,
):
    """Measure a batch of components across a supervised process pool.

    The parallel twin of :func:`repro.core.workflow.measure_components`
    (which delegates here for ``jobs > 1``): same result dict, same
    per-component quarantine, same diagnostics -- only wall-clock differs.
    Worker counters merge on join; with an active tracer, worker span trees
    are grafted under namespaced ids below the ``measure.batch`` span.

    A component whose task is quarantined by the supervisor (it repeatedly
    hung, crashed, or OOM-killed its worker) comes back as a failed
    ``Result`` carrying the stage-``"exec"`` diagnostic; the rest of the
    batch is unaffected.  With ``journal``, completed components are
    appended as they finish and an interrupted run resumes from the file.
    """
    from repro.core.workflow import BatchMeasurement

    capture_trace = obs_trace.active() is not None
    run_ns = _next_namespace("b")
    journal = RunJournal.open(journal)
    results: dict[str, Result] = {}
    memo_key: dict[str, str] = {}
    with obs_trace.span("measure.batch", components=len(specs), jobs=jobs):
        # Cache-aware dispatch: a component whose finished measurement is
        # already memoized (same sources/top/policy/flags, same pipeline
        # salt) is resolved here in the parent; the pool only ever sees
        # the misses.  A fully-warm run dispatches zero tasks.
        pending = []
        for spec in specs:
            if cache is not None:
                memo_key[spec.name] = cache.measurement_key(spec, strict, lint)
                hit = cache.load_measurement(memo_key[spec.name])
                if hit is not None:
                    results[spec.name] = hit
                    continue
            pending.append(spec)
        errors: list[BaseException] = []
        if pending:
            with BlobStore.create() as blobs:
                context = WorkerContext(
                    values={
                        "blobs": blobs, "strict": strict, "cache": cache,
                        "lint": lint, "capture_trace": capture_trace,
                        "run_ns": run_ns,
                    },
                    preload=_MEASURE_PRELOAD,
                )
                payloads = [
                    (i, blobs.put(spec)) for i, spec in enumerate(pending)
                ]
                labels = [spec.name for spec in pending]
                keys = (
                    [measure_task_key(spec, strict, lint) for spec in pending]
                    if journal is not None
                    else None
                )
                outcomes, fallback = _execute(
                    _measure_task, payloads, jobs, supervision,
                    labels=labels, keys=keys, journal=journal,
                    namespaces=[
                        f"{run_ns}.w{i}" for i in range(len(pending))
                    ],
                    context=context,
                )
                for spec, outcome in zip(pending, outcomes):
                    mapping = merge_worker_telemetry(outcome)
                    extra: tuple[Diagnostic, ...] = ()
                    if fallback is not None and fallback.component == spec.name:
                        extra = (fallback,)
                    if outcome.error is not None:
                        errors.append(outcome.error)
                        continue
                    if outcome.value is None:
                        # Supervisor quarantine: structured failure, no
                        # measurement.
                        results[spec.name] = Result(
                            None,
                            remap_span_ids(outcome.diagnostics, mapping)
                            + extra,
                        )
                        continue
                    result = outcome.value
                    results[spec.name] = Result(
                        result.value,
                        remap_span_ids(result.diagnostics, mapping) + extra,
                    )
                    if cache is not None:
                        # Memoize pristine measurements for the next run's
                        # cache-aware dispatch (degraded results are never
                        # stored -- store_measurement refuses them).
                        cache.store_measurement(
                            memo_key[spec.name], results[spec.name]
                        )
        if errors:
            # Only strict mode lets exceptions out of a worker; re-raise
            # the first in batch order, matching sequential fail-fast.
            raise errors[0]
    # Memo hits were resolved before the dispatch loop; re-key the dict in
    # specs order so batch iteration matches the sequential path exactly.
    results = {s.name: results[s.name] for s in specs if s.name in results}
    return BatchMeasurement(results=results)


def lint_modules_parallel(
    design,
    names: Sequence[str],
    config,
    jobs: int,
    supervision: "SupervisionPolicy | bool | None" = None,
) -> list:
    """Lint the named modules of one design across a supervised pool.

    The parallel twin of the sequential loop in
    :func:`repro.lint.engine.lint_design`: one task per module, identical
    :class:`~repro.lint.engine.ModuleLintResult` list back (in ``names``
    order).  Worker telemetry merges on join like every other pool here;
    a module whose task is quarantined comes back with the supervisor's
    diagnostic in its ``errors`` (the lint report exit code already maps
    errors to 2).
    """
    from repro.lint.engine import ModuleLintResult

    capture_trace = obs_trace.active() is not None
    run_ns = _next_namespace("l")
    with obs_trace.span("lint.batch", modules=len(names), jobs=jobs), \
            BlobStore.create() as blobs:
        context = WorkerContext(
            values={
                "blobs": blobs, "design_ref": blobs.put(design),
                "config": config, "capture_trace": capture_trace,
                "run_ns": run_ns,
            },
            preload=_LINT_PRELOAD,
        )
        payloads = [(i, name) for i, name in enumerate(names)]
        outcomes, fallback = _execute(
            _lint_task, payloads, jobs, supervision, labels=list(names),
            namespaces=[f"{run_ns}.w{i}" for i in range(len(names))],
            context=context,
        )
        results = []
        for name, outcome in zip(names, outcomes):
            mapping = merge_worker_telemetry(outcome)
            if outcome.error is not None:
                # lint_module quarantines rule crashes itself; anything that
                # escapes a worker is an engine bug worth surfacing.
                raise outcome.error
            if outcome.value is None:
                errors = remap_span_ids(outcome.diagnostics, mapping)
                if fallback is not None and fallback.component == name:
                    errors += (fallback,)
                results.append(
                    ModuleLintResult(
                        module=name, file="", hash="",
                        findings=(), errors=errors,
                    )
                )
                continue
            results.append(outcome.value)
    return results


def synthesize_specializations(
    design,
    work: Sequence[tuple[str, Mapping[str, int]]],
    label: str,
    jobs: int,
    safe: bool,
    strict: bool = False,
    supervision: "SupervisionPolicy | bool | None" = None,
    journal: "RunJournal | str | None" = None,
    source_texts: Sequence[str] | None = None,
) -> list[TaskOutcome]:
    """Synthesize many specializations of one design across a pool.

    ``work`` is a list of ``(module, params)`` pairs (already deduplicated
    and cache-missed by the caller); the returned outcomes line up with it.
    Telemetry is merged and diagnostic span ids are remapped before return,
    so callers only look at ``value``/``error``/``diagnostics``.  A
    quarantined specialization comes back with ``value=None`` and the
    supervisor's stage-``"exec"`` diagnostic.  ``journal`` (requires
    ``source_texts`` for content-addressed keys) lets an interrupted
    specialization sweep resume.
    """
    capture_trace = obs_trace.active() is not None
    run_ns = _next_namespace("s")
    labels = [f"{label}:{module}" for module, _ in work]
    journal = RunJournal.open(journal)
    keys = None
    if journal is not None and source_texts is not None:
        keys = [
            synthesis_task_key(source_texts, module, params, safe, strict)
            for module, params in work
        ]
    merged: list[TaskOutcome] = []
    with BlobStore.create() as blobs:
        # The design is the heavy part of every specialization task; one
        # blob, fetched once per worker, replaces per-task re-pickling.
        context = WorkerContext(
            values={
                "blobs": blobs, "design_ref": blobs.put(design),
                "label": label, "safe": safe, "strict": strict,
                "capture_trace": capture_trace, "run_ns": run_ns,
            },
            preload=_SYNTH_PRELOAD,
        )
        payloads = [
            (i, module, dict(params))
            for i, (module, params) in enumerate(work)
        ]
        outcomes, fallback = _execute(
            _synthesize_task, payloads, jobs, supervision,
            labels=labels, keys=keys, journal=journal,
            namespaces=[f"{run_ns}.w{i}" for i in range(len(work))],
            context=context,
        )
        for task_label, outcome in zip(labels, outcomes):
            mapping = merge_worker_telemetry(outcome)
            diagnostics = remap_span_ids(outcome.diagnostics, mapping)
            if fallback is not None and fallback.component == task_label:
                diagnostics += (fallback,)
            merged.append(
                TaskOutcome(
                    value=outcome.value,
                    error=outcome.error,
                    diagnostics=diagnostics,
                    telemetry=None,
                )
            )
    return merged


def quarantined_to_error(outcome: TaskOutcome) -> TaskOutcome:
    """Convert a supervisor quarantine into a raising outcome.

    The raising (non-safe) callers treat ``error`` as "re-raise in the
    parent"; a quarantine has no exception object, so wrap its report in
    a RuntimeError for them.
    """
    if outcome.value is not None or outcome.error is not None:
        return outcome
    return TaskOutcome(
        value=None,
        error=RuntimeError(
            "task quarantined by the supervisor:\n"
            + render_report(list(outcome.diagnostics))
        ),
        diagnostics=outcome.diagnostics,
        telemetry=outcome.telemetry,
    )
