"""Parameter-recovery studies for the effort-model fitters.

The generative model of Section 3.1 is fully known here: we draw
Table-2-shaped datasets from chosen ``(w_k, sigma_rho, sigma_eps)`` via
:func:`repro.stats.simulate.simulate_dataset`, refit them with each of
the three fitters (exact-ML, Laplace/AGHQ, fixed-effects), and report

* **weight bias** — the mean relative error of the fitted ``w_k`` across
  replicate datasets, and
* **bootstrap-CI coverage** — how often a cluster-bootstrap percentile
  interval at the requested confidence contains the true weight, pooled
  over datasets and weights.  A calibrated interval covers at roughly
  the nominal rate; systematic under-coverage flags an overconfident
  fitter.

The fixed-effects fitter is deliberately misspecified when
``sigma_rho > 0`` (it assumes every team has productivity 1), so its
tolerance is documented separately; its *weights* remain nearly unbiased
because productivity scatter acts like extra multiplicative noise.

All randomness descends from one ``numpy.random.SeedSequence``: dataset
*d* draws from its own spawned child, so studies are reproducible and
independent of evaluation order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.stats.fixedeffects import fit_fixed_effects
from repro.stats.grouping import GroupedData
from repro.stats.laplace import fit_nlme_laplace
from repro.stats.nlme import fit_nlme
from repro.stats.simulate import simulate_dataset

FITTER_NAMES = ("exact-ml", "laplace", "fixed-effects")


def _fit_weights(fitter: str, data: GroupedData, *, fast: bool) -> np.ndarray:
    """Point-estimate the weights with one of the three fitters.

    ``fast`` selects cheaper settings for bootstrap replicates (single
    start / fewer quadrature nodes), mirroring how ``bootstrap_sigma``
    refits replicates with ``n_random_starts=1``.
    """
    if fitter == "exact-ml":
        return np.asarray(
            fit_nlme(data, n_random_starts=1 if fast else 2).weights)
    if fitter == "laplace":
        # 3 quadrature nodes for replicate refits; 1 node (pure Laplace)
        # is numerically fragile on resampled data and can stall.
        return np.asarray(
            fit_nlme_laplace(data, n_quadrature=3 if fast else 5).weights)
    if fitter == "fixed-effects":
        return np.asarray(
            fit_fixed_effects(data, n_random_starts=1 if fast else 2).weights)
    raise ValueError(f"unknown fitter {fitter!r}")


def _cluster_resample(data: GroupedData,
                      rng: np.random.Generator) -> GroupedData:
    """One cluster-bootstrap replicate (teams, then rows within teams).

    Clones of a drawn team become distinct groups, each with its own
    productivity draw under refitting — the same scheme as
    :func:`repro.stats.bootstrap.bootstrap_sigma`.
    """
    indices = data.group_indices()
    teams = list(indices)
    while True:
        drawn = rng.choice(len(teams), size=len(teams), replace=True)
        if len(set(drawn)) >= 2:
            break
    rows: list[int] = []
    groups: list[str] = []
    for clone_id, team_idx in enumerate(drawn):
        team_rows = indices[teams[team_idx]]
        resampled = rng.choice(team_rows, size=len(team_rows), replace=True)
        rows.extend(int(r) for r in resampled)
        groups.extend([f"boot{clone_id}"] * len(resampled))
    return GroupedData(
        efforts=data.efforts[rows],
        metrics=data.metrics[rows, :],
        groups=tuple(groups),
        metric_names=data.metric_names,
    )


@dataclass(frozen=True)
class FitterRecovery:
    """Recovery summary for one fitter."""

    fitter: str
    metric_names: tuple[str, ...]
    #: Mean over datasets of ``(w_hat - w_true) / w_true``, per weight.
    rel_bias: tuple[float, ...]
    #: Largest absolute relative bias over the weights.
    max_abs_rel_bias: float
    #: Fraction of (dataset, weight) bootstrap CIs containing the truth;
    #: ``None`` when the study ran without bootstrap.
    ci_coverage: float | None
    n_ci_checks: int
    n_datasets_fit: int
    failures: int

    def render(self) -> str:
        bias = ", ".join(
            f"{n}={b:+.3f}" for n, b in zip(self.metric_names, self.rel_bias))
        cov = ("n/a" if self.ci_coverage is None
               else f"{self.ci_coverage:.3f} ({self.n_ci_checks} checks)")
        return (f"{self.fitter:>13}: rel bias [{bias}] "
                f"max|bias|={self.max_abs_rel_bias:.3f} coverage={cov}"
                + (f" failures={self.failures}" if self.failures else ""))


@dataclass(frozen=True)
class RecoveryStudy:
    """Results of a full recovery study across fitters."""

    true_weights: tuple[float, ...]
    sigma_eps: float
    sigma_rho: float
    components_per_team: tuple[int, ...]
    n_datasets: int
    n_bootstrap: int
    confidence: float
    results: tuple[FitterRecovery, ...]

    def fitter(self, name: str) -> FitterRecovery:
        for result in self.results:
            if result.fitter == name:
                return result
        raise KeyError(name)

    def render(self) -> str:
        lines = [
            f"recovery study: {self.n_datasets} datasets, teams="
            f"{list(self.components_per_team)}, true w={list(self.true_weights)}, "
            f"sigma_eps={self.sigma_eps}, sigma_rho={self.sigma_rho}, "
            f"{self.n_bootstrap} bootstrap replicates "
            f"@ {self.confidence:.0%} confidence"
        ]
        lines.extend("  " + r.render() for r in self.results)
        return "\n".join(lines)


def run_recovery_study(
    true_weights: Sequence[float] = (0.05, 0.012),
    sigma_eps: float = 0.25,
    sigma_rho: float = 0.3,
    components_per_team: Sequence[int] = (4, 4, 4, 4, 3, 3, 3, 3),
    *,
    n_datasets: int = 12,
    n_bootstrap: int = 50,
    confidence: float = 0.95,
    seed: int = 0,
    fitters: Sequence[str] = FITTER_NAMES,
    bootstrap_fitters: Sequence[str] | None = None,
    metric_names: tuple[str, ...] = (),
    progress: Callable[[str], None] | None = None,
) -> RecoveryStudy:
    """Simulate, refit, and summarize bias + CI coverage per fitter.

    With ``n_bootstrap=0`` the (expensive) coverage half is skipped and
    only the point-estimate bias is reported.  ``bootstrap_fitters``
    selects which fitters get the coverage treatment; it defaults to
    every requested fitter *except* Laplace/AGHQ, whose refits cost
    roughly two orders of magnitude more than an exact-ML refit — pass
    ``bootstrap_fitters=FITTER_NAMES`` explicitly to pay for all three.
    """
    for fitter in fitters:
        if fitter not in FITTER_NAMES:
            raise ValueError(f"unknown fitter {fitter!r}")
    if bootstrap_fitters is None:
        bootstrap_fitters = tuple(f for f in fitters if f != "laplace")
    for fitter in bootstrap_fitters:
        if fitter not in fitters:
            raise ValueError(
                f"bootstrap fitter {fitter!r} not among fitters {fitters}")
    w_true = np.asarray(true_weights, dtype=float)
    names = metric_names or tuple(f"m{j}" for j in range(w_true.size))

    rel_errors: dict[str, list[np.ndarray]] = {f: [] for f in fitters}
    covered: dict[str, int] = {f: 0 for f in fitters}
    checks: dict[str, int] = {f: 0 for f in fitters}
    failures: dict[str, int] = {f: 0 for f in fitters}

    for d, child in enumerate(np.random.SeedSequence(seed).spawn(n_datasets)):
        data_stream, boot_stream = child.spawn(2)
        dataset = simulate_dataset(
            w_true, sigma_eps, sigma_rho, list(components_per_team),
            seed=np.random.default_rng(data_stream), metric_names=names)
        if progress is not None:
            progress(f"dataset {d + 1}/{n_datasets}")
        for fitter in fitters:
            try:
                w_hat = _fit_weights(fitter, dataset.data, fast=False)
            except Exception:
                failures[fitter] += 1
                continue
            rel_errors[fitter].append((w_hat - w_true) / w_true)
            if n_bootstrap <= 0 or fitter not in bootstrap_fitters:
                continue
            rng = np.random.default_rng(boot_stream)
            reps: list[np.ndarray] = []
            attempts = 0
            while len(reps) < n_bootstrap:
                attempts += 1
                if attempts > max(20, n_bootstrap * 20):
                    break
                replicate = _cluster_resample(dataset.data, rng)
                try:
                    reps.append(_fit_weights(fitter, replicate, fast=True))
                except Exception:
                    continue
            if len(reps) < n_bootstrap:
                failures[fitter] += 1
                continue
            stacked = np.vstack(reps)
            alpha = (1.0 - confidence) / 2.0
            lo = np.quantile(stacked, alpha, axis=0)
            hi = np.quantile(stacked, 1.0 - alpha, axis=0)
            for k in range(w_true.size):
                checks[fitter] += 1
                if lo[k] <= w_true[k] <= hi[k]:
                    covered[fitter] += 1

    results = []
    for fitter in fitters:
        errors = rel_errors[fitter]
        if errors:
            bias = np.mean(np.vstack(errors), axis=0)
        else:
            bias = np.full(w_true.size, np.nan)
        coverage = (covered[fitter] / checks[fitter]
                    if checks[fitter] else None)
        results.append(FitterRecovery(
            fitter=fitter,
            metric_names=names,
            rel_bias=tuple(float(b) for b in bias),
            max_abs_rel_bias=float(np.max(np.abs(bias))),
            ci_coverage=coverage,
            n_ci_checks=checks[fitter],
            n_datasets_fit=len(errors),
            failures=failures[fitter],
        ))
    return RecoveryStudy(
        true_weights=tuple(float(w) for w in w_true),
        sigma_eps=sigma_eps,
        sigma_rho=sigma_rho,
        components_per_team=tuple(int(n) for n in components_per_team),
        n_datasets=n_datasets,
        n_bootstrap=n_bootstrap,
        confidence=confidence,
        results=tuple(results),
    )
