"""Seeded assembler: tiles -> complete modules with known ground truth.

``generate_module`` draws a handful of tiles (see :mod:`repro.gen.tiles`),
renders a complete, well-formed Verilog-2001 or VHDL source file around
them, and sums the per-tile truths into the exact metric vector the
measurement pipeline must reproduce:

* ``Stmts`` — one per port (including a shared ``clk`` when any tile is
  sequential) plus each tile's AST-item count, plus the items of any
  auxiliary leaf modules in the same file;
* ``LoC`` — counted *while emitting*: every rendered code line increments
  the truth, while fuzzed-in comment lines, blank lines and Verilog block
  comments do not (trailing comments ride on code lines and change
  nothing).  This makes the comment stripper part of the tested surface;
* ``Nets``/``Cells``/``FFs``/``FanInLC`` — per-tile closed forms, plus
  auxiliary-module netlists once per instantiation (the oracle measures
  with ``AccountingPolicy.disabled()``, one accounting entry per
  instance).

Determinism: all randomness flows through an explicit
``numpy.random.Generator``.  ``generate_corpus`` gives module *i* its own
generator spawned from ``SeedSequence(seed)``, so corpora are reproducible
regardless of worker count or generation order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.accounting import AccountingPolicy
from repro.core.workflow import ComponentSpec
from repro.gen.tiles import TILE_KINDS, Tile, make_tile
from repro.hdl.source import VERILOG, VHDL, SourceFile

#: Comment payloads are deliberately adversarial: they look like code in
#: the *other* half of the grammar so a sloppy stripper would change the
#: statement counts.  None contain quotes or comment terminators.
_COMMENT_POOL = (
    "synthesis pragma: keep",
    "assign fake_y = fake_a + fake_b;",
    "if (reset) begin",
    "end else begin",
    "process(clk) is wrong here",
    "entity bogus is port (x : in std_logic);",
    "case sel is when others =>",
    "always @(posedge nothing)",
    "generate for fake in 0 to 3",
    "TODO: tune widths",
)


@dataclass(frozen=True)
class GeneratedModule:
    """A generated source plus the metrics it must measure as."""

    name: str
    language: str
    sources: tuple[SourceFile, ...]
    truth: dict[str, float]
    tile_kinds: tuple[str, ...]

    @property
    def spec(self) -> ComponentSpec:
        """A workflow spec measuring this module under the predictable
        (disabled) accounting policy."""
        return ComponentSpec.single(
            self.name, self.sources[0], top=self.name,
            policy=AccountingPolicy.disabled())


class _Emitter:
    """Accumulates source lines while tracking the LoC ground truth."""

    def __init__(self, language: str, rng: np.random.Generator,
                 comment_level: float = 1.0) -> None:
        self.language = language
        self.rng = rng
        self.level = comment_level
        self.lines: list[str] = []
        self.loc = 0

    def _chance(self, p: float) -> bool:
        return bool(self.rng.random() < p * self.level)

    def _comment_text(self) -> str:
        return str(self.rng.choice(_COMMENT_POOL))

    def _maybe_noise(self) -> None:
        """Insert non-code lines (never counted toward LoC)."""
        if self._chance(0.10):
            lead = "//" if self.language == VERILOG else "--"
            self.lines.append(f"{lead} {self._comment_text()}")
        if self._chance(0.08):
            self.lines.append("")
        if self.language == VERILOG and self._chance(0.04):
            self.lines.append("/* " + self._comment_text())
            for _ in range(int(self.rng.integers(0, 3))):
                self.lines.append("   " + self._comment_text())
            self.lines.append("*/")

    def code(self, line: str, indent: int = 0) -> None:
        """Emit one code line; counts toward LoC, may grow a trailing
        comment."""
        self._maybe_noise()
        text = " " * indent + line
        if self._chance(0.10):
            lead = "//" if self.language == VERILOG else "--"
            text += f"  {lead} {self._comment_text()}"
        self.lines.append(text)
        self.loc += 1

    def blank(self) -> None:
        self.lines.append("")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def _emit_verilog(em: _Emitter, name: str, tiles: list[Tile],
                  needs_clock: bool) -> None:
    params = [p for t in tiles for p in t.params]
    ports = (["input clk"] if needs_clock else [])
    ports += [p for t in tiles for p in t.ports]

    if params:
        em.code(f"module {name} #(")
        for i, p in enumerate(params):
            em.code(p + ("," if i < len(params) - 1 else ""), indent=2)
        em.code(") (")
    else:
        em.code(f"module {name} (")
    for i, p in enumerate(ports):
        em.code(p + ("," if i < len(ports) - 1 else ""), indent=2)
    em.code(");")
    for tile in tiles:
        for line in tile.decls:
            em.code(line, indent=2)
        for line in tile.body:
            em.code(line, indent=2)
    em.code("endmodule")
    # Auxiliary leaf modules share the file, after the top.
    for tile in tiles:
        for aux in tile.aux:
            em.blank()
            for line in aux.lines:
                em.code(line)


def _emit_vhdl(em: _Emitter, name: str, tiles: list[Tile],
               needs_clock: bool) -> None:
    em.code("library ieee;")
    em.code("use ieee.std_logic_1164.all;")
    em.code("use ieee.numeric_std.all;")
    em.blank()
    # Auxiliary entities first: real VHDL requires an entity to be
    # analysed before it is instantiated.
    for tile in tiles:
        for aux in tile.aux:
            for line in aux.lines:
                em.code(line)
            em.blank()

    params = [p for t in tiles for p in t.params]
    ports = (["clk : in std_logic"] if needs_clock else [])
    ports += [p for t in tiles for p in t.ports]

    em.code(f"entity {name} is")
    if params:
        em.code("generic (", indent=2)
        for i, p in enumerate(params):
            em.code(p + (";" if i < len(params) - 1 else ""), indent=4)
        em.code(");", indent=2)
    em.code("port (", indent=2)
    for i, p in enumerate(ports):
        em.code(p + (";" if i < len(ports) - 1 else ""), indent=4)
    em.code(");", indent=2)
    em.code("end entity;")
    em.blank()
    em.code(f"architecture rtl of {name} is")
    for tile in tiles:
        for line in tile.decls:
            em.code(line, indent=2)
    em.code("begin")
    for tile in tiles:
        for line in tile.body:
            em.code(line, indent=2)
    em.code("end architecture;")


def generate_module(language: str, name: str, rng: np.random.Generator,
                    *, n_tiles: int | None = None,
                    comment_level: float = 1.0,
                    kinds: tuple[str, ...] | None = None) -> GeneratedModule:
    """Generate one module and its exact metric ground truth.

    ``kinds`` restricts the tile pool (default: all of ``TILE_KINDS``);
    the lint oracle uses this to build corpora that are clean by
    construction (e.g. without ``param_width``, whose deliberately
    non-minimal defaults are a real ACC002 violation).
    """
    if language not in (VERILOG, VHDL):
        raise ValueError(f"unknown language {language!r}")
    pool = tuple(kinds) if kinds is not None else TILE_KINDS
    unknown = set(pool) - set(TILE_KINDS)
    if unknown:
        raise ValueError(f"unknown tile kinds {sorted(unknown)}")
    if n_tiles is None:
        n_tiles = int(rng.integers(2, 6))
    kinds = [str(rng.choice(pool)) for _ in range(n_tiles)]

    tiles = [make_tile(kind, f"t{i}", language, rng, top=name)
             for i, kind in enumerate(kinds)]
    needs_clock = any(t.needs_clock for t in tiles)

    em = _Emitter(language, rng, comment_level)
    if language == VERILOG:
        _emit_verilog(em, name, tiles, needs_clock)
        filename = f"{name}.v"
    else:
        _emit_vhdl(em, name, tiles, needs_clock)
        filename = f"{name}.vhd"

    # Each tile's ``stmts`` already includes its ParamDecl items; ports
    # are counted here (one statement per port declaration).
    stmts = sum(t.stmts + len(t.ports) for t in tiles)
    nets = sum(t.nets for t in tiles)
    cells = sum(t.cells for t in tiles)
    ffs = sum(t.ffs for t in tiles)
    fanin = sum(t.fanin_lc for t in tiles)
    if needs_clock:
        stmts += 1   # the clk port declaration
        nets += 1    # the clk input net
    for tile in tiles:
        for aux in tile.aux:
            stmts += aux.stmts  # source text counted once...
            nets += aux.instances * aux.nets    # ...netlist per instance
            cells += aux.instances * aux.cells
            ffs += aux.instances * aux.ffs
            fanin += aux.instances * aux.fanin_lc

    truth = {
        "LoC": float(em.loc),
        "Stmts": float(stmts),
        "Nets": float(nets),
        "Cells": float(cells),
        "FFs": float(ffs),
        "FanInLC": float(fanin),
    }
    return GeneratedModule(
        name=name,
        language=language,
        sources=(SourceFile(name=filename, text=em.text()),),
        truth=truth,
        tile_kinds=tuple(kinds),
    )


def generate_corpus(language: str, count: int, seed: int = 0,
                    *, name_prefix: str = "gm",
                    comment_level: float = 1.0,
                    kinds: tuple[str, ...] | None = None) -> list[GeneratedModule]:
    """Generate ``count`` independent modules.

    Module *i* uses its own child of ``SeedSequence(seed)``, so its
    content depends only on ``(seed, i)`` — not on ``count`` or on any
    other module — which keeps corpora stable across incremental reuse
    and parallel measurement.
    """
    suffix = "v" if language == VERILOG else "h"
    children = np.random.SeedSequence(seed).spawn(count)
    return [
        generate_module(
            language,
            f"{name_prefix}{i:03d}_{suffix}",
            np.random.default_rng(child),
            comment_level=comment_level,
            kinds=kinds,
        )
        for i, child in enumerate(children)
    ]
