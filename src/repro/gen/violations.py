"""Violation-injecting generators: the lint oracle's adversarial half.

:mod:`repro.gen.hdlgen` builds corpora with exact *metric* ground truth;
this module builds corpora with exact *violation* ground truth.  Each
injector emits a micro-module (or, for duplicates, a renamed clone of a
generated module) that violates exactly one lint rule and nothing else, in
either language, so the oracle test can assert

    findings == injected violations   (no misses, no false positives).

``clean_kinds()`` is the companion guarantee: the tile pool under which
:func:`repro.gen.hdlgen.generate_corpus` output is lint-clean by
construction.  Two tile kinds are excluded:

* ``param_width`` declares deliberately non-minimal parameter defaults --
  a genuine ACC002 violation (that is its job in the metrics oracle);
* ``child_instance`` stamps out structurally identical one-gate leaf
  modules under different names -- a genuine ACC001 collision when many
  generated files are linted as one catalog.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from repro.gen.hdlgen import generate_module
from repro.gen.tiles import TILE_KINDS
from repro.hdl.source import VERILOG, SourceFile

#: Injectable violation kinds, mapped to the rule each must trigger.
VIOLATION_RULES = {
    "duplicate_module": "ACC001",
    "bloated_parameter": "ACC002",
    "dead_generate_arm": "ACC003",
    "constant_false_if": "ACC003",
    "dangling_net": "W001",
    "inferred_latch": "W002",
    "comb_loop": "W003",
    "width_mismatch": "W004",
    "clock_domain_crossing": "W005",
    "multi_driven": "W006",
    "dead_cone": "W007",
}

VIOLATION_KINDS: tuple[str, ...] = tuple(VIOLATION_RULES)


def clean_kinds() -> tuple[str, ...]:
    """Tile kinds whose generated modules carry zero lint findings."""
    return tuple(
        k for k in TILE_KINDS if k not in ("param_width", "child_instance")
    )


@dataclass(frozen=True)
class InjectedViolation:
    """One planted violation and the finding the linter must emit for it."""

    kind: str
    rule: str
    module: str  # the module the finding must be anchored to
    sources: tuple[SourceFile, ...]


def _src(name: str, language: str, body: str) -> tuple[SourceFile, ...]:
    ext = "v" if language == VERILOG else "vhd"
    return (SourceFile(name=f"{name}.{ext}", text=body.strip() + "\n"),)


def _vhdl_wrap(name: str, generics: str, ports: str, decls: str,
               body: str) -> str:
    generic_clause = f"\n  generic ({generics});" if generics else ""
    return f"""
library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity {name} is{generic_clause}
  port ({ports});
end entity;

architecture rtl of {name} is
{decls}begin
{body}end architecture;
"""


def _inject_duplicate_module(
    language: str, name: str, rng: np.random.Generator
) -> InjectedViolation:
    """A generated module plus a clone with every identifier renamed.

    The clone is textually disjoint from the original (module name, tile
    identifiers) yet structurally isomorphic, which is exactly the
    renamed-copy-paste case ACC001's structural hashing must catch.
    """
    original = generate_module(
        language, name, rng, kinds=clean_kinds(), comment_level=0.0
    )
    copy_name = f"{name}_clone"
    text = original.sources[0].text
    text = re.sub(rf"\b{re.escape(name)}\b", copy_name, text)
    text = re.sub(r"\bt(\d+)_", r"u\1_", text)
    ext = "v" if language == VERILOG else "vhd"
    return InjectedViolation(
        kind="duplicate_module",
        rule="ACC001",
        module=copy_name,
        sources=(
            original.sources[0],
            SourceFile(name=f"{copy_name}.{ext}", text=text),
        ),
    )


def _inject_bloated_parameter(language: str, name: str) -> InjectedViolation:
    # Minimal non-degenerate W is 2 (W=1 gives tmp zero width and fails
    # elaboration), but the declared default is 4.
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} #(parameter W = 4) (
  input [W-1:0] a,
  output [W-1:0] y
);
  wire [W-2:0] tmp;
  assign tmp = a[W-2:0];
  assign y = {{a[W-1], tmp}};
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "W : integer := 4",
            f"""
    a : in std_logic_vector(W-1 downto 0);
    y : out std_logic_vector(W-1 downto 0)
  """,
            "  signal tmp : std_logic_vector(W-2 downto 0);\n",
            "  tmp <= a(W-2 downto 0);\n  y <= a(W-1) & tmp;\n",
        ))
    return InjectedViolation("bloated_parameter", "ACC002", name, sources)


def _inject_dead_generate_arm(language: str, name: str) -> InjectedViolation:
    # MODE is a local constant, so the generate condition folds regardless
    # of parameterization; the arm re-drives an already-driven net so the
    # eliminated statements trip no other rule.
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input a,
  output y
);
  localparam MODE = 0;
  wire t;
  assign t = a;
  assign y = t;
  generate
    if (MODE == 1) begin
      assign t = ~a;
    end
  endgenerate
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "a : in std_logic;\n    y : out std_logic",
            "  constant MODE : integer := 0;\n  signal t : std_logic;\n",
            """  t <= a;
  y <= t;
  gdead: if MODE = 1 generate
    t <= not a;
  end generate;
""",
        ))
    return InjectedViolation("dead_generate_arm", "ACC003", name, sources)


def _inject_constant_false_if(language: str, name: str) -> InjectedViolation:
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input a,
  input b,
  output reg y
);
  always @(*) begin
    y = a;
    if (1 == 0) begin
      y = b;
    end
  end
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "a : in std_logic;\n    b : in std_logic;\n    "
            "y : out std_logic",
            "",
            """  process(a, b)
  begin
    y <= a;
    if 1 = 0 then
      y <= b;
    end if;
  end process;
""",
        ))
    return InjectedViolation("constant_false_if", "ACC003", name, sources)


def _inject_dangling_net(language: str, name: str) -> InjectedViolation:
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input a,
  output y
);
  wire floating;
  assign y = a;
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "a : in std_logic;\n    y : out std_logic",
            "  signal floating : std_logic;\n",
            "  y <= a;\n",
        ))
    return InjectedViolation("dangling_net", "W001", name, sources)


def _inject_inferred_latch(language: str, name: str) -> InjectedViolation:
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input s,
  input d,
  output reg q
);
  always @(*) begin
    if (s) begin
      q = d;
    end
  end
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "s : in std_logic;\n    d : in std_logic;\n    "
            "q : out std_logic",
            "",
            """  process(s, d)
  begin
    if s = '1' then
      q <= d;
    end if;
  end process;
""",
        ))
    return InjectedViolation("inferred_latch", "W002", name, sources)


def _inject_comb_loop(language: str, name: str) -> InjectedViolation:
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input a,
  output y
);
  wire p;
  wire q;
  assign p = q & a;
  assign q = p | a;
  assign y = p;
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "a : in std_logic;\n    y : out std_logic",
            "  signal p : std_logic;\n  signal q : std_logic;\n",
            "  p <= q and a;\n  q <= p or a;\n  y <= p;\n",
        ))
    return InjectedViolation("comb_loop", "W003", name, sources)


def _inject_width_mismatch(language: str, name: str) -> InjectedViolation:
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input [7:0] a,
  output [7:0] y
);
  wire [3:0] lo;
  assign lo = a[3:0];
  assign y = lo;
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "a : in std_logic_vector(7 downto 0);\n    "
            "y : out std_logic_vector(7 downto 0)",
            "  signal lo : std_logic_vector(3 downto 0);\n",
            "  lo <= a(3 downto 0);\n  y <= lo;\n",
        ))
    return InjectedViolation("width_mismatch", "W004", name, sources)


def _inject_clock_domain_crossing(
    language: str, name: str
) -> InjectedViolation:
    # ``src`` launches in the clka domain and ``dst`` captures it in clkb
    # with no synchronizer: ``dst`` is consumed combinationally, so the
    # two-flop exception of W005 does not apply.
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input clka,
  input clkb,
  input d,
  output y
);
  reg src;
  reg dst;
  always @(posedge clka) begin
    src <= d;
  end
  always @(posedge clkb) begin
    dst <= src;
  end
  assign y = dst;
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "clka : in std_logic;\n    clkb : in std_logic;\n    "
            "d : in std_logic;\n    y : out std_logic",
            "  signal src : std_logic;\n  signal dst : std_logic;\n",
            """  process(clka)
  begin
    if rising_edge(clka) then
      src <= d;
    end if;
  end process;
  process(clkb)
  begin
    if rising_edge(clkb) then
      dst <= src;
    end if;
  end process;
  y <= dst;
""",
        ))
    return InjectedViolation("clock_domain_crossing", "W005", name, sources)


def synchronized_crossing(language: str, name: str) -> tuple[SourceFile, ...]:
    """Negative control: the same crossing behind a two-flop synchronizer.

    Not a violation kind -- this module must lint *clean*.  The oracle
    suite uses it to pin W005's synchronizer exception: ``sync1`` is a
    direct capture whose only reader is another flop in the same domain.
    """
    if language == VERILOG:
        return _src(name, language, f"""
module {name} (
  input clka,
  input clkb,
  input d,
  output y
);
  reg src;
  reg sync1;
  reg sync2;
  always @(posedge clka) begin
    src <= d;
  end
  always @(posedge clkb) begin
    sync1 <= src;
    sync2 <= sync1;
  end
  assign y = sync2;
endmodule
""")
    return _src(name, language, _vhdl_wrap(
        name,
        "",
        "clka : in std_logic;\n    clkb : in std_logic;\n    "
        "d : in std_logic;\n    y : out std_logic",
        "  signal src : std_logic;\n  signal sync1 : std_logic;\n"
        "  signal sync2 : std_logic;\n",
        """  process(clka)
  begin
    if rising_edge(clka) then
      src <= d;
    end if;
  end process;
  process(clkb)
  begin
    if rising_edge(clkb) then
      sync1 <= src;
      sync2 <= sync1;
    end if;
  end process;
  y <= sync2;
""",
    ))


def _inject_multi_driven(language: str, name: str) -> InjectedViolation:
    # Two continuous assignments contend for the whole of ``t``.  The net
    # is read and reaches the output, so W001/W007 stay silent.
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input a,
  input b,
  output y
);
  wire t;
  assign t = a;
  assign t = b;
  assign y = t;
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "a : in std_logic;\n    b : in std_logic;\n    "
            "y : out std_logic",
            "  signal t : std_logic;\n",
            "  t <= a;\n  t <= b;\n  y <= t;\n",
        ))
    return InjectedViolation("multi_driven", "W006", name, sources)


def _inject_dead_cone(language: str, name: str) -> InjectedViolation:
    # ``acc``/``nxt`` feed each other (so both are driven *and* read,
    # keeping W001 silent) but nothing in the pair reaches an output.
    if language == VERILOG:
        sources = _src(name, language, f"""
module {name} (
  input clk,
  input a,
  output y
);
  reg acc;
  wire nxt;
  assign nxt = acc ^ a;
  always @(posedge clk) begin
    acc <= nxt;
  end
  assign y = a;
endmodule
""")
    else:
        sources = _src(name, language, _vhdl_wrap(
            name,
            "",
            "clk : in std_logic;\n    a : in std_logic;\n    "
            "y : out std_logic",
            "  signal acc : std_logic;\n  signal nxt : std_logic;\n",
            """  nxt <= acc xor a;
  process(clk)
  begin
    if rising_edge(clk) then
      acc <= nxt;
    end if;
  end process;
  y <= a;
""",
        ))
    return InjectedViolation("dead_cone", "W007", name, sources)


def inject_violation(
    kind: str,
    language: str,
    name: str,
    rng: np.random.Generator | None = None,
) -> InjectedViolation:
    """Build one violating micro-corpus of the given kind."""
    if kind not in VIOLATION_RULES:
        raise ValueError(
            f"unknown violation kind {kind!r}; expected one of "
            f"{sorted(VIOLATION_RULES)}"
        )
    if kind == "duplicate_module":
        if rng is None:
            rng = np.random.default_rng(0)
        return _inject_duplicate_module(language, name, rng)
    builder = {
        "bloated_parameter": _inject_bloated_parameter,
        "dead_generate_arm": _inject_dead_generate_arm,
        "constant_false_if": _inject_constant_false_if,
        "dangling_net": _inject_dangling_net,
        "inferred_latch": _inject_inferred_latch,
        "comb_loop": _inject_comb_loop,
        "width_mismatch": _inject_width_mismatch,
        "clock_domain_crossing": _inject_clock_domain_crossing,
        "multi_driven": _inject_multi_driven,
        "dead_cone": _inject_dead_cone,
    }[kind]
    return builder(language, name)


def violation_corpus(
    language: str,
    seed: int = 0,
    kinds: tuple[str, ...] = VIOLATION_KINDS,
) -> tuple[list[SourceFile], set[tuple[str, str]]]:
    """One corpus containing every requested violation exactly once.

    Returns ``(sources, expected)`` where ``expected`` is the set of
    ``(rule, module)`` pairs the linter must report -- and must report
    *nothing else* on this corpus (the oracle contract).
    """
    rng = np.random.default_rng(np.random.SeedSequence(seed))
    sources: list[SourceFile] = []
    expected: set[tuple[str, str]] = set()
    suffix = "v" if language == VERILOG else "h"
    for i, kind in enumerate(kinds):
        injected = inject_violation(
            kind, language, f"bad_{kind}_{i:02d}_{suffix}", rng=rng
        )
        sources.extend(injected.sources)
        expected.add((injected.rule, injected.module))
    return sources, expected
