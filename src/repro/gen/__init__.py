"""Ground-truth generators and the harnesses that check the pipeline
against them.

Two generators, one idea: produce inputs whose correct answers are known
*by construction*, then demand the pipeline reproduce them exactly.

* :mod:`repro.gen.tiles` / :mod:`repro.gen.hdlgen` — synthetic
  Verilog-2001 and VHDL modules with closed-form ``LoC``/``Stmts``/
  ``Nets``/``Cells``/``FFs``/``FanInLC``;
* :mod:`repro.gen.oracle` — the differential oracle over
  ``measure_components``;
* :mod:`repro.gen.recovery` — effort-model parameter-recovery studies
  (weight bias + bootstrap-CI coverage for all three fitters);
* :mod:`repro.gen.selftest` — the orchestrated ``repro selftest``
  report.
"""

from repro.gen.hdlgen import (
    GeneratedModule,
    generate_corpus,
    generate_module,
)
from repro.gen.oracle import (
    ORACLE_METRICS,
    OracleMismatch,
    OracleReport,
    corpus_specs,
    run_differential_oracle,
)
from repro.gen.recovery import (
    FITTER_NAMES,
    FitterRecovery,
    RecoveryStudy,
    run_recovery_study,
)
from repro.gen.selftest import (
    BIAS_TOLERANCE,
    COVERAGE_BAND,
    CheckResult,
    SelfTestReport,
    run_selftest,
)

__all__ = [
    "BIAS_TOLERANCE",
    "COVERAGE_BAND",
    "CheckResult",
    "FITTER_NAMES",
    "FitterRecovery",
    "GeneratedModule",
    "ORACLE_METRICS",
    "OracleMismatch",
    "OracleReport",
    "RecoveryStudy",
    "SelfTestReport",
    "corpus_specs",
    "generate_corpus",
    "generate_module",
    "run_differential_oracle",
    "run_recovery_study",
    "run_selftest",
]
