"""Ground-truth generators and the harnesses that check the pipeline
against them.

Two generators, one idea: produce inputs whose correct answers are known
*by construction*, then demand the pipeline reproduce them exactly.

* :mod:`repro.gen.tiles` / :mod:`repro.gen.hdlgen` — synthetic
  Verilog-2001 and VHDL modules with closed-form ``LoC``/``Stmts``/
  ``Nets``/``Cells``/``FFs``/``FanInLC``;
* :mod:`repro.gen.oracle` — the differential oracle over
  ``measure_components``;
* :mod:`repro.gen.recovery` — effort-model parameter-recovery studies
  (weight bias + bootstrap-CI coverage for all three fitters);
* :mod:`repro.gen.selftest` — the orchestrated ``repro selftest``
  report;
* :mod:`repro.gen.violations` — violation-injecting variants with exact
  lint-finding ground truth (the ``repro.lint`` oracle).
"""

from repro.gen.hdlgen import (
    GeneratedModule,
    generate_corpus,
    generate_module,
)
from repro.gen.oracle import (
    ORACLE_METRICS,
    OracleMismatch,
    OracleReport,
    corpus_specs,
    run_differential_oracle,
)
from repro.gen.recovery import (
    FITTER_NAMES,
    FitterRecovery,
    RecoveryStudy,
    run_recovery_study,
)
from repro.gen.selftest import (
    BIAS_TOLERANCE,
    COVERAGE_BAND,
    CheckResult,
    SelfTestReport,
    run_selftest,
)
from repro.gen.violations import (
    VIOLATION_KINDS,
    VIOLATION_RULES,
    InjectedViolation,
    clean_kinds,
    inject_violation,
    violation_corpus,
)

__all__ = [
    "BIAS_TOLERANCE",
    "COVERAGE_BAND",
    "CheckResult",
    "FITTER_NAMES",
    "FitterRecovery",
    "GeneratedModule",
    "InjectedViolation",
    "ORACLE_METRICS",
    "OracleMismatch",
    "OracleReport",
    "RecoveryStudy",
    "SelfTestReport",
    "VIOLATION_KINDS",
    "VIOLATION_RULES",
    "clean_kinds",
    "corpus_specs",
    "generate_corpus",
    "generate_module",
    "inject_violation",
    "run_differential_oracle",
    "run_recovery_study",
    "run_selftest",
    "violation_corpus",
]
