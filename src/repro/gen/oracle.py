"""Differential oracle: generated corpora vs. the measurement pipeline.

Every generated module carries the metric vector it *must* measure as
(see :mod:`repro.gen.hdlgen`).  The oracle pushes a corpus through
``measure_components`` — the same batch entry point the CLI uses, so the
parallel and cache layers are exercised too — and demands an exact match
on every integer-valued metric.  Any deviation is reported with the tile
recipe that produced it, which localizes regressions to a specific
lexer/parser/elaborator/synthesis rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

from repro.core.workflow import ComponentSpec, measure_components
from repro.gen.hdlgen import GeneratedModule

if TYPE_CHECKING:  # pragma: no cover
    from repro.cache import SynthesisCache

#: Metrics compared exactly (all are integer counts by construction).
ORACLE_METRICS = ("LoC", "Stmts", "Nets", "Cells", "FFs", "FanInLC")


@dataclass(frozen=True)
class OracleMismatch:
    """One metric that measured differently than it was constructed."""

    module: str
    language: str
    metric: str
    expected: float
    measured: float | None
    tile_kinds: tuple[str, ...]

    def render(self) -> str:
        got = "missing" if self.measured is None else f"{self.measured:g}"
        return (f"{self.module} [{self.language}] {self.metric}: "
                f"expected {self.expected:g}, measured {got} "
                f"(tiles: {', '.join(self.tile_kinds)})")


@dataclass(frozen=True)
class OracleReport:
    """Outcome of one differential-oracle run."""

    n_modules: int
    n_checks: int
    mismatches: tuple[OracleMismatch, ...] = ()
    failures: tuple[str, ...] = field(default=())

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.failures

    def render(self) -> str:
        lines = [
            f"differential oracle: {self.n_modules} modules, "
            f"{self.n_checks} metric checks, "
            f"{len(self.mismatches)} mismatches, "
            f"{len(self.failures)} measurement failures"
        ]
        lines.extend("  " + m.render() for m in self.mismatches[:20])
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        lines.extend(f"  FAILED to measure: {name}" for name in self.failures)
        return "\n".join(lines)


def corpus_specs(modules: Sequence[GeneratedModule]) -> list[ComponentSpec]:
    """Batch specs for a generated corpus (disabled accounting policy)."""
    return [gm.spec for gm in modules]


def run_differential_oracle(
    modules: Sequence[GeneratedModule],
    *,
    jobs: int = 1,
    cache: "SynthesisCache | None" = None,
) -> OracleReport:
    """Measure a corpus and compare each module against its ground truth."""
    batch = measure_components(corpus_specs(modules), jobs=jobs, cache=cache)
    measured = {name: m.metrics for name, m in batch.measurements.items()}

    mismatches: list[OracleMismatch] = []
    failures: list[str] = []
    n_checks = 0
    for gm in modules:
        metrics = measured.get(gm.name)
        if metrics is None:
            failures.append(gm.name)
            continue
        for key in ORACLE_METRICS:
            n_checks += 1
            got = metrics.get(key)
            if got is None or abs(got - gm.truth[key]) > 1e-9:
                mismatches.append(OracleMismatch(
                    module=gm.name,
                    language=gm.language,
                    metric=key,
                    expected=gm.truth[key],
                    measured=got,
                    tile_kinds=gm.tile_kinds,
                ))
    return OracleReport(
        n_modules=len(modules),
        n_checks=n_checks,
        mismatches=tuple(mismatches),
        failures=tuple(failures),
    )
