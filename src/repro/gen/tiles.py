"""Tile catalog for the ground-truth HDL generator.

A *tile* is a small, self-contained fragment of RTL (a few ports plus a
few lines of body) whose contribution to every pipeline metric is known in
closed form, by construction.  Generated modules are concatenations of
tiles with globally unique signal names, so per-tile truths add up:

* tiles never share nets, so the synthesizer's common-subexpression
  elimination cannot merge logic across tiles;
* every tile's logic cones fit inside a single 8-input LUT, so the greedy
  packer never re-roots anything and the FanInLC contribution of a tile is
  exactly the sum of its root cut sizes;
* constants are the only shared nets, and constants are excluded from
  both the net count (``n_nets`` subtracts CONST0/CONST1) and LUT leaf
  sets.

Each factory returns a :class:`Tile` carrying rendered source lines for
one language plus the exact ``Stmts``/``Nets``/``Cells``/``FFs``/
``FanInLC`` contribution.  The formulas are verified against the real
pipeline by ``tests/gen/test_oracle.py``; if a lowering or packing rule
changes, the oracle — not this docstring — is the authority.

Per-language asymmetries are deliberate and encoded here: VHDL boolean
tests spell ``s = '1'``, which lowers through ``_eq`` to two extra INV
cells (and nets) that Verilog's bare ``s ? a : b`` does not create.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hdl.source import VERILOG, VHDL


@dataclass(frozen=True)
class AuxModule:
    """A helper module emitted alongside the top (for instance tiles)."""

    name: str
    lines: tuple[str, ...]
    #: Metric contribution of ONE copy of this module's netlist.
    stmts: int = 0
    nets: int = 0
    cells: int = 0
    ffs: int = 0
    fanin_lc: int = 0
    #: How many times the top instantiates it (the disabled accounting
    #: policy counts the netlist once per instance; source-level metrics
    #: — Stmts and LoC — are counted once per module regardless).
    instances: int = 1


@dataclass(frozen=True)
class Tile:
    """One rendered RTL fragment plus its exact metric contribution."""

    kind: str
    #: Rendered parameter/generic declarations (no separators).
    params: tuple[str, ...] = ()
    #: Rendered port declarations (no separators, no trailing comma).
    ports: tuple[str, ...] = ()
    #: Internal declarations (``wire``/``signal`` lines, with ``;``).
    decls: tuple[str, ...] = ()
    #: Body statements (with ``;`` where required).
    body: tuple[str, ...] = ()
    #: AST items contributed to the top module (ports counted separately).
    stmts: int = 0
    nets: int = 0
    cells: int = 0
    ffs: int = 0
    fanin_lc: int = 0
    needs_clock: bool = False
    aux: tuple[AuxModule, ...] = field(default=())


def _vec(language: str, width: int) -> str:
    """Render a vector type/range of the given width."""
    if language == VERILOG:
        return f"[{width - 1}:0] "
    return f"std_logic_vector({width - 1} downto 0)"


def _vport(language: str, name: str, direction: str, width: int | None) -> str:
    """Render one port declaration (width ``None`` means scalar)."""
    if language == VERILOG:
        rng = "" if width is None else f"[{width - 1}:0] "
        return f"{direction} {rng}{name}"
    vhdl_dir = {"input": "in", "output": "out"}[direction]
    typ = "std_logic" if width is None else _vec(VHDL, width)
    return f"{name} : {vhdl_dir} {typ}"


def _assign(language: str, target: str, value: str) -> str:
    if language == VERILOG:
        return f"assign {target} = {value};"
    return f"{target} <= {value};"


# ---------------------------------------------------------------------------
# Combinational tiles
# ---------------------------------------------------------------------------


def t_and_or(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """``y = (a & b) | c`` — 2 cells and 3 cut leaves per bit."""
    w = int(rng.integers(2, 7))
    a, b, c, y = (f"{uid}_{p}" for p in "abcy")
    if language == VERILOG:
        body = (_assign(language, y, f"({a} & {b}) | {c}"),)
    else:
        body = (_assign(language, y, f"({a} and {b}) or {c}"),)
    return Tile(
        kind="and_or",
        ports=tuple(_vport(language, n, d, w)
                    for n, d in ((a, "input"), (b, "input"),
                                 (c, "input"), (y, "output"))),
        body=body,
        stmts=1, nets=5 * w, cells=2 * w, fanin_lc=3 * w,
    )


def t_wire_stage(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Same logic as ``and_or`` but staged through an internal net."""
    w = int(rng.integers(2, 7))
    a, b, c, y, t = (f"{uid}_{p}" for p in "abcyt")
    if language == VERILOG:
        decls = (f"wire [{w - 1}:0] {t};",)
        body = (_assign(language, t, f"{a} & {b}"),
                _assign(language, y, f"{t} | {c}"))
    else:
        decls = (f"signal {t} : {_vec(VHDL, w)};",)
        body = (_assign(language, t, f"{a} and {b}"),
                _assign(language, y, f"{t} or {c}"))
    return Tile(
        kind="wire_stage",
        ports=tuple(_vport(language, n, d, w)
                    for n, d in ((a, "input"), (b, "input"),
                                 (c, "input"), (y, "output"))),
        decls=decls,
        body=body,
        stmts=3, nets=5 * w, cells=2 * w, fanin_lc=3 * w,
    )


def t_mux(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """2:1 mux.  VHDL's ``s = '1'`` costs two extra INV cells/nets."""
    w = int(rng.integers(2, 6))
    a, b, s, y = (f"{uid}_{p}" for p in "absy")
    if language == VERILOG:
        body = (_assign(language, y, f"{s} ? {a} : {b}"),)
        nets, cells = 3 * w + 1, w
    else:
        body = (f"{y} <= {a} when {s} = '1' else {b};",)
        nets, cells = 3 * w + 3, w + 2
    return Tile(
        kind="mux",
        ports=(
            _vport(language, a, "input", w),
            _vport(language, b, "input", w),
            _vport(language, s, "input", None),
            _vport(language, y, "output", w),
        ),
        body=body,
        stmts=1, nets=nets, cells=cells, fanin_lc=3 * w,
    )


def t_xor_chain(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Parity reduce: unary ``^a`` in Verilog, an xor chain in VHDL."""
    w = int(rng.integers(2, 9))
    a, y = f"{uid}_a", f"{uid}_y"
    if language == VERILOG:
        body = (_assign(language, y, f"^{a}"),)
    else:
        chain = " xor ".join(f"{a}({i})" for i in range(w))
        body = (_assign(language, y, chain),)
    return Tile(
        kind="xor_chain",
        ports=(_vport(language, a, "input", w),
               _vport(language, y, "output", None)),
        body=body,
        stmts=1, nets=2 * w - 1, cells=w - 1, fanin_lc=w,
    )


def t_adder(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Ripple adder, W <= 3 so the dead final-carry cone fits one LUT."""
    w = int(rng.integers(1, 4))
    a, b, y = (f"{uid}_{p}" for p in "aby")
    if language == VERILOG:
        body = (_assign(language, y, f"{a} + {b}"),)
    else:
        body = (_assign(
            language, y,
            f"std_logic_vector(unsigned({a}) + unsigned({b}))"),)
    return Tile(
        kind="adder",
        ports=(_vport(language, a, "input", w),
               _vport(language, b, "input", w),
               _vport(language, y, "output", w)),
        body=body,
        stmts=1, nets=7 * w - 3, cells=5 * w - 3,
        fanin_lc=w * (w + 1),
    )


def t_shift_const(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Constant left shift — pure wiring, zero cells."""
    w = int(rng.integers(2, 7))
    k = int(rng.integers(1, w))
    a, y = f"{uid}_a", f"{uid}_y"
    if language == VERILOG:
        body = (_assign(language, y, f"{a} << {k}"),)
    else:
        body = (_assign(
            language, y, f"std_logic_vector(unsigned({a}) sll {k})"),)
    return Tile(
        kind="shift_const",
        ports=(_vport(language, a, "input", w),
               _vport(language, y, "output", w)),
        body=body,
        stmts=1, nets=w, cells=0, fanin_lc=0,
    )


def t_concat_pair(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """``y = {a, b}`` — wiring only; y is twice as wide."""
    w = int(rng.integers(2, 5))
    a, b, y = (f"{uid}_{p}" for p in "aby")
    if language == VERILOG:
        body = (_assign(language, y, f"{{{a}, {b}}}"),)
    else:
        body = (_assign(language, y, f"{a} & {b}"),)
    return Tile(
        kind="concat_pair",
        ports=(_vport(language, a, "input", w),
               _vport(language, b, "input", w),
               _vport(language, y, "output", 2 * w)),
        body=body,
        stmts=1, nets=2 * w, cells=0, fanin_lc=0,
    )


# ---------------------------------------------------------------------------
# Sequential tiles
# ---------------------------------------------------------------------------


def t_register(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Plain register: W flip-flops, no combinational logic."""
    w = int(rng.integers(2, 7))
    d, q = f"{uid}_d", f"{uid}_q"
    if language == VERILOG:
        ports = (_vport(language, d, "input", w),
                 f"output reg [{w - 1}:0] {q}")
        body = (
            "always @(posedge clk) begin",
            f"  {q} <= {d};",
            "end",
        )
    else:
        ports = (_vport(language, d, "input", w),
                 _vport(language, q, "output", w))
        body = (
            "process(clk)",
            "begin",
            "  if rising_edge(clk) then",
            f"    {q} <= {d};",
            "  end if;",
            "end process;",
        )
    return Tile(
        kind="register",
        ports=ports,
        body=body,
        stmts=2, nets=2 * w, cells=0, ffs=w, fanin_lc=0,
        needs_clock=True,
    )


def t_regxor(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Registered xor: one XOR2 cone (2 leaves) feeding each flop."""
    w = int(rng.integers(2, 6))
    a, b, q = (f"{uid}_{p}" for p in "abq")
    if language == VERILOG:
        ports = (_vport(language, a, "input", w),
                 _vport(language, b, "input", w),
                 f"output reg [{w - 1}:0] {q}")
        body = (
            "always @(posedge clk) begin",
            f"  {q} <= {a} ^ {b};",
            "end",
        )
    else:
        ports = (_vport(language, a, "input", w),
                 _vport(language, b, "input", w),
                 _vport(language, q, "output", w))
        body = (
            "process(clk)",
            "begin",
            "  if rising_edge(clk) then",
            f"    {q} <= {a} xor {b};",
            "  end if;",
            "end process;",
        )
    return Tile(
        kind="regxor",
        ports=ports,
        body=body,
        stmts=2, nets=4 * w, cells=w, ffs=w, fanin_lc=2 * w,
        needs_clock=True,
    )


# ---------------------------------------------------------------------------
# Structural / generate tiles
# ---------------------------------------------------------------------------


def t_genloop_and(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """A generate-for over N bitwise ANDs (1 loop item + 1 body item)."""
    n = int(rng.integers(2, 7))
    a, b, y, g = f"{uid}_a", f"{uid}_b", f"{uid}_y", f"{uid}_g"
    if language == VERILOG:
        body = (
            f"genvar {g};",
            "generate",
            f"  for ({g} = 0; {g} < {n}; {g} = {g} + 1) begin : {uid}_blk",
            f"    assign {y}[{g}] = {a}[{g}] & {b}[{g}];",
            "  end",
            "endgenerate",
        )
    else:
        body = (
            f"{uid}_blk: for {g} in 0 to {n - 1} generate",
            f"  {y}({g}) <= {a}({g}) and {b}({g});",
            "end generate;",
        )
    return Tile(
        kind="genloop_and",
        ports=(_vport(language, a, "input", n),
               _vport(language, b, "input", n),
               _vport(language, y, "output", n)),
        body=body,
        stmts=2, nets=3 * n, cells=n, fanin_lc=2 * n,
    )


def t_param_width(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Width taken from a parameter/generic; inverter per bit.

    Only predictable under ``AccountingPolicy.disabled()`` (which
    elaborates at the declared defaults); the recommended policy would
    resynthesize at minimal parameters.
    """
    w = int(rng.integers(2, 7))
    p, a, y = f"{uid}_p", f"{uid}_a", f"{uid}_y"
    if language == VERILOG:
        params = (f"parameter {p} = {w}",)
        ports = (f"input [{p}-1:0] {a}", f"output [{p}-1:0] {y}")
        body = (_assign(language, y, f"~{a}"),)
    else:
        params = (f"{p} : integer := {w}",)
        ports = (f"{a} : in std_logic_vector({p}-1 downto 0)",
                 f"{y} : out std_logic_vector({p}-1 downto 0)")
        body = (_assign(language, y, f"not {a}"),)
    return Tile(
        kind="param_width",
        params=params,
        ports=ports,
        body=body,
        stmts=2, nets=2 * w, cells=w, fanin_lc=w,
    )


def t_child_instance(uid: str, language: str, rng: np.random.Generator,
                     *, top: str) -> Tile:
    """Instantiate a leaf inverter module once or twice.

    The disabled policy selects one accounting entry per *instance*, so a
    doubly-instantiated leaf contributes its netlist twice — but its
    source text (Stmts, LoC) only once.
    """
    w = int(rng.integers(2, 5))
    n_inst = int(rng.integers(1, 3))
    leaf = f"{top}_{uid}_leaf"
    x, z = f"{leaf}_x", f"{leaf}_z"

    if language == VERILOG:
        leaf_lines = (
            f"module {leaf} (",
            f"  input [{w - 1}:0] {x},",
            f"  output [{w - 1}:0] {z}",
            ");",
            f"  assign {z} = ~{x};",
            "endmodule",
        )
    else:
        leaf_lines = (
            f"entity {leaf} is",
            "  port (",
            f"    {x} : in {_vec(VHDL, w)};",
            f"    {z} : out {_vec(VHDL, w)}",
            "  );",
            "end entity;",
            f"architecture rtl of {leaf} is",
            "begin",
            f"  {z} <= not {x};",
            "end architecture;",
        )
    aux = AuxModule(
        name=leaf, lines=leaf_lines,
        # 2 ports + 1 assign; netlist: W input nets + W INV cells.
        stmts=3, nets=2 * w, cells=w, fanin_lc=w,
        instances=n_inst,
    )

    ports: list[str] = []
    body: list[str] = []
    for i in range(n_inst):
        a, y = f"{uid}_a{i}", f"{uid}_y{i}"
        ports.append(_vport(language, a, "input", w))
        ports.append(_vport(language, y, "output", w))
        if language == VERILOG:
            body.append(f"{leaf} {uid}_i{i} ( .{x}({a}), .{z}({y}) );")
        else:
            body.append(
                f"{uid}_i{i}: entity work.{leaf} "
                f"port map ({x} => {a}, {z} => {y});")
    # Per instance the parent allocates W input nets plus W blackbox
    # source nets for the child's outputs; no cells, no LUT roots.
    return Tile(
        kind="child_instance",
        ports=tuple(ports),
        body=tuple(body),
        stmts=n_inst, nets=n_inst * 2 * w, cells=0, fanin_lc=0,
        aux=(aux,),
    )


# ---------------------------------------------------------------------------
# Process tiles
# ---------------------------------------------------------------------------


def t_ifmux(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """Combinational if/else process — same netlist as the ternary mux."""
    w = int(rng.integers(2, 6))
    a, b, s, y = (f"{uid}_{p}" for p in "absy")
    if language == VERILOG:
        ports = (_vport(language, a, "input", w),
                 _vport(language, b, "input", w),
                 _vport(language, s, "input", None),
                 f"output reg [{w - 1}:0] {y}")
        body = (
            "always @* begin",
            f"  if ({s}) begin",
            f"    {y} = {a};",
            "  end else begin",
            f"    {y} = {b};",
            "  end",
            "end",
        )
        nets, cells = 3 * w + 1, w
    else:
        ports = (_vport(language, a, "input", w),
                 _vport(language, b, "input", w),
                 _vport(language, s, "input", None),
                 _vport(language, y, "output", w))
        body = (
            f"process({s}, {a}, {b})",
            "begin",
            f"  if {s} = '1' then",
            f"    {y} <= {a};",
            "  else",
            f"    {y} <= {b};",
            "  end if;",
            "end process;",
        )
        nets, cells = 3 * w + 3, w + 2
    # ProcessBlock(1) + If(1) + 2 assigns.
    return Tile(
        kind="ifmux",
        ports=ports,
        body=body,
        stmts=4, nets=nets, cells=cells, fanin_lc=3 * w,
    )


def t_case_unit(uid: str, language: str, rng: np.random.Generator) -> Tile:
    """4-way case over a 2-bit selector.

    The three ``sel == k`` comparators cost 2+3+3 cells; each output bit
    is a 3-deep MUX2 chain whose packed root cut is exactly
    ``{sel0, sel1, a_i, b_i, c_i, d_i}`` — six leaves per bit.
    """
    w = int(rng.integers(1, 5))
    sel = f"{uid}_sel"
    a, b, c, d, y = (f"{uid}_{p}" for p in "abcdy")
    if language == VERILOG:
        ports = (
            f"input [1:0] {sel}",
            _vport(language, a, "input", w),
            _vport(language, b, "input", w),
            _vport(language, c, "input", w),
            _vport(language, d, "input", w),
            f"output reg [{w - 1}:0] {y}",
        )
        body = (
            "always @* begin",
            f"  case ({sel})",
            f"    2'd0: {y} = {a};",
            f"    2'd1: {y} = {b};",
            f"    2'd2: {y} = {c};",
            f"    default: {y} = {d};",
            "  endcase",
            "end",
        )
    else:
        ports = (
            f"{sel} : in std_logic_vector(1 downto 0)",
            _vport(language, a, "input", w),
            _vport(language, b, "input", w),
            _vport(language, c, "input", w),
            _vport(language, d, "input", w),
            _vport(language, y, "output", w),
        )
        body = (
            f"process({sel}, {a}, {b}, {c}, {d})",
            "begin",
            f"  case {sel} is",
            f'    when "00" => {y} <= {a};',
            f'    when "01" => {y} <= {b};',
            f'    when "10" => {y} <= {c};',
            f"    when others => {y} <= {d};",
            "  end case;",
            "end process;",
        )
    # ProcessBlock(1) + Case(1 + 4 one-statement arms).
    return Tile(
        kind="case_unit",
        ports=ports,
        body=body,
        stmts=6, nets=7 * w + 10, cells=3 * w + 8, fanin_lc=6 * w,
    )


#: kind -> factory.  ``child_instance`` needs the top name and is handled
#: specially by the assembler.
FACTORIES = {
    "and_or": t_and_or,
    "wire_stage": t_wire_stage,
    "mux": t_mux,
    "xor_chain": t_xor_chain,
    "adder": t_adder,
    "shift_const": t_shift_const,
    "concat_pair": t_concat_pair,
    "register": t_register,
    "regxor": t_regxor,
    "genloop_and": t_genloop_and,
    "param_width": t_param_width,
    "ifmux": t_ifmux,
    "case_unit": t_case_unit,
}

TILE_KINDS = tuple(FACTORIES) + ("child_instance",)


def make_tile(kind: str, uid: str, language: str,
              rng: np.random.Generator, *, top: str) -> Tile:
    """Build one tile; dispatches on ``kind``."""
    if kind == "child_instance":
        return t_child_instance(uid, language, rng, top=top)
    return FACTORIES[kind](uid, language, rng)
