"""End-to-end self-test: generators vs. the whole pipeline.

``run_selftest`` chains the ground-truth checks this package provides
into one pass/fail report:

1. **oracle.verilog / oracle.vhdl** — a seeded corpus per language must
   measure *exactly* its constructed ``LoC``/``Stmts``/``Nets``/
   ``Cells``/``FFs``/``FanInLC``;
2. **roundtrip** — printing a parsed design back to Verilog-2001 and
   re-measuring must preserve every netlist-level metric (LoC excepted:
   formatting belongs to the printer);
3. **parallel** — batch measurement under ``jobs=2`` must equal
   sequential measurement bit-for-bit;
4. **cache** — a warm re-measurement through a fresh on-disk cache must
   equal the cold one;
5. **recovery** — a seeded recovery study must show fitted weights
   within the documented tolerance and bootstrap-CI coverage within the
   documented band.

Documented recovery tolerances (checked against the default seeded
study; see DESIGN.md §9):

* exact-ML and Laplace/AGHQ mean relative weight bias within
  ``±0.35``; fixed-effects within ``±0.45`` (it ignores the productivity
  effect, which inflates scatter but not systematic bias much);
* pooled 95% bootstrap-CI coverage for the exact-ML fitter inside
  ``[0.88, 0.99]``.
"""

from __future__ import annotations

import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.cache import SynthesisCache
from repro.core.workflow import measure_components
from repro.gen.hdlgen import generate_corpus
from repro.gen.oracle import run_differential_oracle
from repro.gen.recovery import RecoveryStudy, run_recovery_study
from repro.hdl import parse_source
from repro.hdl.printer import print_design
from repro.hdl.source import VERILOG, VHDL, SourceFile

if TYPE_CHECKING:  # pragma: no cover
    from repro.gen.hdlgen import GeneratedModule

#: Documented tolerance on mean relative weight bias, per fitter.
BIAS_TOLERANCE = {
    "exact-ml": 0.35,
    "laplace": 0.35,
    "fixed-effects": 0.45,
}
#: Documented band for pooled bootstrap-CI coverage (nominal 95%).
COVERAGE_BAND = (0.88, 0.99)


@dataclass(frozen=True)
class CheckResult:
    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        mark = "PASS" if self.ok else "FAIL"
        return f"[{mark}] {self.name}: {self.detail}"


@dataclass(frozen=True)
class SelfTestReport:
    checks: tuple[CheckResult, ...]
    elapsed_s: float
    recovery: RecoveryStudy | None = None

    @property
    def ok(self) -> bool:
        return all(c.ok for c in self.checks)

    def render(self) -> str:
        lines = [c.render() for c in self.checks]
        verdict = "SELF-TEST PASSED" if self.ok else "SELF-TEST FAILED"
        lines.append(f"{verdict} ({len(self.checks)} checks, "
                     f"{self.elapsed_s:.1f}s)")
        return "\n".join(lines)


def _roundtrip_check(modules: "list[GeneratedModule]") -> CheckResult:
    """Print each parsed design back to Verilog and re-measure."""
    from repro.core.workflow import measure_component

    keys = ("Stmts", "Nets", "Cells", "FFs", "FanInLC")
    bad: list[str] = []
    for gm in modules:
        try:
            printed = print_design(parse_source(gm.sources[0]))
            src = SourceFile(name=f"{gm.name}_rt.v", text=printed)
            m = measure_component((src,), gm.name, name=gm.name,
                                  policy=gm.spec.policy)
        except Exception as exc:
            bad.append(f"{gm.name}: {type(exc).__name__}: {exc}")
            continue
        diffs = {k: (gm.truth[k], m.metrics.get(k)) for k in keys
                 if abs(gm.truth[k] - m.metrics.get(k, -1)) > 1e-9}
        if diffs:
            bad.append(f"{gm.name}: {diffs}")
    detail = (f"{len(modules)} modules re-printed and re-measured"
              if not bad else "; ".join(bad[:5]))
    return CheckResult("roundtrip", not bad, detail)


def _batch_metrics(modules: "list[GeneratedModule]", *, jobs: int,
                   cache: SynthesisCache | None) -> dict[str, dict]:
    batch = measure_components([gm.spec for gm in modules],
                               jobs=jobs, cache=cache)
    return {name: dict(m.metrics)
            for name, m in batch.measurements.items()}


def run_selftest(
    *,
    modules_per_language: int = 50,
    seed: int = 0,
    jobs: int = 1,
    recovery_datasets: int = 14,
    recovery_bootstrap: int = 50,
    recovery_seed: int = 0,
    skip_recovery: bool = False,
    progress: Callable[[str], None] | None = None,
) -> SelfTestReport:
    """Run every generator-backed check; see the module docstring."""

    def say(msg: str) -> None:
        if progress is not None:
            progress(msg)

    t0 = time.perf_counter()
    checks: list[CheckResult] = []

    corpora = {}
    for language in (VERILOG, VHDL):
        say(f"oracle: generating + measuring {modules_per_language} "
            f"{language} modules")
        corpus = generate_corpus(language, modules_per_language, seed=seed)
        corpora[language] = corpus
        report = run_differential_oracle(corpus, jobs=jobs)
        detail = (f"{report.n_modules} modules, {report.n_checks} exact "
                  "metric checks" if report.ok else report.render())
        checks.append(CheckResult(f"oracle.{language}", report.ok, detail))

    say("roundtrip: print -> re-parse -> re-measure")
    sample = corpora[VERILOG][:8] + corpora[VHDL][:8]
    checks.append(_roundtrip_check(sample))

    say("parallel: jobs=2 vs sequential")
    subset = corpora[VERILOG][:6] + corpora[VHDL][:6]
    seq = _batch_metrics(subset, jobs=1, cache=None)
    par = _batch_metrics(subset, jobs=2, cache=None)
    checks.append(CheckResult(
        "parallel", seq == par,
        f"{len(subset)} components identical under jobs=2"
        if seq == par else f"divergence: {sorted(set(seq) ^ set(par)) or 'values differ'}"))

    say("cache: cold vs warm")
    with tempfile.TemporaryDirectory(prefix="repro-selftest-cache-") as tmp:
        cache = SynthesisCache(Path(tmp))
        cold = _batch_metrics(subset, jobs=1, cache=cache)
        warm = _batch_metrics(subset, jobs=1, cache=cache)
    checks.append(CheckResult(
        "cache", cold == warm,
        f"{len(subset)} components identical cold vs warm"
        if cold == warm else "warm re-measurement diverged"))

    study: RecoveryStudy | None = None
    if not skip_recovery:
        say(f"recovery: {recovery_datasets} datasets x "
            f"{recovery_bootstrap} bootstrap replicates")
        study = run_recovery_study(
            n_datasets=recovery_datasets,
            n_bootstrap=recovery_bootstrap,
            seed=recovery_seed,
            progress=say,
        )
        for result in study.results:
            tol = BIAS_TOLERANCE[result.fitter]
            ok = (result.n_datasets_fit > 0
                  and result.max_abs_rel_bias <= tol)
            checks.append(CheckResult(
                f"recovery.{result.fitter}.bias", ok,
                f"max |rel bias| {result.max_abs_rel_bias:.3f} "
                f"(tolerance {tol})"))
        ml = study.fitter("exact-ml")
        if ml.ci_coverage is not None:
            lo, hi = COVERAGE_BAND
            ok = lo <= ml.ci_coverage <= hi
            checks.append(CheckResult(
                "recovery.exact-ml.coverage", ok,
                f"bootstrap-CI coverage {ml.ci_coverage:.3f} over "
                f"{ml.n_ci_checks} checks (band [{lo}, {hi}])"))

    return SelfTestReport(
        checks=tuple(checks),
        elapsed_s=time.perf_counter() - t0,
        recovery=study,
    )
