-- Leon3-Cache: blocking, direct-mapped write-through cache controller with
-- separate tag and data RAMs, matching the Leon3 blocking-cache structure
-- (Table 1).  Storage-dominated: most of the area is RAM, with a small
-- state machine -- as in the paper's Table 4 row (tiny cell count, large
-- storage area).

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_cache_tagram is
  port (
    clk    : in  std_logic;
    index  : in  unsigned(6 downto 0);
    wtag   : in  std_logic_vector(22 downto 0);
    wvalid : in  std_logic;
    we     : in  std_logic;
    rtag   : out std_logic_vector(22 downto 0);
    rvalid : out std_logic
  );
end entity;

architecture rtl of leon3_cache_tagram is
  type tag_array is array (0 to 127) of std_logic_vector(23 downto 0);
  signal tags : tag_array;
  signal rword : std_logic_vector(23 downto 0);
begin
  rword  <= tags(to_integer(index));
  rtag   <= rword(22 downto 0);
  rvalid <= rword(23);
  process (clk)
  begin
    if rising_edge(clk) then
      if we = '1' then
        tags(to_integer(index)) <= wvalid & wtag;
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_cache_dataram is
  port (
    clk   : in  std_logic;
    index : in  unsigned(6 downto 0);
    wdata : in  std_logic_vector(31 downto 0);
    we    : in  std_logic;
    rdata : out std_logic_vector(31 downto 0)
  );
end entity;

architecture rtl of leon3_cache_dataram is
  type data_array is array (0 to 127) of std_logic_vector(31 downto 0);
  signal words : data_array;
begin
  rdata <= words(to_integer(index));
  process (clk)
  begin
    if rising_edge(clk) then
      if we = '1' then
        words(to_integer(index)) <= wdata;
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_cache is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    -- CPU side
    cpu_addr   : in  unsigned(31 downto 0);
    cpu_wdata  : in  std_logic_vector(31 downto 0);
    cpu_we     : in  std_logic;
    cpu_req    : in  std_logic;
    cpu_rdata  : out std_logic_vector(31 downto 0);
    cpu_ready  : out std_logic;
    -- Memory side
    mem_addr   : out unsigned(31 downto 0);
    mem_wdata  : out std_logic_vector(31 downto 0);
    mem_we     : out std_logic;
    mem_req    : out std_logic;
    mem_rdata  : in  std_logic_vector(31 downto 0);
    mem_ready  : in  std_logic
  );
end entity;

architecture rtl of leon3_cache is
  -- Controller states: idle, compare, fetch (miss refill), write-through.
  signal state      : std_logic_vector(1 downto 0);
  signal index      : unsigned(6 downto 0);
  signal req_tag    : std_logic_vector(22 downto 0);
  signal tag_we     : std_logic;
  signal data_we    : std_logic;
  signal fill_data  : std_logic_vector(31 downto 0);
  signal rtag       : std_logic_vector(22 downto 0);
  signal rvalid     : std_logic;
  signal rdata      : std_logic_vector(31 downto 0);
  signal hit        : std_logic;
  signal pending_we : std_logic;

  constant S_IDLE  : std_logic_vector(1 downto 0) := "00";
  constant S_CMP   : std_logic_vector(1 downto 0) := "01";
  constant S_FETCH : std_logic_vector(1 downto 0) := "10";
  constant S_WRITE : std_logic_vector(1 downto 0) := "11";
begin
  index   <= cpu_addr(8 downto 2);
  req_tag <= std_logic_vector(cpu_addr(31 downto 9));
  hit     <= rvalid when rtag = req_tag else '0';

  u_tags : entity work.leon3_cache_tagram port map (
    clk => clk, index => index,
    wtag => req_tag, wvalid => '1', we => tag_we,
    rtag => rtag, rvalid => rvalid
  );

  u_data : entity work.leon3_cache_dataram port map (
    clk => clk, index => index,
    wdata => fill_data, we => data_we,
    rdata => rdata
  );

  fill_data <= cpu_wdata when pending_we = '1' else mem_rdata;

  cpu_rdata <= rdata;
  cpu_ready <= '1' when (state = S_CMP and hit = '1' and pending_we = '0')
                     or (state = S_FETCH and mem_ready = '1')
                     or (state = S_WRITE and mem_ready = '1')
               else '0';

  mem_addr  <= cpu_addr;
  mem_wdata <= cpu_wdata;
  mem_we    <= pending_we;
  mem_req   <= '1' when state = S_FETCH or state = S_WRITE else '0';

  tag_we  <= '1' when state = S_FETCH and mem_ready = '1' else '0';
  data_we <= '1' when (state = S_FETCH and mem_ready = '1')
                   or (state = S_WRITE and mem_ready = '1' and hit = '1')
             else '0';

  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state      <= S_IDLE;
        pending_we <= '0';
      else
        case state is
          when S_IDLE =>
            if cpu_req = '1' then
              pending_we <= cpu_we;
              if cpu_we = '1' then
                state <= S_WRITE;   -- write-through
              else
                state <= S_CMP;
              end if;
            end if;
          when S_CMP =>
            if hit = '1' then
              state <= S_IDLE;
            else
              state <= S_FETCH;
            end if;
          when S_FETCH =>
            if mem_ready = '1' then
              state <= S_IDLE;
            end if;
          when others =>            -- S_WRITE
            if mem_ready = '1' then
              state      <= S_IDLE;
              pending_we <= '0';
            end if;
        end case;
      end if;
    end if;
  end process;
end architecture;
