-- Leon3-Pipeline: seven-stage in-order SPARC-V8-style integer pipeline
-- (fetch, decode, register access, execute, memory, exception, writeback).
-- VHDL-87/93 flavour, mirroring the Leon3 component of the paper's
-- evaluation.  The pipeline is the largest Leon3 component (24
-- person-months in Table 2) and, unlike PUMA/IVM, has essentially no
-- repeated instantiation -- every unit below is used exactly once.

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_regfile is
  port (
    clk    : in  std_logic;
    waddr  : in  unsigned(4 downto 0);
    wdata  : in  std_logic_vector(31 downto 0);
    we     : in  std_logic;
    raddr1 : in  unsigned(4 downto 0);
    raddr2 : in  unsigned(4 downto 0);
    rdata1 : out std_logic_vector(31 downto 0);
    rdata2 : out std_logic_vector(31 downto 0)
  );
end entity;

architecture rtl of leon3_regfile is
  type reg_array is array (0 to 31) of std_logic_vector(31 downto 0);
  signal regs : reg_array;
begin
  rdata1 <= regs(to_integer(raddr1));
  rdata2 <= regs(to_integer(raddr2));
  process (clk)
  begin
    if rising_edge(clk) then
      if we = '1' then
        regs(to_integer(waddr)) <= wdata;
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_alu is
  port (
    a      : in  unsigned(31 downto 0);
    b      : in  unsigned(31 downto 0);
    op     : in  std_logic_vector(3 downto 0);
    cin    : in  std_logic;
    result : out unsigned(31 downto 0);
    icc_z  : out std_logic;
    icc_n  : out std_logic;
    icc_c  : out std_logic
  );
end entity;

architecture rtl of leon3_alu is
  signal sum  : unsigned(32 downto 0);
  signal diff : unsigned(32 downto 0);
  signal res  : unsigned(31 downto 0);
begin
  sum  <= ("0" & a) + ("0" & b) + ("0" & x"0000000" & "000" & cin);
  diff <= ("0" & a) - ("0" & b);

  process (a, b, op, sum, diff)
  begin
    case op is
      when "0000" => res <= sum(31 downto 0);
      when "0001" => res <= diff(31 downto 0);
      when "0010" => res <= a and b;
      when "0011" => res <= a or b;
      when "0100" => res <= a xor b;
      when "0101" => res <= a and not b;   -- andn
      when "0110" => res <= a or not b;    -- orn
      when "0111" => res <= not (a xor b); -- xnor
      when others => res <= a;
    end case;
  end process;

  result <= res;
  icc_z <= '1' when res = 0 else '0';
  icc_n <= res(31);
  icc_c <= sum(32) when op = "0000" else diff(32);
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_shifter is
  port (
    value  : in  unsigned(31 downto 0);
    amount : in  unsigned(4 downto 0);
    dir    : in  std_logic;  -- '0' left, '1' right
    result : out unsigned(31 downto 0)
  );
end entity;

architecture rtl of leon3_shifter is
begin
  result <= value srl to_integer(amount) when dir = '1'
            else value sll to_integer(amount);
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

-- Iterative multiply/divide step unit (SPARC MULScc-style datapath).
entity leon3_muldiv is
  port (
    clk     : in  std_logic;
    rst     : in  std_logic;
    start   : in  std_logic;
    is_div  : in  std_logic;
    a       : in  unsigned(31 downto 0);
    b       : in  unsigned(31 downto 0);
    busy    : out std_logic;
    done    : out std_logic;
    result  : out unsigned(31 downto 0)
  );
end entity;

architecture rtl of leon3_muldiv is
  signal acc     : unsigned(63 downto 0);
  signal operand : unsigned(31 downto 0);
  signal steps   : unsigned(5 downto 0);
  signal running : std_logic;
  signal div_q   : std_logic_vector(31 downto 0);
  signal done_r  : std_logic;
  signal sub_try : unsigned(32 downto 0);
begin
  busy   <= running;
  done   <= done_r;
  result <= acc(31 downto 0);

  sub_try <= ("0" & acc(63 downto 32)) - ("0" & operand);

  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        running <= '0';
        done_r  <= '0';
        steps   <= "000000";
      else
        done_r <= '0';
        if start = '1' and running = '0' then
          running <= '1';
          operand <= b;
          acc     <= x"00000000" & a;
          steps   <= "100000";
        elsif running = '1' then
          if is_div = '1' then
            if sub_try(32) = '0' then
              acc <= sub_try(31 downto 0) & acc(30 downto 0) & "1";
            else
              acc <= acc(62 downto 0) & "0";
            end if;
          else
            if acc(0) = '1' then
              acc <= (("0" & acc(63 downto 32)) + ("0" & operand))(32 downto 0)
                     & acc(31 downto 1);
            else
              acc <= "0" & acc(63 downto 1);
            end if;
          end if;
          steps <= steps - 1;
          if steps = 1 then
            running <= '0';
            done_r  <= '1';
          end if;
        end if;
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_decode is
  port (
    inst      : in  std_logic_vector(31 downto 0);
    rs1       : out unsigned(4 downto 0);
    rs2       : out unsigned(4 downto 0);
    rd        : out unsigned(4 downto 0);
    alu_op    : out std_logic_vector(3 downto 0);
    use_imm   : out std_logic;
    imm       : out unsigned(31 downto 0);
    is_load   : out std_logic;
    is_store  : out std_logic;
    is_branch : out std_logic;
    is_shift  : out std_logic;
    is_mul    : out std_logic;
    is_div    : out std_logic;
    wr_reg    : out std_logic;
    illegal   : out std_logic
  );
end entity;

architecture rtl of leon3_decode is
  signal fmt : std_logic_vector(1 downto 0);
  signal op3 : std_logic_vector(5 downto 0);
begin
  fmt <= inst(31 downto 30);
  op3 <= inst(24 downto 19);
  rs1 <= unsigned(inst(18 downto 14));
  rs2 <= unsigned(inst(4 downto 0));
  rd  <= unsigned(inst(29 downto 25));
  use_imm <= inst(13);
  imm <= x"000" & "0000000" & unsigned(inst(12 downto 0));

  process (fmt, op3, inst)
  begin
    alu_op    <= "0000";
    is_load   <= '0';
    is_store  <= '0';
    is_branch <= '0';
    is_shift  <= '0';
    is_mul    <= '0';
    is_div    <= '0';
    wr_reg    <= '0';
    illegal   <= '0';
    case fmt is
      when "00" =>
        is_branch <= '1';
      when "10" =>
        case op3 is
          when "000000" => alu_op <= "0000"; wr_reg <= '1'; -- ADD
          when "000100" => alu_op <= "0001"; wr_reg <= '1'; -- SUB
          when "000001" => alu_op <= "0010"; wr_reg <= '1'; -- AND
          when "000010" => alu_op <= "0011"; wr_reg <= '1'; -- OR
          when "000011" => alu_op <= "0100"; wr_reg <= '1'; -- XOR
          when "000101" => alu_op <= "0101"; wr_reg <= '1'; -- ANDN
          when "000110" => alu_op <= "0110"; wr_reg <= '1'; -- ORN
          when "000111" => alu_op <= "0111"; wr_reg <= '1'; -- XNOR
          when "100101" => is_shift <= '1';  wr_reg <= '1'; -- SLL
          when "100110" => is_shift <= '1';  wr_reg <= '1'; -- SRL
          when "001010" => is_mul <= '1';    wr_reg <= '1'; -- UMUL
          when "001110" => is_div <= '1';    wr_reg <= '1'; -- UDIV
          when others   => illegal <= '1';
        end case;
      when "11" =>
        case op3 is
          when "000000" => is_load <= '1'; wr_reg <= '1';  -- LD
          when "000100" => is_store <= '1';                -- ST
          when others   => illegal <= '1';
        end case;
      when others =>
        illegal <= '1';
    end case;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_pipeline is
  port (
    clk          : in  std_logic;
    rst          : in  std_logic;
    icache_data  : in  std_logic_vector(31 downto 0);
    icache_ready : in  std_logic;
    dcache_rdata : in  std_logic_vector(31 downto 0);
    dcache_ready : in  std_logic;
    irq          : in  std_logic;
    icache_addr  : out unsigned(31 downto 0);
    dcache_addr  : out unsigned(31 downto 0);
    dcache_wdata : out std_logic_vector(31 downto 0);
    dcache_we    : out std_logic;
    dcache_req   : out std_logic;
    trap_taken   : out std_logic;
    trap_pc      : out unsigned(31 downto 0)
  );
end entity;

architecture rtl of leon3_pipeline is
  -- Stage registers: FE -> DE -> RA -> EX -> ME -> XC -> WB.
  signal pc_f      : unsigned(31 downto 0);
  signal inst_d    : std_logic_vector(31 downto 0);
  signal valid_d   : std_logic;
  signal rs1_r     : unsigned(4 downto 0);
  signal rs2_r     : unsigned(4 downto 0);
  signal rd_r      : unsigned(4 downto 0);
  signal aluop_r   : std_logic_vector(3 downto 0);
  signal useimm_r  : std_logic;
  signal imm_r     : unsigned(31 downto 0);
  signal isload_r  : std_logic;
  signal isstore_r : std_logic;
  signal isshift_r : std_logic;
  signal ismul_r   : std_logic;
  signal isdiv_r   : std_logic;
  signal wrreg_r   : std_logic;
  signal valid_r   : std_logic;
  signal op1_e     : unsigned(31 downto 0);
  signal op2_e     : unsigned(31 downto 0);
  signal res_m     : unsigned(31 downto 0);
  signal rd_m      : unsigned(4 downto 0);
  signal wr_m      : std_logic;
  signal load_m    : std_logic;
  signal store_m   : std_logic;
  signal res_x     : unsigned(31 downto 0);
  signal rd_x      : unsigned(4 downto 0);
  signal wr_x      : std_logic;
  signal trap_x    : std_logic;
  signal res_w     : unsigned(31 downto 0);
  signal rd_w      : unsigned(4 downto 0);
  signal wr_w      : std_logic;

  signal dec_rs1     : unsigned(4 downto 0);
  signal dec_rs2     : unsigned(4 downto 0);
  signal dec_rd      : unsigned(4 downto 0);
  signal dec_aluop   : std_logic_vector(3 downto 0);
  signal dec_useimm  : std_logic;
  signal dec_imm     : unsigned(31 downto 0);
  signal dec_load    : std_logic;
  signal dec_store   : std_logic;
  signal dec_branch  : std_logic;
  signal dec_shift   : std_logic;
  signal dec_mul     : std_logic;
  signal dec_div     : std_logic;
  signal dec_wr      : std_logic;
  signal dec_illegal : std_logic;

  signal rf_rdata1 : std_logic_vector(31 downto 0);
  signal rf_rdata2 : std_logic_vector(31 downto 0);

  signal alu_res : unsigned(31 downto 0);
  signal icc_z   : std_logic;
  signal icc_n   : std_logic;
  signal icc_c   : std_logic;

  signal shift_res : unsigned(31 downto 0);
  signal md_busy   : std_logic;
  signal md_done   : std_logic;
  signal md_res    : unsigned(31 downto 0);

  signal stall : std_logic;
begin
  u_decode : entity work.leon3_decode port map (
    inst => inst_d,
    rs1 => dec_rs1, rs2 => dec_rs2, rd => dec_rd,
    alu_op => dec_aluop, use_imm => dec_useimm, imm => dec_imm,
    is_load => dec_load, is_store => dec_store, is_branch => dec_branch,
    is_shift => dec_shift, is_mul => dec_mul, is_div => dec_div,
    wr_reg => dec_wr, illegal => dec_illegal
  );

  u_regfile : entity work.leon3_regfile port map (
    clk => clk,
    waddr => rd_w, wdata => std_logic_vector(res_w), we => wr_w,
    raddr1 => dec_rs1, raddr2 => dec_rs2,
    rdata1 => rf_rdata1, rdata2 => rf_rdata2
  );

  u_alu : entity work.leon3_alu port map (
    a => op1_e, b => op2_e, op => aluop_r, cin => '0',
    result => alu_res, icc_z => icc_z, icc_n => icc_n, icc_c => icc_c
  );

  u_shifter : entity work.leon3_shifter port map (
    value => op1_e, amount => op2_e(4 downto 0), dir => aluop_r(0),
    result => shift_res
  );

  u_muldiv : entity work.leon3_muldiv port map (
    clk => clk, rst => rst,
    start => ismul_r or isdiv_r, is_div => isdiv_r,
    a => op1_e, b => op2_e,
    busy => md_busy, done => md_done, result => md_res
  );

  stall <= md_busy or (not icache_ready) or
           ((isload_r or isstore_r) and not dcache_ready);

  icache_addr <= pc_f;
  dcache_addr <= res_m;
  dcache_wdata <= std_logic_vector(op2_e);
  dcache_we  <= store_m;
  dcache_req <= load_m or store_m;
  trap_taken <= trap_x or irq;
  trap_pc    <= pc_f;

  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        pc_f    <= (others => '0');
        valid_d <= '0';
        valid_r <= '0';
        wr_m    <= '0';
        wr_x    <= '0';
        wr_w    <= '0';
        trap_x  <= '0';
        load_m  <= '0';
        store_m <= '0';
      elsif stall = '0' then
        -- FE
        pc_f   <= pc_f + 4;
        inst_d <= icache_data;
        valid_d <= icache_ready;
        -- DE/RA
        rs1_r     <= dec_rs1;
        rs2_r     <= dec_rs2;
        rd_r      <= dec_rd;
        aluop_r   <= dec_aluop;
        useimm_r  <= dec_useimm;
        imm_r     <= dec_imm;
        isload_r  <= dec_load;
        isstore_r <= dec_store;
        isshift_r <= dec_shift;
        ismul_r   <= dec_mul;
        isdiv_r   <= dec_div;
        wrreg_r   <= dec_wr and valid_d;
        valid_r   <= valid_d and not dec_illegal;
        op1_e     <= unsigned(rf_rdata1);
        if dec_useimm = '1' then
          op2_e <= dec_imm;
        else
          op2_e <= unsigned(rf_rdata2);
        end if;
        -- EX
        if isshift_r = '1' then
          res_m <= shift_res;
        elsif md_done = '1' then
          res_m <= md_res;
        else
          res_m <= alu_res;
        end if;
        rd_m    <= rd_r;
        wr_m    <= wrreg_r and valid_r;
        load_m  <= isload_r and valid_r;
        store_m <= isstore_r and valid_r;
        -- ME
        if load_m = '1' then
          res_x <= unsigned(dcache_rdata);
        else
          res_x <= res_m;
        end if;
        rd_x   <= rd_m;
        wr_x   <= wr_m;
        trap_x <= valid_r and not valid_d and dec_illegal;
        -- XC/WB
        res_w <= res_x;
        rd_w  <= rd_x;
        wr_w  <= wr_x;
      end if;
    end if;
  end process;
end architecture;
