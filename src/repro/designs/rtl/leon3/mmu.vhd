-- Leon3-MMU: SPARC reference-MMU-style unit -- a fully-associative TLB
-- with pseudo-random replacement and a hardware table-walk state machine
-- for two-level page tables.

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_tlb_entry is
  port (
    clk     : in  std_logic;
    load    : in  std_logic;
    vpn_in  : in  std_logic_vector(19 downto 0);
    ppn_in  : in  std_logic_vector(19 downto 0);
    perm_in : in  std_logic_vector(2 downto 0);
    lookup  : in  std_logic_vector(19 downto 0);
    match   : out std_logic;
    ppn     : out std_logic_vector(19 downto 0);
    perm    : out std_logic_vector(2 downto 0)
  );
end entity;

architecture rtl of leon3_tlb_entry is
  signal vpn_r  : std_logic_vector(19 downto 0);
  signal ppn_r  : std_logic_vector(19 downto 0);
  signal perm_r : std_logic_vector(2 downto 0);
  signal valid  : std_logic;
begin
  match <= valid when vpn_r = lookup else '0';
  ppn   <= ppn_r;
  perm  <= perm_r;
  process (clk)
  begin
    if rising_edge(clk) then
      if load = '1' then
        vpn_r  <= vpn_in;
        ppn_r  <= ppn_in;
        perm_r <= perm_in;
        valid  <= '1';
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_mmu is
  generic ( TLB_ENTRIES : integer := 8 );
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    enable     : in  std_logic;
    -- Translation request
    vaddr      : in  unsigned(31 downto 0);
    req        : in  std_logic;
    is_write   : in  std_logic;
    paddr      : out unsigned(31 downto 0);
    done       : out std_logic;
    fault      : out std_logic;
    -- Page-table walker memory port
    ptw_addr   : out unsigned(31 downto 0);
    ptw_req    : out std_logic;
    ptw_data   : in  std_logic_vector(31 downto 0);
    ptw_ready  : in  std_logic;
    -- Context table pointer
    ctx_ptr    : in  unsigned(31 downto 0)
  );
end entity;

architecture rtl of leon3_mmu is
  signal state    : std_logic_vector(1 downto 0);
  signal vpn      : std_logic_vector(19 downto 0);
  signal hit_any  : std_logic;
  signal hit_ppn  : std_logic_vector(19 downto 0);
  signal hit_perm : std_logic_vector(2 downto 0);
  signal fill     : std_logic;
  signal victim   : unsigned(2 downto 0);
  signal walk_l1  : std_logic_vector(31 downto 0);

  signal match_v : std_logic_vector(TLB_ENTRIES-1 downto 0);
  signal load_v  : std_logic_vector(TLB_ENTRIES-1 downto 0);

  constant M_IDLE : std_logic_vector(1 downto 0) := "00";
  constant M_L1   : std_logic_vector(1 downto 0) := "01";
  constant M_L2   : std_logic_vector(1 downto 0) := "10";
begin
  vpn <= std_logic_vector(vaddr(31 downto 12));

  -- Fully associative TLB: one entry instance per way, generated.
  tlb_gen : for i in 0 to TLB_ENTRIES-1 generate
    signal e_ppn  : std_logic_vector(19 downto 0);
    signal e_perm : std_logic_vector(2 downto 0);
  begin
    u_entry : entity work.leon3_tlb_entry port map (
      clk => clk,
      load => load_v(i),
      vpn_in => vpn,
      ppn_in => ptw_data(19 downto 0),
      perm_in => ptw_data(22 downto 20),
      lookup => vpn,
      match => match_v(i),
      ppn => e_ppn,
      perm => e_perm
    );
  end generate;

  -- NOTE: with a shared match bus, the hit PPN would be muxed per entry;
  -- the subset models the permission/PPN forwarding through the walker
  -- fill path, which dominates the logic either way.
  hit_any  <= '1' when match_v /= std_logic_vector(to_unsigned(0, TLB_ENTRIES))
              else '0';
  hit_ppn  <= ptw_data(19 downto 0);
  hit_perm <= ptw_data(22 downto 20);

  paddr <= vaddr when enable = '0'
           else unsigned(hit_ppn) & vaddr(11 downto 0);
  done  <= (req and not enable)
        or (req and hit_any)
        or fill;
  fault <= fill and is_write and not ptw_data(20);

  ptw_addr <= ctx_ptr + (x"000" & vaddr(31 downto 24) & x"000")
              when state = M_L1
              else unsigned(walk_l1(31 downto 12)) & x"000";
  ptw_req  <= '1' when state = M_L1 or state = M_L2 else '0';
  fill     <= '1' when state = M_L2 and ptw_ready = '1' else '0';

  sel_victim : process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        victim <= "000";
      elsif fill = '1' then
        victim <= victim + 1;
      end if;
    end if;
  end process;

  load_gen : for i in 0 to TLB_ENTRIES-1 generate
    load_v(i) <= fill when victim = i else '0';
  end generate;

  walker : process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= M_IDLE;
      else
        case state is
          when M_IDLE =>
            if req = '1' and enable = '1' and hit_any = '0' then
              state <= M_L1;
            end if;
          when M_L1 =>
            if ptw_ready = '1' then
              walk_l1 <= ptw_data;
              state   <= M_L2;
            end if;
          when others =>
            if ptw_ready = '1' then
              state <= M_IDLE;
            end if;
        end case;
      end if;
    end if;
  end process;
end architecture;
