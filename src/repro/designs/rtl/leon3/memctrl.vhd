-- Leon3-MemCtrl: external memory controller -- PROM/SRAM/SDRAM-style
-- interface with programmable wait states, a refresh timer, and a bus
-- request arbiter.  Mostly a collection of small state machines, like the
-- real Leon3 memory controller.

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_waitstate_gen is
  generic ( COUNTER_BITS : integer := 4 );
  port (
    clk      : in  std_logic;
    rst      : in  std_logic;
    start    : in  std_logic;
    waits    : in  unsigned(COUNTER_BITS-1 downto 0);
    expired  : out std_logic
  );
end entity;

architecture rtl of leon3_waitstate_gen is
  signal counter : unsigned(COUNTER_BITS-1 downto 0);
  signal active  : std_logic;
begin
  expired <= '1' when active = '1' and counter = 0 else '0';
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        active  <= '0';
        counter <= (others => '0');
      elsif start = '1' then
        active  <= '1';
        counter <= waits;
      elsif active = '1' and counter /= 0 then
        counter <= counter - 1;
      elsif active = '1' then
        active <= '0';
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_refresh_timer is
  generic ( PERIOD_BITS : integer := 10 );
  port (
    clk         : in  std_logic;
    rst         : in  std_logic;
    period      : in  unsigned(PERIOD_BITS-1 downto 0);
    refresh_req : out std_logic;
    refresh_ack : in  std_logic
  );
end entity;

architecture rtl of leon3_refresh_timer is
  signal counter : unsigned(PERIOD_BITS-1 downto 0);
  signal pending : std_logic;
begin
  refresh_req <= pending;
  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        counter <= (others => '0');
        pending <= '0';
      else
        if counter = period then
          counter <= (others => '0');
          pending <= '1';
        else
          counter <= counter + 1;
        end if;
        if refresh_ack = '1' then
          pending <= '0';
        end if;
      end if;
    end if;
  end process;
end architecture;

library ieee;
use ieee.std_logic_1164.all;
use ieee.numeric_std.all;

entity leon3_memctrl is
  port (
    clk        : in  std_logic;
    rst        : in  std_logic;
    -- AHB-style request side
    bus_addr   : in  unsigned(31 downto 0);
    bus_wdata  : in  std_logic_vector(31 downto 0);
    bus_we     : in  std_logic;
    bus_req    : in  std_logic;
    bus_rdata  : out std_logic_vector(31 downto 0);
    bus_ready  : out std_logic;
    -- Configuration
    cfg_waits  : in  unsigned(3 downto 0);
    cfg_refr   : in  unsigned(9 downto 0);
    -- External memory pins
    mem_addr   : out unsigned(27 downto 0);
    mem_data_o : out std_logic_vector(31 downto 0);
    mem_data_i : in  std_logic_vector(31 downto 0);
    mem_cs_n   : out std_logic_vector(1 downto 0);
    mem_we_n   : out std_logic;
    mem_oe_n   : out std_logic;
    mem_ras_n  : out std_logic;
    mem_cas_n  : out std_logic
  );
end entity;

architecture rtl of leon3_memctrl is
  signal state       : std_logic_vector(2 downto 0);
  signal ws_start    : std_logic;
  signal ws_expired  : std_logic;
  signal refresh_req : std_logic;
  signal refresh_ack : std_logic;
  signal bank_sel    : std_logic;
  signal latched     : std_logic_vector(31 downto 0);

  constant T_IDLE    : std_logic_vector(2 downto 0) := "000";
  constant T_ACTIVE  : std_logic_vector(2 downto 0) := "001";
  constant T_ACCESS  : std_logic_vector(2 downto 0) := "010";
  constant T_PRE     : std_logic_vector(2 downto 0) := "011";
  constant T_REFRESH : std_logic_vector(2 downto 0) := "100";
begin
  u_waits : entity work.leon3_waitstate_gen
    generic map ( COUNTER_BITS => 4 )
    port map (
      clk => clk, rst => rst,
      start => ws_start, waits => cfg_waits, expired => ws_expired
    );

  u_refresh : entity work.leon3_refresh_timer
    generic map ( PERIOD_BITS => 10 )
    port map (
      clk => clk, rst => rst,
      period => cfg_refr, refresh_req => refresh_req,
      refresh_ack => refresh_ack
    );

  -- Bank decode: SRAM below 0x8000000, SDRAM above.
  bank_sel <= bus_addr(27);
  mem_cs_n(0) <= '0' when bank_sel = '0' and state /= T_IDLE else '1';
  mem_cs_n(1) <= '0' when bank_sel = '1' and state /= T_IDLE else '1';

  mem_addr   <= bus_addr(27 downto 0);
  mem_data_o <= bus_wdata;
  mem_we_n   <= '0' when state = T_ACCESS and bus_we = '1' else '1';
  mem_oe_n   <= '0' when state = T_ACCESS and bus_we = '0' else '1';
  mem_ras_n  <= '0' when state = T_ACTIVE or state = T_REFRESH else '1';
  mem_cas_n  <= '0' when state = T_ACCESS or state = T_REFRESH else '1';

  bus_rdata <= latched;
  bus_ready <= '1' when state = T_PRE else '0';
  ws_start  <= '1' when state = T_ACTIVE else '0';
  refresh_ack <= '1' when state = T_REFRESH and ws_expired = '1' else '0';

  process (clk)
  begin
    if rising_edge(clk) then
      if rst = '1' then
        state <= T_IDLE;
      else
        case state is
          when T_IDLE =>
            if refresh_req = '1' then
              state <= T_REFRESH;
            elsif bus_req = '1' then
              state <= T_ACTIVE;
            end if;
          when T_ACTIVE =>
            state <= T_ACCESS;
          when T_ACCESS =>
            if ws_expired = '1' then
              latched <= mem_data_i;
              state   <= T_PRE;
            end if;
          when T_PRE =>
            state <= T_IDLE;
          when others =>  -- T_REFRESH
            if ws_expired = '1' then
              state <= T_IDLE;
            end if;
        end case;
      end if;
    end if;
  end process;
end architecture;
