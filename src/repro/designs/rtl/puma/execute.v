// PUMA-Execute: issue queue, two ALU pipes, an iterative multiplier, and
// the branch resolution unit for the two-issue PUMA core.  Verilog-95.
// The execute cluster is PUMA's largest component (Table 2: 12
// person-months), and correspondingly the largest RTL here.

module puma_alu (a, b, op, carry_in, result, carry_out, zero, overflow);
  parameter WIDTH = 32;

  input  [WIDTH-1:0] a;
  input  [WIDTH-1:0] b;
  input  [3:0]       op;
  input              carry_in;
  output [WIDTH-1:0] result;
  output             carry_out;
  output             zero;
  output             overflow;

  reg [WIDTH-1:0] result;
  reg             carry_out;

  wire [WIDTH:0] add_full;
  wire [WIDTH:0] sub_full;

  assign add_full = {1'b0, a} + {1'b0, b} + {{WIDTH{1'b0}}, carry_in};
  assign sub_full = {1'b0, b} - {1'b0, a};

  always @(a or b or op or add_full or sub_full) begin
    carry_out = 1'b0;
    case (op)
      4'd0: begin // add
        result    = add_full[WIDTH-1:0];
        carry_out = add_full[WIDTH];
      end
      4'd1: result = a + {b[WIDTH-17:0], 16'h0000}; // addis-style shifted add
      4'd2: result = a | b;
      4'd3: result = a ^ b;
      4'd4: result = a & b;
      4'd5: begin // compare (result[0] = a < b unsigned)
        result = {{(WIDTH-1){1'b0}}, (a < b)};
      end
      4'd6: begin // subf
        result    = sub_full[WIDTH-1:0];
        carry_out = sub_full[WIDTH];
      end
      4'd7: result = a << b[4:0];
      4'd8: result = a >> b[4:0];
      4'd9: result = ~(a | b); // nor
      default: result = a;
    endcase
  end

  assign zero = (result == 0);
  assign overflow = (a[WIDTH-1] == b[WIDTH-1]) &
                    (result[WIDTH-1] != a[WIDTH-1]) &
                    ((op == 4'd0) | (op == 4'd6));
endmodule

// Iterative shift-and-add multiplier: one addition per cycle, matching the
// radix-2 datapath style of the CGaAs PUMA FXU.
module puma_multiplier (clk, rst, start, a, b, busy, done, product);
  parameter WIDTH = 32;
  parameter LOGW  = 5;

  input              clk;
  input              rst;
  input              start;
  input  [WIDTH-1:0] a;
  input  [WIDTH-1:0] b;
  output             busy;
  output             done;
  output [2*WIDTH-1:0] product;

  reg [WIDTH-1:0]   multiplicand;
  reg [2*WIDTH-1:0] acc;
  reg [LOGW:0]      steps;
  reg               running;
  reg               done;

  assign busy = running;
  assign product = acc;

  wire [WIDTH:0] partial;
  assign partial = {1'b0, acc[2*WIDTH-1:WIDTH]}
                 + (acc[0] ? {1'b0, multiplicand} : 0);

  always @(posedge clk) begin
    if (rst) begin
      running <= 1'b0;
      done    <= 1'b0;
      steps   <= 0;
    end else begin
      done <= 1'b0;
      if (start && !running) begin
        running      <= 1'b1;
        multiplicand <= a;
        acc          <= {{WIDTH{1'b0}}, b};
        steps        <= WIDTH;
      end else begin
        if (running) begin
          acc   <= {partial, acc[WIDTH-1:1]};
          steps <= steps - 1;
          if (steps == 1) begin
            running <= 1'b0;
            done    <= 1'b1;
          end
        end
      end
    end
  end
endmodule

// Two-entry-per-pipe issue queue with ready-bit wakeup.
module puma_issue_queue (clk, rst, flush,
                         in_valid, in_op, in_src1, in_src2, in_dest,
                         in_src1_ready, in_src2_ready,
                         wake_valid, wake_tag,
                         grant, out_valid, out_op, out_src1, out_src2,
                         out_dest, full);
  parameter DEPTH = 8;
  parameter LOGD  = 3;
  parameter TAG   = 6;
  parameter OP    = 4;

  input             clk;
  input             rst;
  input             flush;
  input             in_valid;
  input  [OP-1:0]   in_op;
  input  [TAG-1:0]  in_src1;
  input  [TAG-1:0]  in_src2;
  input  [TAG-1:0]  in_dest;
  input             in_src1_ready;
  input             in_src2_ready;
  input             wake_valid;
  input  [TAG-1:0]  wake_tag;
  input             grant;
  output            out_valid;
  output [OP-1:0]   out_op;
  output [TAG-1:0]  out_src1;
  output [TAG-1:0]  out_src2;
  output [TAG-1:0]  out_dest;
  output            full;

  reg [DEPTH-1:0] valid;
  reg [DEPTH-1:0] ready1;
  reg [DEPTH-1:0] ready2;
  reg [OP-1:0]    q_op   [0:DEPTH-1];
  reg [TAG-1:0]   q_src1 [0:DEPTH-1];
  reg [TAG-1:0]   q_src2 [0:DEPTH-1];
  reg [TAG-1:0]   q_dest [0:DEPTH-1];

  // Allocation: first free slot (priority encoder).
  reg [LOGD-1:0] free_slot;
  reg            has_free;
  integer i;
  always @(valid) begin
    free_slot = 0;
    has_free  = 1'b0;
    for (i = DEPTH - 1; i >= 0; i = i - 1) begin
      if (!valid[i]) begin
        free_slot = i[LOGD-1:0];
        has_free  = 1'b1;
      end
    end
  end
  assign full = !has_free;

  // Selection: oldest-style fixed priority over ready entries.
  reg [LOGD-1:0] sel_slot;
  reg            sel_valid;
  always @(valid or ready1 or ready2) begin
    sel_slot  = 0;
    sel_valid = 1'b0;
    for (i = DEPTH - 1; i >= 0; i = i - 1) begin
      if (valid[i] & ready1[i] & ready2[i]) begin
        sel_slot  = i[LOGD-1:0];
        sel_valid = 1'b1;
      end
    end
  end

  assign out_valid = sel_valid;
  assign out_op    = q_op[sel_slot];
  assign out_src1  = q_src1[sel_slot];
  assign out_src2  = q_src2[sel_slot];
  assign out_dest  = q_dest[sel_slot];

  always @(posedge clk) begin
    if (rst | flush) begin
      valid  <= 0;
      ready1 <= 0;
      ready2 <= 0;
    end else begin
      if (in_valid && has_free) begin
        valid[free_slot]  <= 1'b1;
        ready1[free_slot] <= in_src1_ready;
        ready2[free_slot] <= in_src2_ready;
        q_op[free_slot]   <= in_op;
        q_src1[free_slot] <= in_src1;
        q_src2[free_slot] <= in_src2;
        q_dest[free_slot] <= in_dest;
      end
      if (wake_valid) begin
        for (i = 0; i < DEPTH; i = i + 1) begin
          if (valid[i] && (q_src1[i] == wake_tag)) ready1[i] <= 1'b1;
          if (valid[i] && (q_src2[i] == wake_tag)) ready2[i] <= 1'b1;
        end
      end
      if (grant && sel_valid)
        valid[sel_slot] <= 1'b0;
    end
  end
endmodule

module puma_branch_unit (op_is_branch, cond_bit, taken_hint, target, next_seq,
                         resolved_taken, resolved_target, mispredict);
  parameter PC_BITS = 30;

  input                 op_is_branch;
  input                 cond_bit;
  input                 taken_hint;
  input  [PC_BITS-1:0]  target;
  input  [PC_BITS-1:0]  next_seq;
  output                resolved_taken;
  output [PC_BITS-1:0]  resolved_target;
  output                mispredict;

  assign resolved_taken  = op_is_branch & cond_bit;
  assign resolved_target = resolved_taken ? target : next_seq;
  assign mispredict      = op_is_branch & (resolved_taken != taken_hint);
endmodule

module puma_execute (clk, rst, flush,
                     iss0_valid, iss0_op, iss0_src1, iss0_src2, iss0_dest,
                     iss0_r1, iss0_r2,
                     iss1_valid, iss1_op, iss1_src1, iss1_src2, iss1_dest,
                     iss1_r1, iss1_r2,
                     rf_data1a, rf_data2a, rf_data1b, rf_data2b,
                     mul_start, br_is_branch, br_cond, br_hint, br_target,
                     br_next_seq,
                     wb0_valid, wb0_dest, wb0_data,
                     wb1_valid, wb1_dest, wb1_data,
                     mul_busy, mul_done, mul_product,
                     br_taken, br_resolved_target, br_mispredict,
                     iq_full0, iq_full1);
  parameter WIDTH   = 32;
  parameter TAG     = 6;
  parameter PC_BITS = 30;

  input              clk;
  input              rst;
  input              flush;
  input              iss0_valid;
  input  [3:0]       iss0_op;
  input  [TAG-1:0]   iss0_src1;
  input  [TAG-1:0]   iss0_src2;
  input  [TAG-1:0]   iss0_dest;
  input              iss0_r1;
  input              iss0_r2;
  input              iss1_valid;
  input  [3:0]       iss1_op;
  input  [TAG-1:0]   iss1_src1;
  input  [TAG-1:0]   iss1_src2;
  input  [TAG-1:0]   iss1_dest;
  input              iss1_r1;
  input              iss1_r2;
  input  [WIDTH-1:0] rf_data1a;
  input  [WIDTH-1:0] rf_data2a;
  input  [WIDTH-1:0] rf_data1b;
  input  [WIDTH-1:0] rf_data2b;
  input              mul_start;
  input              br_is_branch;
  input              br_cond;
  input              br_hint;
  input  [PC_BITS-1:0] br_target;
  input  [PC_BITS-1:0] br_next_seq;
  output             wb0_valid;
  output [TAG-1:0]   wb0_dest;
  output [WIDTH-1:0] wb0_data;
  output             wb1_valid;
  output [TAG-1:0]   wb1_dest;
  output [WIDTH-1:0] wb1_data;
  output             mul_busy;
  output             mul_done;
  output [2*WIDTH-1:0] mul_product;
  output             br_taken;
  output [PC_BITS-1:0] br_resolved_target;
  output             br_mispredict;
  output             iq_full0;
  output             iq_full1;

  wire        q0_valid;
  wire [3:0]  q0_op;
  wire [TAG-1:0] q0_src1, q0_src2, q0_dest;
  wire        q1_valid;
  wire [3:0]  q1_op;
  wire [TAG-1:0] q1_src1, q1_src2, q1_dest;

  puma_issue_queue #(8, 3, TAG, 4) u_iq0
    (clk, rst, flush,
     iss0_valid, iss0_op, iss0_src1, iss0_src2, iss0_dest,
     iss0_r1, iss0_r2,
     wb0_valid, wb0_dest,
     1'b1, q0_valid, q0_op, q0_src1, q0_src2, q0_dest, iq_full0);

  puma_issue_queue #(8, 3, TAG, 4) u_iq1
    (clk, rst, flush,
     iss1_valid, iss1_op, iss1_src1, iss1_src2, iss1_dest,
     iss1_r1, iss1_r2,
     wb1_valid, wb1_dest,
     1'b1, q1_valid, q1_op, q1_src1, q1_src2, q1_dest, iq_full1);

  wire [WIDTH-1:0] alu0_result;
  wire [WIDTH-1:0] alu1_result;
  wire alu0_carry, alu0_zero, alu0_ovf;
  wire alu1_carry, alu1_zero, alu1_ovf;

  puma_alu #(WIDTH) u_alu0
    (rf_data1a, rf_data2a, q0_op, 1'b0,
     alu0_result, alu0_carry, alu0_zero, alu0_ovf);

  puma_alu #(WIDTH) u_alu1
    (rf_data1b, rf_data2b, q1_op, 1'b0,
     alu1_result, alu1_carry, alu1_zero, alu1_ovf);

  puma_multiplier #(WIDTH, 5) u_mul
    (clk, rst, mul_start, rf_data1a, rf_data2a,
     mul_busy, mul_done, mul_product);

  puma_branch_unit #(PC_BITS) u_branch
    (br_is_branch, br_cond, br_hint, br_target, br_next_seq,
     br_taken, br_resolved_target, br_mispredict);

  reg             wb0_valid_q;
  reg [TAG-1:0]   wb0_dest_q;
  reg [WIDTH-1:0] wb0_data_q;
  reg             wb1_valid_q;
  reg [TAG-1:0]   wb1_dest_q;
  reg [WIDTH-1:0] wb1_data_q;

  always @(posedge clk) begin
    if (rst | flush) begin
      wb0_valid_q <= 1'b0;
      wb1_valid_q <= 1'b0;
    end else begin
      wb0_valid_q <= q0_valid;
      wb0_dest_q  <= q0_dest;
      wb0_data_q  <= mul_done ? mul_product[WIDTH-1:0] : alu0_result;
      wb1_valid_q <= q1_valid;
      wb1_dest_q  <= q1_dest;
      wb1_data_q  <= alu1_result;
    end
  end

  assign wb0_valid = wb0_valid_q;
  assign wb0_dest  = wb0_dest_q;
  assign wb0_data  = wb0_data_q;
  assign wb1_valid = wb1_valid_q;
  assign wb1_dest  = wb1_dest_q;
  assign wb1_data  = wb1_data_q;
endmodule
