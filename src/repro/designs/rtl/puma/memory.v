// PUMA-Memory: load/store unit for the two-issue PUMA core.  Verilog-95.
// Address generation, a small store buffer with forwarding, and the data
// cache request interface.  The smallest PUMA component (Table 2: 1
// person-month).

module puma_agen (base, offset, address);
  parameter WIDTH = 32;

  input  [WIDTH-1:0] base;
  input  [15:0]      offset;
  output [WIDTH-1:0] address;

  // Sign-extend the 16-bit displacement.
  assign address = base + {{(WIDTH-16){offset[15]}}, offset};
endmodule

module puma_store_buffer (clk, rst, flush,
                          push, push_addr, push_data,
                          drain, load_addr,
                          forward_hit, forward_data, full, empty,
                          drain_addr, drain_data);
  parameter WIDTH = 32;
  parameter DEPTH = 4;
  parameter LOGD  = 2;

  input              clk;
  input              rst;
  input              flush;
  input              push;
  input  [WIDTH-1:0] push_addr;
  input  [WIDTH-1:0] push_data;
  input              drain;
  input  [WIDTH-1:0] load_addr;
  output             forward_hit;
  output [WIDTH-1:0] forward_data;
  output             full;
  output             empty;
  output [WIDTH-1:0] drain_addr;
  output [WIDTH-1:0] drain_data;

  reg [LOGD-1:0]  head;
  reg [LOGD-1:0]  tail;
  reg [LOGD:0]    count;
  reg [WIDTH-1:0] addrs [0:DEPTH-1];
  reg [WIDTH-1:0] datas [0:DEPTH-1];

  assign full  = (count == DEPTH);
  assign empty = (count == 0);
  assign drain_addr = addrs[head];
  assign drain_data = datas[head];

  // Youngest-match forwarding to loads.
  reg             fwd_hit;
  reg [WIDTH-1:0] fwd_data;
  integer i;
  always @(load_addr or head or count) begin
    fwd_hit  = 1'b0;
    fwd_data = 0;
    for (i = 0; i < DEPTH; i = i + 1) begin
      if ((i < count) && (addrs[head + i] == load_addr)) begin
        fwd_hit  = 1'b1;
        fwd_data = datas[head + i];
      end
    end
  end
  assign forward_hit  = fwd_hit;
  assign forward_data = fwd_data;

  always @(posedge clk) begin
    if (rst | flush) begin
      head  <= 0;
      tail  <= 0;
      count <= 0;
    end else begin
      if (push && !full) begin
        addrs[tail] <= push_addr;
        datas[tail] <= push_data;
        tail  <= tail + 1;
      end
      if (drain && !empty)
        head <= head + 1;
      count <= count + {2'b00, (push && !full)} - {2'b00, (drain && !empty)};
    end
  end
endmodule

module puma_memory (clk, rst, flush,
                    ld_valid, ld_base, ld_offset,
                    st_valid, st_base, st_offset, st_data,
                    dcache_ready, dcache_rdata,
                    dcache_req, dcache_we, dcache_addr, dcache_wdata,
                    ld_data, ld_done, sb_full);
  parameter WIDTH = 32;

  input              clk;
  input              rst;
  input              flush;
  input              ld_valid;
  input  [WIDTH-1:0] ld_base;
  input  [15:0]      ld_offset;
  input              st_valid;
  input  [WIDTH-1:0] st_base;
  input  [15:0]      st_offset;
  input  [WIDTH-1:0] st_data;
  input              dcache_ready;
  input  [WIDTH-1:0] dcache_rdata;
  output             dcache_req;
  output             dcache_we;
  output [WIDTH-1:0] dcache_addr;
  output [WIDTH-1:0] dcache_wdata;
  output [WIDTH-1:0] ld_data;
  output             ld_done;
  output             sb_full;

  wire [WIDTH-1:0] ld_addr;
  wire [WIDTH-1:0] st_addr;
  wire             fwd_hit;
  wire [WIDTH-1:0] fwd_data;
  wire             sb_empty;
  wire [WIDTH-1:0] drain_addr;
  wire [WIDTH-1:0] drain_data;
  wire             do_drain;

  puma_agen #(WIDTH) u_ld_agen (ld_base, ld_offset, ld_addr);
  puma_agen #(WIDTH) u_st_agen (st_base, st_offset, st_addr);

  assign do_drain = !ld_valid & !sb_empty & dcache_ready;

  puma_store_buffer #(WIDTH, 4, 2) u_sb
    (clk, rst, flush,
     st_valid & !sb_full, st_addr, st_data,
     do_drain, ld_addr,
     fwd_hit, fwd_data, sb_full, sb_empty,
     drain_addr, drain_data);

  assign dcache_req   = (ld_valid & !fwd_hit) | do_drain;
  assign dcache_we    = do_drain;
  assign dcache_addr  = do_drain ? drain_addr : ld_addr;
  assign dcache_wdata = drain_data;

  reg             ld_done_q;
  reg [WIDTH-1:0] ld_data_q;
  always @(posedge clk) begin
    if (rst | flush) begin
      ld_done_q <= 1'b0;
    end else begin
      ld_done_q <= ld_valid & (fwd_hit | dcache_ready);
      ld_data_q <= fwd_hit ? fwd_data : dcache_rdata;
    end
  end
  assign ld_done = ld_done_q;
  assign ld_data = ld_data_q;
endmodule
