// PUMA-ROB: reorder buffer for the two-issue PUMA core.  Verilog-95.
// Dispatches up to two entries per cycle, records completion out of
// order, and retires up to two entries in order.

module puma_rob_entry_alloc (head, count, disp0, disp1, slot0, slot1,
                             can_alloc);
  parameter LOGD = 4;
  parameter DEPTH = 16;

  input  [LOGD-1:0] head;
  input  [LOGD:0]   count;
  input             disp0;
  input             disp1;
  output [LOGD-1:0] slot0;
  output [LOGD-1:0] slot1;
  output            can_alloc;

  assign slot0 = head;
  assign slot1 = head + 1;
  assign can_alloc = (count + {4'b0000, disp0} + {4'b0000, disp1}) <= DEPTH;
endmodule

module puma_rob (clk, rst, flush,
                 disp0_valid, disp0_dest, disp0_is_store,
                 disp1_valid, disp1_dest, disp1_is_store,
                 complete0_valid, complete0_tag, complete0_exc,
                 complete1_valid, complete1_tag, complete1_exc,
                 retire0_valid, retire0_dest, retire0_is_store,
                 retire1_valid, retire1_dest, retire1_is_store,
                 rob_full, exc_raised, disp0_tag, disp1_tag);
  parameter DEPTH = 16;
  parameter LOGD  = 4;
  parameter DEST  = 6;

  input              clk;
  input              rst;
  input              flush;
  input              disp0_valid;
  input  [DEST-1:0]  disp0_dest;
  input              disp0_is_store;
  input              disp1_valid;
  input  [DEST-1:0]  disp1_dest;
  input              disp1_is_store;
  input              complete0_valid;
  input  [LOGD-1:0]  complete0_tag;
  input              complete0_exc;
  input              complete1_valid;
  input  [LOGD-1:0]  complete1_tag;
  input              complete1_exc;
  output             retire0_valid;
  output [DEST-1:0]  retire0_dest;
  output             retire0_is_store;
  output             retire1_valid;
  output [DEST-1:0]  retire1_dest;
  output             retire1_is_store;
  output             rob_full;
  output             exc_raised;
  output [LOGD-1:0]  disp0_tag;
  output [LOGD-1:0]  disp1_tag;

  reg [LOGD-1:0]  head;
  reg [LOGD-1:0]  tail;
  reg [LOGD:0]    count;
  reg [DEPTH-1:0] done;
  reg [DEPTH-1:0] exc;
  reg [DEPTH-1:0] is_store;
  reg [DEST-1:0]  dest [0:DEPTH-1];

  wire              can_alloc;
  wire [LOGD-1:0]   slot0;
  wire [LOGD-1:0]   slot1;

  puma_rob_entry_alloc #(LOGD, DEPTH) u_alloc
    (tail, count, disp0_valid, disp1_valid, slot0, slot1, can_alloc);

  assign rob_full  = !can_alloc;
  assign disp0_tag = slot0;
  assign disp1_tag = slot1;

  wire head0_done;
  wire head1_done;
  wire [LOGD-1:0] head1;

  assign head1      = head + 1;
  assign head0_done = done[head]  & (count != 0);
  assign head1_done = done[head1] & (count > 1);

  assign retire0_valid    = head0_done & !exc[head];
  assign retire1_valid    = retire0_valid & head1_done & !exc[head1];
  assign retire0_dest     = dest[head];
  assign retire1_dest     = dest[head1];
  assign retire0_is_store = is_store[head];
  assign retire1_is_store = is_store[head1];
  assign exc_raised       = head0_done & exc[head];

  wire [1:0] n_disp;
  wire [1:0] n_retire;
  assign n_disp   = {1'b0, disp0_valid & can_alloc}
                  + {1'b0, disp1_valid & can_alloc};
  assign n_retire = {1'b0, retire0_valid} + {1'b0, retire1_valid};

  always @(posedge clk) begin
    if (rst | flush) begin
      head  <= 0;
      tail  <= 0;
      count <= 0;
      done  <= 0;
      exc   <= 0;
    end else begin
      tail  <= tail + {2'b00, n_disp};
      head  <= head + {2'b00, n_retire};
      count <= count + {3'b000, n_disp} - {3'b000, n_retire};
      if (disp0_valid & can_alloc) begin
        done[slot0]     <= 1'b0;
        exc[slot0]      <= 1'b0;
        is_store[slot0] <= disp0_is_store;
        dest[slot0]     <= disp0_dest;
      end
      if (disp1_valid & can_alloc) begin
        done[slot1]     <= 1'b0;
        exc[slot1]      <= 1'b0;
        is_store[slot1] <= disp1_is_store;
        dest[slot1]     <= disp1_dest;
      end
      if (complete0_valid) begin
        done[complete0_tag] <= 1'b1;
        exc[complete0_tag]  <= complete0_exc;
      end
      if (complete1_valid) begin
        done[complete1_tag] <= 1'b1;
        exc[complete1_tag]  <= complete1_exc;
      end
    end
  end
endmodule
