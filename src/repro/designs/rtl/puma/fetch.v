// PUMA-Fetch: two-wide instruction fetch with a gshare branch predictor
// and a branch target buffer.  Verilog-95 style (non-ANSI ports, explicit
// instantiation), matching the PUMA design of Section 4.1.

module puma_gshare (clk, rst, pc, update, update_pc, taken, predict_taken);
  parameter GHR_BITS  = 8;
  parameter PC_BITS   = 30;

  input                  clk;
  input                  rst;
  input  [PC_BITS-1:0]   pc;
  input                  update;
  input  [PC_BITS-1:0]   update_pc;
  input                  taken;
  output                 predict_taken;

  reg [GHR_BITS-1:0] ghr;
  reg [1:0]          pht [0:255];

  wire [GHR_BITS-1:0] read_index;
  wire [GHR_BITS-1:0] write_index;
  wire [1:0]          counter;
  wire [1:0]          write_counter;

  assign read_index  = pc[GHR_BITS-1:0] ^ ghr;
  assign write_index = update_pc[GHR_BITS-1:0] ^ ghr;
  assign counter = pht[read_index];
  assign predict_taken = counter[1];
  assign write_counter = taken ? ((counter == 2'b11) ? 2'b11 : counter + 2'b01)
                               : ((counter == 2'b00) ? 2'b00 : counter - 2'b01);

  always @(posedge clk) begin
    if (rst) begin
      ghr <= 0;
    end else begin
      if (update) begin
        ghr <= {ghr[GHR_BITS-2:0], taken};
        pht[write_index] <= write_counter;
      end
    end
  end
endmodule

module puma_btb (clk, rst, pc, update, update_pc, update_target, hit, target);
  parameter PC_BITS   = 30;
  parameter ENTRIES   = 64;
  parameter INDEX     = 6;

  input                 clk;
  input                 rst;
  input  [PC_BITS-1:0]  pc;
  input                 update;
  input  [PC_BITS-1:0]  update_pc;
  input  [PC_BITS-1:0]  update_target;
  output                hit;
  output [PC_BITS-1:0]  target;

  reg [PC_BITS-INDEX-1:0] tags    [0:ENTRIES-1];
  reg [PC_BITS-1:0]       targets [0:ENTRIES-1];
  reg [ENTRIES-1:0]       valid;

  wire [INDEX-1:0] index;
  wire [INDEX-1:0] windex;

  assign index  = pc[INDEX-1:0];
  assign windex = update_pc[INDEX-1:0];
  assign hit    = valid[index] & (tags[index] == pc[PC_BITS-1:INDEX]);
  assign target = targets[index];

  always @(posedge clk) begin
    if (rst) begin
      valid <= 0;
    end else begin
      if (update) begin
        tags[windex]    <= update_pc[PC_BITS-1:INDEX];
        targets[windex] <= update_target;
        valid[windex]   <= 1'b1;
      end
    end
  end
endmodule

module puma_fetch_align (pc, bundle, slot0, slot1, slot0_valid, slot1_valid);
  parameter INST_BITS = 32;

  input  [1:0]              pc;
  input  [4*INST_BITS-1:0]  bundle;
  output [INST_BITS-1:0]    slot0;
  output [INST_BITS-1:0]    slot1;
  output                    slot0_valid;
  output                    slot1_valid;

  reg [INST_BITS-1:0] slot0;
  reg [INST_BITS-1:0] slot1;

  always @(pc or bundle) begin
    case (pc)
      2'd0: slot0 = bundle[INST_BITS-1:0];
      2'd1: slot0 = bundle[2*INST_BITS-1:INST_BITS];
      2'd2: slot0 = bundle[3*INST_BITS-1:2*INST_BITS];
      default: slot0 = bundle[4*INST_BITS-1:3*INST_BITS];
    endcase
    case (pc)
      2'd0: slot1 = bundle[2*INST_BITS-1:INST_BITS];
      2'd1: slot1 = bundle[3*INST_BITS-1:2*INST_BITS];
      default: slot1 = bundle[4*INST_BITS-1:3*INST_BITS];
    endcase
  end

  assign slot0_valid = 1'b1;
  assign slot1_valid = (pc != 2'd3);
endmodule

module puma_fetch (clk, rst, stall, redirect, redirect_pc,
                   icache_data, icache_ready,
                   br_update, br_update_pc, br_taken, br_target,
                   icache_addr, icache_req,
                   inst0, inst1, inst0_valid, inst1_valid, fetch_pc);
  parameter PC_BITS   = 30;
  parameter INST_BITS = 32;

  input                    clk;
  input                    rst;
  input                    stall;
  input                    redirect;
  input  [PC_BITS-1:0]     redirect_pc;
  input  [4*INST_BITS-1:0] icache_data;
  input                    icache_ready;
  input                    br_update;
  input  [PC_BITS-1:0]     br_update_pc;
  input                    br_taken;
  input  [PC_BITS-1:0]     br_target;
  output [PC_BITS-1:0]     icache_addr;
  output                   icache_req;
  output [INST_BITS-1:0]   inst0;
  output [INST_BITS-1:0]   inst1;
  output                   inst0_valid;
  output                   inst1_valid;
  output [PC_BITS-1:0]     fetch_pc;

  reg [PC_BITS-1:0] pc;

  wire predict_taken;
  wire btb_hit;
  wire [PC_BITS-1:0] btb_target;
  wire slot0_valid;
  wire slot1_valid;
  wire take_branch;
  wire [PC_BITS-1:0] next_pc;

  puma_gshare #(8, PC_BITS) u_gshare
    (clk, rst, pc, br_update, br_update_pc, br_taken, predict_taken);

  puma_btb #(PC_BITS, 64, 6) u_btb
    (clk, rst, pc, br_update & br_taken, br_update_pc, br_target,
     btb_hit, btb_target);

  puma_fetch_align #(INST_BITS) u_align
    (pc[1:0], icache_data, inst0, inst1, slot0_valid, slot1_valid);

  assign take_branch = predict_taken & btb_hit;
  assign next_pc = redirect ? redirect_pc
                 : (take_branch ? btb_target : pc + 2);

  always @(posedge clk) begin
    if (rst) begin
      pc <= 0;
    end else begin
      if (!stall && icache_ready)
        pc <= next_pc;
    end
  end

  assign icache_addr = pc;
  assign icache_req  = !stall;
  assign fetch_pc    = pc;
  assign inst0_valid = icache_ready & slot0_valid & !redirect;
  assign inst1_valid = icache_ready & slot1_valid & !redirect & !take_branch;
endmodule
