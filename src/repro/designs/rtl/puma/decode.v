// PUMA-Decode: two-wide decoder for the PowerPC integer subset.
// Verilog-95.  Decode is dominated by wide case statements translating
// opcodes into control bundles, so its statement count is high relative to
// its logic size -- as in the paper's Table 4 row for PUMA-Decode.

module puma_decoder_slot (inst, valid,
                          rt, ra, rb, uses_ra, uses_rb, writes_rt,
                          imm, uses_imm, alu_op, is_load, is_store,
                          is_branch, is_mul, illegal);
  parameter INST_BITS = 32;

  input  [INST_BITS-1:0] inst;
  input                  valid;
  output [4:0]           rt;
  output [4:0]           ra;
  output [4:0]           rb;
  output                 uses_ra;
  output                 uses_rb;
  output                 writes_rt;
  output [15:0]          imm;
  output                 uses_imm;
  output [3:0]           alu_op;
  output                 is_load;
  output                 is_store;
  output                 is_branch;
  output                 is_mul;
  output                 illegal;

  reg        uses_ra;
  reg        uses_rb;
  reg        writes_rt;
  reg        uses_imm;
  reg [3:0]  alu_op;
  reg        is_load;
  reg        is_store;
  reg        is_branch;
  reg        is_mul;
  reg        illegal;

  wire [5:0] opcode;
  wire [9:0] xo;

  assign opcode = inst[INST_BITS-1:INST_BITS-6];
  assign xo     = inst[10:1];
  assign rt     = inst[INST_BITS-7:INST_BITS-11];
  assign ra     = inst[INST_BITS-12:INST_BITS-16];
  assign rb     = inst[INST_BITS-17:INST_BITS-21];
  assign imm    = inst[15:0];

  always @(inst or valid or opcode or xo) begin
    uses_ra   = 1'b0;
    uses_rb   = 1'b0;
    writes_rt = 1'b0;
    uses_imm  = 1'b0;
    alu_op    = 4'd0;
    is_load   = 1'b0;
    is_store  = 1'b0;
    is_branch = 1'b0;
    is_mul    = 1'b0;
    illegal   = 1'b0;
    case (opcode)
      6'd14: begin // addi
        uses_ra = 1'b1; writes_rt = 1'b1; uses_imm = 1'b1; alu_op = 4'd0;
      end
      6'd15: begin // addis
        uses_ra = 1'b1; writes_rt = 1'b1; uses_imm = 1'b1; alu_op = 4'd1;
      end
      6'd24: begin // ori
        uses_ra = 1'b1; writes_rt = 1'b1; uses_imm = 1'b1; alu_op = 4'd2;
      end
      6'd26: begin // xori
        uses_ra = 1'b1; writes_rt = 1'b1; uses_imm = 1'b1; alu_op = 4'd3;
      end
      6'd28: begin // andi.
        uses_ra = 1'b1; writes_rt = 1'b1; uses_imm = 1'b1; alu_op = 4'd4;
      end
      6'd10, 6'd11: begin // cmpli/cmpi
        uses_ra = 1'b1; uses_imm = 1'b1; alu_op = 4'd5;
      end
      6'd32, 6'd33, 6'd34, 6'd35: begin // lwz/lwzu/lbz/lbzu
        uses_ra = 1'b1; writes_rt = 1'b1; uses_imm = 1'b1; is_load = 1'b1;
      end
      6'd36, 6'd37, 6'd38, 6'd39: begin // stw/stwu/stb/stbu
        uses_ra = 1'b1; uses_rb = 1'b1; uses_imm = 1'b1; is_store = 1'b1;
      end
      6'd18: begin // b/bl
        is_branch = 1'b1; uses_imm = 1'b1;
      end
      6'd16: begin // bc
        is_branch = 1'b1; uses_imm = 1'b1; uses_ra = 1'b1;
      end
      6'd31: begin // X-form ALU ops
        case (xo)
          10'd266: begin // add
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd0;
          end
          10'd40: begin // subf
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd6;
          end
          10'd28: begin // and
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd4;
          end
          10'd444: begin // or
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd2;
          end
          10'd316: begin // xor
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd3;
          end
          10'd24: begin // slw
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd7;
          end
          10'd536: begin // srw
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; alu_op = 4'd8;
          end
          10'd235: begin // mullw
            uses_ra = 1'b1; uses_rb = 1'b1; writes_rt = 1'b1; is_mul = 1'b1;
          end
          default: illegal = valid;
        endcase
      end
      default: illegal = valid;
    endcase
  end
endmodule

module puma_dep_check (d0_writes, d0_rt, d1_uses_ra, d1_ra,
                       d1_uses_rb, d1_rb, raw_hazard);
  input        d0_writes;
  input  [4:0] d0_rt;
  input        d1_uses_ra;
  input  [4:0] d1_ra;
  input        d1_uses_rb;
  input  [4:0] d1_rb;
  output       raw_hazard;

  wire ra_match;
  wire rb_match;
  assign ra_match = d1_uses_ra & (d1_ra == d0_rt);
  assign rb_match = d1_uses_rb & (d1_rb == d0_rt);
  assign raw_hazard = d0_writes & (ra_match | rb_match);
endmodule

module puma_decode (clk, rst, stall,
                    inst0, inst1, inst0_valid, inst1_valid,
                    d0_rt, d0_ra, d0_rb, d0_imm, d0_alu_op,
                    d0_uses_imm, d0_writes_rt, d0_is_load, d0_is_store,
                    d0_is_branch, d0_is_mul, d0_valid,
                    d1_rt, d1_ra, d1_rb, d1_imm, d1_alu_op,
                    d1_uses_imm, d1_writes_rt, d1_is_load, d1_is_store,
                    d1_is_branch, d1_is_mul, d1_valid,
                    pair_hazard, decode_illegal);
  parameter INST_BITS = 32;

  input                  clk;
  input                  rst;
  input                  stall;
  input  [INST_BITS-1:0] inst0;
  input  [INST_BITS-1:0] inst1;
  input                  inst0_valid;
  input                  inst1_valid;
  output [4:0]           d0_rt;
  output [4:0]           d0_ra;
  output [4:0]           d0_rb;
  output [15:0]          d0_imm;
  output [3:0]           d0_alu_op;
  output                 d0_uses_imm;
  output                 d0_writes_rt;
  output                 d0_is_load;
  output                 d0_is_store;
  output                 d0_is_branch;
  output                 d0_is_mul;
  output                 d0_valid;
  output [4:0]           d1_rt;
  output [4:0]           d1_ra;
  output [4:0]           d1_rb;
  output [15:0]          d1_imm;
  output [3:0]           d1_alu_op;
  output                 d1_uses_imm;
  output                 d1_writes_rt;
  output                 d1_is_load;
  output                 d1_is_store;
  output                 d1_is_branch;
  output                 d1_is_mul;
  output                 d1_valid;
  output                 pair_hazard;
  output                 decode_illegal;

  wire d0_uses_ra, d0_uses_rb, ill0;
  wire d1_uses_ra, d1_uses_rb, ill1;

  puma_decoder_slot #(INST_BITS) u_slot0
    (inst0, inst0_valid,
     d0_rt, d0_ra, d0_rb, d0_uses_ra, d0_uses_rb, d0_writes_rt,
     d0_imm, d0_uses_imm, d0_alu_op, d0_is_load, d0_is_store,
     d0_is_branch, d0_is_mul, ill0);

  puma_decoder_slot #(INST_BITS) u_slot1
    (inst1, inst1_valid,
     d1_rt, d1_ra, d1_rb, d1_uses_ra, d1_uses_rb, d1_writes_rt,
     d1_imm, d1_uses_imm, d1_alu_op, d1_is_load, d1_is_store,
     d1_is_branch, d1_is_mul, ill1);

  puma_dep_check u_dep
    (d0_writes_rt, d0_rt, d1_uses_ra, d1_ra, d1_uses_rb, d1_rb,
     pair_hazard);

  reg valid0_q;
  reg valid1_q;
  always @(posedge clk) begin
    if (rst) begin
      valid0_q <= 1'b0;
      valid1_q <= 1'b0;
    end else begin
      if (!stall) begin
        valid0_q <= inst0_valid & !ill0;
        valid1_q <= inst1_valid & !ill1 & !pair_hazard;
      end
    end
  end

  assign d0_valid = valid0_q;
  assign d1_valid = valid1_q;
  assign decode_illegal = ill0 | ill1;
endmodule
