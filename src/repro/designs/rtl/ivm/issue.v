// IVM-Issue: four-wide issue window with CAM-style wakeup and four
// explicitly instantiated select units (one per issue port).  Verilog-95.

module ivm_wakeup_cam (clk, rst, flush,
                       alloc, alloc_slot, alloc_src1, alloc_src2,
                       alloc_r1, alloc_r2,
                       wb0_valid, wb0_tag, wb1_valid, wb1_tag,
                       wb2_valid, wb2_tag, wb3_valid, wb3_tag,
                       issued, issued_slot,
                       valid, ready);
  parameter DEPTH = 16;
  parameter LOGD  = 4;
  parameter TAG   = 7;

  input              clk;
  input              rst;
  input              flush;
  input              alloc;
  input  [LOGD-1:0]  alloc_slot;
  input  [TAG-1:0]   alloc_src1;
  input  [TAG-1:0]   alloc_src2;
  input              alloc_r1;
  input              alloc_r2;
  input              wb0_valid;
  input  [TAG-1:0]   wb0_tag;
  input              wb1_valid;
  input  [TAG-1:0]   wb1_tag;
  input              wb2_valid;
  input  [TAG-1:0]   wb2_tag;
  input              wb3_valid;
  input  [TAG-1:0]   wb3_tag;
  input              issued;
  input  [LOGD-1:0]  issued_slot;
  output [DEPTH-1:0] valid;
  output [DEPTH-1:0] ready;

  reg [DEPTH-1:0] valid;
  reg [DEPTH-1:0] r1;
  reg [DEPTH-1:0] r2;
  reg [TAG-1:0]   src1 [0:DEPTH-1];
  reg [TAG-1:0]   src2 [0:DEPTH-1];

  assign ready = r1 & r2;

  integer i;
  always @(posedge clk) begin
    if (rst | flush) begin
      valid <= 0;
      r1    <= 0;
      r2    <= 0;
    end else begin
      for (i = 0; i < DEPTH; i = i + 1) begin
        if (valid[i] && ((wb0_valid && (src1[i] == wb0_tag))
                      || (wb1_valid && (src1[i] == wb1_tag))
                      || (wb2_valid && (src1[i] == wb2_tag))
                      || (wb3_valid && (src1[i] == wb3_tag))))
          r1[i] <= 1'b1;
        if (valid[i] && ((wb0_valid && (src2[i] == wb0_tag))
                      || (wb1_valid && (src2[i] == wb1_tag))
                      || (wb2_valid && (src2[i] == wb2_tag))
                      || (wb3_valid && (src2[i] == wb3_tag))))
          r2[i] <= 1'b1;
      end
      if (alloc) begin
        valid[alloc_slot] <= 1'b1;
        r1[alloc_slot]    <= alloc_r1;
        r2[alloc_slot]    <= alloc_r2;
        src1[alloc_slot]  <= alloc_src1;
        src2[alloc_slot]  <= alloc_src2;
      end
      if (issued)
        valid[issued_slot] <= 1'b0;
    end
  end
endmodule

module ivm_select (request, grant_slot, grant_valid);
  parameter DEPTH = 16;
  parameter LOGD  = 4;

  input  [DEPTH-1:0] request;
  output [LOGD-1:0]  grant_slot;
  output             grant_valid;

  reg [LOGD-1:0] grant_slot;
  reg            grant_valid;

  integer i;
  always @(request) begin
    grant_slot  = 0;
    grant_valid = 1'b0;
    for (i = DEPTH - 1; i >= 0; i = i - 1) begin
      if (request[i]) begin
        grant_slot  = i[LOGD-1:0];
        grant_valid = 1'b1;
      end
    end
  end
endmodule

module ivm_issue (clk, rst, flush,
                  disp_valid, disp_slot, disp_src1, disp_src2,
                  disp_r1, disp_r2,
                  wb0_valid, wb0_tag, wb1_valid, wb1_tag,
                  wb2_valid, wb2_tag, wb3_valid, wb3_tag,
                  iss0_valid, iss0_slot, iss1_valid, iss1_slot,
                  iss2_valid, iss2_slot, iss3_valid, iss3_slot,
                  window_full);
  parameter DEPTH = 16;
  parameter LOGD  = 4;
  parameter TAG   = 7;

  input              clk;
  input              rst;
  input              flush;
  input              disp_valid;
  input  [LOGD-1:0]  disp_slot;
  input  [TAG-1:0]   disp_src1;
  input  [TAG-1:0]   disp_src2;
  input              disp_r1;
  input              disp_r2;
  input              wb0_valid;
  input  [TAG-1:0]   wb0_tag;
  input              wb1_valid;
  input  [TAG-1:0]   wb1_tag;
  input              wb2_valid;
  input  [TAG-1:0]   wb2_tag;
  input              wb3_valid;
  input  [TAG-1:0]   wb3_tag;
  output             iss0_valid;
  output [LOGD-1:0]  iss0_slot;
  output             iss1_valid;
  output [LOGD-1:0]  iss1_slot;
  output             iss2_valid;
  output [LOGD-1:0]  iss2_slot;
  output             iss3_valid;
  output [LOGD-1:0]  iss3_slot;
  output             window_full;

  wire [DEPTH-1:0] valid;
  wire [DEPTH-1:0] ready;

  ivm_wakeup_cam #(DEPTH, LOGD, TAG) u_cam
    (clk, rst, flush,
     disp_valid, disp_slot, disp_src1, disp_src2, disp_r1, disp_r2,
     wb0_valid, wb0_tag, wb1_valid, wb1_tag,
     wb2_valid, wb2_tag, wb3_valid, wb3_tag,
     iss0_valid, iss0_slot,
     valid, ready);

  assign window_full = &valid;

  // Four cascaded select units; each masks out earlier grants.
  wire [DEPTH-1:0] req0;
  wire [DEPTH-1:0] req1;
  wire [DEPTH-1:0] req2;
  wire [DEPTH-1:0] req3;
  wire [DEPTH-1:0] grant0_mask;
  wire [DEPTH-1:0] grant1_mask;
  wire [DEPTH-1:0] grant2_mask;

  assign req0 = valid & ready;

  ivm_select #(DEPTH, LOGD) u_sel0 (req0, iss0_slot, iss0_valid);
  assign grant0_mask = iss0_valid ? (16'h0001 << iss0_slot) : 16'h0000;
  assign req1 = req0 & ~grant0_mask;

  ivm_select #(DEPTH, LOGD) u_sel1 (req1, iss1_slot, iss1_valid);
  assign grant1_mask = iss1_valid ? (16'h0001 << iss1_slot) : 16'h0000;
  assign req2 = req1 & ~grant1_mask;

  ivm_select #(DEPTH, LOGD) u_sel2 (req2, iss2_slot, iss2_valid);
  assign grant2_mask = iss2_valid ? (16'h0001 << iss2_slot) : 16'h0000;
  assign req3 = req2 & ~grant2_mask;

  ivm_select #(DEPTH, LOGD) u_sel3 (req3, iss3_slot, iss3_valid);
endmodule
