// IVM-Execute: four parallel integer execution pipes for the 4-issue IVM
// core.  Purely combinational (the paper's Table 4 reports zero flip-flops
// for IVM-Execute; latching happens in the surrounding pipeline stages).
// Verilog-95, explicit 4x instantiation of the ALU and bypass muxes.

module ivm_exec_alu (a, b, opclass, func, result, take_branch);
  parameter WIDTH = 64;

  input  [WIDTH-1:0] a;
  input  [WIDTH-1:0] b;
  input  [2:0]       opclass;
  input  [2:0]       func;
  output [WIDTH-1:0] result;
  output             take_branch;

  reg [WIDTH-1:0] result;

  wire [WIDTH-1:0] adder_out;
  wire [WIDTH-1:0] logic_out;
  wire [WIDTH-1:0] shift_out;

  ivm_exec_adder #(WIDTH) u_add (a, b, func[0], adder_out);
  ivm_exec_logic #(WIDTH) u_log (a, b, func[1:0], logic_out);
  ivm_exec_shift #(WIDTH) u_shf (a, b[5:0], func[0], shift_out);

  always @(opclass or adder_out or logic_out or shift_out or a) begin
    case (opclass)
      3'd0: result = adder_out;
      3'd1: result = logic_out;
      3'd2: result = shift_out;
      default: result = a;
    endcase
  end

  assign take_branch = (opclass == 3'd6) & (a == 0);
endmodule

module ivm_exec_adder (a, b, do_sub, sum);
  parameter WIDTH = 64;

  input  [WIDTH-1:0] a;
  input  [WIDTH-1:0] b;
  input              do_sub;
  output [WIDTH-1:0] sum;

  assign sum = do_sub ? (a - b) : (a + b);
endmodule

module ivm_exec_logic (a, b, sel, out);
  parameter WIDTH = 64;

  input  [WIDTH-1:0] a;
  input  [WIDTH-1:0] b;
  input  [1:0]       sel;
  output [WIDTH-1:0] out;

  reg [WIDTH-1:0] out;
  always @(a or b or sel) begin
    case (sel)
      2'd0: out = a & b;
      2'd1: out = a | b;
      2'd2: out = a ^ b;
      default: out = a & ~b; // bic
    endcase
  end
endmodule

module ivm_exec_shift (a, amount, dir_right, out);
  parameter WIDTH = 64;

  input  [WIDTH-1:0] a;
  input  [5:0]       amount;
  input              dir_right;
  output [WIDTH-1:0] out;

  assign out = dir_right ? (a >> amount) : (a << amount);
endmodule

module ivm_exec_bypass (raw, wb0_valid, wb0_tag, wb0_data,
                        wb1_valid, wb1_tag, wb1_data, my_tag, out);
  parameter WIDTH = 64;
  parameter TAG   = 7;

  input  [WIDTH-1:0] raw;
  input              wb0_valid;
  input  [TAG-1:0]   wb0_tag;
  input  [WIDTH-1:0] wb0_data;
  input              wb1_valid;
  input  [TAG-1:0]   wb1_tag;
  input  [WIDTH-1:0] wb1_data;
  input  [TAG-1:0]   my_tag;
  output [WIDTH-1:0] out;

  wire hit0;
  wire hit1;
  assign hit0 = wb0_valid & (wb0_tag == my_tag);
  assign hit1 = wb1_valid & (wb1_tag == my_tag);
  assign out = hit0 ? wb0_data : (hit1 ? wb1_data : raw);
endmodule

module ivm_execute (a0, b0, class0, func0, tag_a0, tag_b0,
                    a1, b1, class1, func1, tag_a1, tag_b1,
                    a2, b2, class2, func2, tag_a2, tag_b2,
                    a3, b3, class3, func3, tag_a3, tag_b3,
                    wb0_valid, wb0_tag, wb0_data,
                    wb1_valid, wb1_tag, wb1_data,
                    r0, r1, r2, r3,
                    br0, br1, br2, br3);
  parameter WIDTH = 64;
  parameter TAG   = 7;

  input  [WIDTH-1:0] a0;
  input  [WIDTH-1:0] b0;
  input  [2:0]       class0;
  input  [2:0]       func0;
  input  [TAG-1:0]   tag_a0;
  input  [TAG-1:0]   tag_b0;
  input  [WIDTH-1:0] a1;
  input  [WIDTH-1:0] b1;
  input  [2:0]       class1;
  input  [2:0]       func1;
  input  [TAG-1:0]   tag_a1;
  input  [TAG-1:0]   tag_b1;
  input  [WIDTH-1:0] a2;
  input  [WIDTH-1:0] b2;
  input  [2:0]       class2;
  input  [2:0]       func2;
  input  [TAG-1:0]   tag_a2;
  input  [TAG-1:0]   tag_b2;
  input  [WIDTH-1:0] a3;
  input  [WIDTH-1:0] b3;
  input  [2:0]       class3;
  input  [2:0]       func3;
  input  [TAG-1:0]   tag_a3;
  input  [TAG-1:0]   tag_b3;
  input              wb0_valid;
  input  [TAG-1:0]   wb0_tag;
  input  [WIDTH-1:0] wb0_data;
  input              wb1_valid;
  input  [TAG-1:0]   wb1_tag;
  input  [WIDTH-1:0] wb1_data;
  output [WIDTH-1:0] r0;
  output [WIDTH-1:0] r1;
  output [WIDTH-1:0] r2;
  output [WIDTH-1:0] r3;
  output             br0;
  output             br1;
  output             br2;
  output             br3;

  wire [WIDTH-1:0] ba0, bb0, ba1, bb1, ba2, bb2, ba3, bb3;

  ivm_exec_bypass #(WIDTH, TAG) u_bpa0
    (a0, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_a0, ba0);
  ivm_exec_bypass #(WIDTH, TAG) u_bpb0
    (b0, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_b0, bb0);
  ivm_exec_bypass #(WIDTH, TAG) u_bpa1
    (a1, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_a1, ba1);
  ivm_exec_bypass #(WIDTH, TAG) u_bpb1
    (b1, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_b1, bb1);
  ivm_exec_bypass #(WIDTH, TAG) u_bpa2
    (a2, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_a2, ba2);
  ivm_exec_bypass #(WIDTH, TAG) u_bpb2
    (b2, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_b2, bb2);
  ivm_exec_bypass #(WIDTH, TAG) u_bpa3
    (a3, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_a3, ba3);
  ivm_exec_bypass #(WIDTH, TAG) u_bpb3
    (b3, wb0_valid, wb0_tag, wb0_data, wb1_valid, wb1_tag, wb1_data,
     tag_b3, bb3);

  ivm_exec_alu #(WIDTH) u_alu0 (ba0, bb0, class0, func0, r0, br0);
  ivm_exec_alu #(WIDTH) u_alu1 (ba1, bb1, class1, func1, r1, br1);
  ivm_exec_alu #(WIDTH) u_alu2 (ba2, bb2, class2, func2, r2, br2);
  ivm_exec_alu #(WIDTH) u_alu3 (ba3, bb3, class3, func3, r3, br3);
endmodule
