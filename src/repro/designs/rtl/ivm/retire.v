// IVM-Retire: reorder-buffer retirement for the IVM core, committing up
// to eight instructions per cycle (Table 1: retire width 8), with eight
// explicitly instantiated per-slot commit checkers.  Verilog-95.

module ivm_retire_slot (slot_done, slot_exc, older_commits, commit, trap);
  input  slot_done;
  input  slot_exc;
  input  older_commits;
  output commit;
  output trap;

  assign commit = slot_done & !slot_exc & older_commits;
  assign trap   = slot_done & slot_exc & older_commits;
endmodule

module ivm_retire (clk, rst, flush_in,
                   disp0, disp0_tag, disp1, disp1_tag,
                   disp2, disp2_tag, disp3, disp3_tag,
                   done_valid, done_slot, done_exc,
                   commit_count, trap_raised, trap_slot,
                   free0, free0_tag, free1, free1_tag,
                   rob_full);
  parameter DEPTH = 32;
  parameter LOGD  = 5;
  parameter TAG   = 7;
  parameter RET   = 8;

  input             clk;
  input             rst;
  input             flush_in;
  input             disp0;
  input  [TAG-1:0]  disp0_tag;
  input             disp1;
  input  [TAG-1:0]  disp1_tag;
  input             disp2;
  input  [TAG-1:0]  disp2_tag;
  input             disp3;
  input  [TAG-1:0]  disp3_tag;
  input             done_valid;
  input  [LOGD-1:0] done_slot;
  input             done_exc;
  output [3:0]      commit_count;
  output            trap_raised;
  output [LOGD-1:0] trap_slot;
  output            free0;
  output [TAG-1:0]  free0_tag;
  output            free1;
  output [TAG-1:0]  free1_tag;
  output            rob_full;

  reg [LOGD-1:0]  head;
  reg [LOGD-1:0]  tail;
  reg [LOGD:0]    count;
  reg [DEPTH-1:0] done;
  reg [DEPTH-1:0] exc;
  reg [TAG-1:0]   tags [0:DEPTH-1];

  assign rob_full = (count > DEPTH - 4);

  // Eight retire slots, each gated by all older slots committing.
  wire d0, d1, d2, d3, d4, d5, d6, d7;
  wire e0, e1, e2, e3, e4, e5, e6, e7;
  wire c0, c1, c2, c3, c4, c5, c6, c7;
  wire t0, t1, t2, t3, t4, t5, t6, t7;

  assign d0 = done[head]     & (count > 0);
  assign d1 = done[head + 1] & (count > 1);
  assign d2 = done[head + 2] & (count > 2);
  assign d3 = done[head + 3] & (count > 3);
  assign d4 = done[head + 4] & (count > 4);
  assign d5 = done[head + 5] & (count > 5);
  assign d6 = done[head + 6] & (count > 6);
  assign d7 = done[head + 7] & (count > 7);
  assign e0 = exc[head];
  assign e1 = exc[head + 1];
  assign e2 = exc[head + 2];
  assign e3 = exc[head + 3];
  assign e4 = exc[head + 4];
  assign e5 = exc[head + 5];
  assign e6 = exc[head + 6];
  assign e7 = exc[head + 7];

  ivm_retire_slot u_r0 (d0, e0, 1'b1, c0, t0);
  ivm_retire_slot u_r1 (d1, e1, c0, c1, t1);
  ivm_retire_slot u_r2 (d2, e2, c1, c2, t2);
  ivm_retire_slot u_r3 (d3, e3, c2, c3, t3);
  ivm_retire_slot u_r4 (d4, e4, c3, c4, t4);
  ivm_retire_slot u_r5 (d5, e5, c4, c5, t5);
  ivm_retire_slot u_r6 (d6, e6, c5, c6, t6);
  ivm_retire_slot u_r7 (d7, e7, c6, c7, t7);

  assign commit_count = {3'b000, c0} + {3'b000, c1} + {3'b000, c2}
                      + {3'b000, c3} + {3'b000, c4} + {3'b000, c5}
                      + {3'b000, c6} + {3'b000, c7};
  assign trap_raised = t0 | t1 | t2 | t3 | t4 | t5 | t6 | t7;
  assign trap_slot   = head;

  // Free the first two committed destination tags back to rename.
  assign free0     = c0;
  assign free0_tag = tags[head];
  assign free1     = c1;
  assign free1_tag = tags[head + 1];

  wire [2:0] n_disp;
  assign n_disp = {2'b00, disp0} + {2'b00, disp1}
                + {2'b00, disp2} + {2'b00, disp3};

  always @(posedge clk) begin
    if (rst | flush_in) begin
      head  <= 0;
      tail  <= 0;
      count <= 0;
      done  <= 0;
      exc   <= 0;
    end else begin
      head  <= head + {2'b00, commit_count[2:0]};
      tail  <= tail + {3'b000, n_disp};
      count <= count + {3'b000, n_disp} - {2'b00, commit_count};
      if (disp0) begin
        done[tail] <= 1'b0;
        exc[tail]  <= 1'b0;
        tags[tail] <= disp0_tag;
      end
      if (disp1) begin
        done[tail + 1] <= 1'b0;
        exc[tail + 1]  <= 1'b0;
        tags[tail + 1] <= disp1_tag;
      end
      if (disp2) begin
        done[tail + 2] <= 1'b0;
        exc[tail + 2]  <= 1'b0;
        tags[tail + 2] <= disp2_tag;
      end
      if (disp3) begin
        done[tail + 3] <= 1'b0;
        exc[tail + 3]  <= 1'b0;
        tags[tail + 3] <= disp3_tag;
      end
      if (done_valid) begin
        done[done_slot] <= 1'b1;
        exc[done_slot]  <= done_exc;
      end
    end
  end
endmodule
