// IVM-Memory: load/store queue cluster for the 4-issue IVM core -- a load
// queue, a store queue with age-ordered forwarding, and address-conflict
// checking between them.  The paper reports IVM-Memory as one of the two
// most expensive IVM components (10 person-months) and by far the largest
// in nets and storage.  Verilog-95.

module ivm_lsq_entry_cmp (addr_a, addr_b, valid_a, valid_b, conflict);
  parameter ADDR = 32;

  input  [ADDR-1:0] addr_a;
  input  [ADDR-1:0] addr_b;
  input             valid_a;
  input             valid_b;
  output            conflict;

  assign conflict = valid_a & valid_b & (addr_a[ADDR-1:3] == addr_b[ADDR-1:3]);
endmodule

module ivm_load_queue (clk, rst, flush,
                       alloc, alloc_addr, alloc_tag,
                       complete, complete_slot,
                       snoop_addr, snoop_valid, violation,
                       head_valid, head_addr, head_tag, lq_full);
  parameter DEPTH = 8;
  parameter LOGD  = 3;
  parameter ADDR  = 32;
  parameter TAG   = 7;

  input             clk;
  input             rst;
  input             flush;
  input             alloc;
  input  [ADDR-1:0] alloc_addr;
  input  [TAG-1:0]  alloc_tag;
  input             complete;
  input  [LOGD-1:0] complete_slot;
  input  [ADDR-1:0] snoop_addr;
  input             snoop_valid;
  output            violation;
  output            head_valid;
  output [ADDR-1:0] head_addr;
  output [TAG-1:0]  head_tag;
  output            lq_full;

  reg [LOGD-1:0]  head;
  reg [LOGD-1:0]  tail;
  reg [LOGD:0]    count;
  reg [DEPTH-1:0] done;
  reg [ADDR-1:0]  addrs [0:DEPTH-1];
  reg [TAG-1:0]   tags  [0:DEPTH-1];

  assign lq_full    = (count == DEPTH);
  assign head_valid = (count != 0);
  assign head_addr  = addrs[head];
  assign head_tag   = tags[head];

  // A retiring store that matches a completed younger load is an ordering
  // violation (the load got stale data).
  reg viol;
  integer i;
  always @(snoop_addr or snoop_valid or count or head) begin
    viol = 1'b0;
    for (i = 0; i < DEPTH; i = i + 1) begin
      if ((i < count) && done[head + i]
          && (addrs[head + i][ADDR-1:3] == snoop_addr[ADDR-1:3]))
        viol = snoop_valid;
    end
  end
  assign violation = viol;

  always @(posedge clk) begin
    if (rst | flush) begin
      head  <= 0;
      tail  <= 0;
      count <= 0;
      done  <= 0;
    end else begin
      if (alloc && !lq_full) begin
        addrs[tail] <= alloc_addr;
        tags[tail]  <= alloc_tag;
        done[tail]  <= 1'b0;
        tail        <= tail + 1;
        count       <= count + 1;
      end
      if (complete)
        done[complete_slot] <= 1'b1;
    end
  end
endmodule

module ivm_store_queue (clk, rst, flush,
                        alloc, alloc_addr, alloc_data,
                        retire,
                        fwd_addr, fwd_hit, fwd_data,
                        retire_addr, retire_data, retire_valid, sq_full);
  parameter DEPTH = 8;
  parameter LOGD  = 3;
  parameter ADDR  = 32;
  parameter DATA  = 64;

  input             clk;
  input             rst;
  input             flush;
  input             alloc;
  input  [ADDR-1:0] alloc_addr;
  input  [DATA-1:0] alloc_data;
  input             retire;
  input  [ADDR-1:0] fwd_addr;
  output            fwd_hit;
  output [DATA-1:0] fwd_data;
  output [ADDR-1:0] retire_addr;
  output [DATA-1:0] retire_data;
  output            retire_valid;
  output            sq_full;

  reg [LOGD-1:0] head;
  reg [LOGD-1:0] tail;
  reg [LOGD:0]   count;
  reg [ADDR-1:0] addrs [0:DEPTH-1];
  reg [DATA-1:0] datas [0:DEPTH-1];

  assign sq_full      = (count == DEPTH);
  assign retire_valid = (count != 0);
  assign retire_addr  = addrs[head];
  assign retire_data  = datas[head];

  // Youngest matching store wins the forward.
  reg            hit;
  reg [DATA-1:0] data;
  integer i;
  always @(fwd_addr or head or count) begin
    hit  = 1'b0;
    data = 0;
    for (i = 0; i < DEPTH; i = i + 1) begin
      if ((i < count) && (addrs[head + i] == fwd_addr)) begin
        hit  = 1'b1;
        data = datas[head + i];
      end
    end
  end
  assign fwd_hit  = hit;
  assign fwd_data = data;

  always @(posedge clk) begin
    if (rst | flush) begin
      head  <= 0;
      tail  <= 0;
      count <= 0;
    end else begin
      if (alloc && !sq_full) begin
        addrs[tail] <= alloc_addr;
        datas[tail] <= alloc_data;
        tail        <= tail + 1;
      end
      if (retire && (count != 0))
        head <= head + 1;
      count <= count + {3'b000, (alloc && !sq_full)}
                     - {3'b000, (retire && (count != 0))};
    end
  end
endmodule

module ivm_memory (clk, rst, flush,
                   ld_issue, ld_addr, ld_tag,
                   ld_complete, ld_complete_slot,
                   st_issue, st_addr, st_data,
                   st_retire,
                   dcache_ready, dcache_rdata,
                   dcache_req, dcache_we, dcache_addr, dcache_wdata,
                   ld_result, ld_result_valid,
                   order_violation, lsq_full);
  parameter ADDR = 32;
  parameter DATA = 64;
  parameter TAG  = 7;

  input             clk;
  input             rst;
  input             flush;
  input             ld_issue;
  input  [ADDR-1:0] ld_addr;
  input  [TAG-1:0]  ld_tag;
  input             ld_complete;
  input  [2:0]      ld_complete_slot;
  input             st_issue;
  input  [ADDR-1:0] st_addr;
  input  [DATA-1:0] st_data;
  input             st_retire;
  input             dcache_ready;
  input  [DATA-1:0] dcache_rdata;
  output            dcache_req;
  output            dcache_we;
  output [ADDR-1:0] dcache_addr;
  output [DATA-1:0] dcache_wdata;
  output [DATA-1:0] ld_result;
  output            ld_result_valid;
  output            order_violation;
  output            lsq_full;

  wire lq_full;
  wire sq_full;
  wire lq_head_valid;
  wire [ADDR-1:0] lq_head_addr;
  wire [TAG-1:0]  lq_head_tag;
  wire fwd_hit;
  wire [DATA-1:0] fwd_data;
  wire [ADDR-1:0] sq_retire_addr;
  wire [DATA-1:0] sq_retire_data;
  wire sq_retire_valid;
  wire violation;

  ivm_load_queue #(8, 3, ADDR, TAG) u_lq
    (clk, rst, flush,
     ld_issue, ld_addr, ld_tag,
     ld_complete, ld_complete_slot,
     sq_retire_addr, st_retire & sq_retire_valid, violation,
     lq_head_valid, lq_head_addr, lq_head_tag, lq_full);

  ivm_store_queue #(8, 3, ADDR, DATA) u_sq
    (clk, rst, flush,
     st_issue, st_addr, st_data,
     st_retire,
     ld_addr, fwd_hit, fwd_data,
     sq_retire_addr, sq_retire_data, sq_retire_valid, sq_full);

  wire raw_conflict;
  ivm_lsq_entry_cmp #(ADDR) u_cmp
    (ld_addr, st_addr, ld_issue, st_issue, raw_conflict);

  assign lsq_full = lq_full | sq_full;
  assign order_violation = violation | raw_conflict;

  assign dcache_req   = (ld_issue & !fwd_hit)
                      | (st_retire & sq_retire_valid);
  assign dcache_we    = st_retire & sq_retire_valid;
  assign dcache_addr  = dcache_we ? sq_retire_addr : ld_addr;
  assign dcache_wdata = sq_retire_data;

  reg             ld_valid_q;
  reg [DATA-1:0]  ld_data_q;
  always @(posedge clk) begin
    if (rst | flush) begin
      ld_valid_q <= 1'b0;
    end else begin
      ld_valid_q <= ld_issue & (fwd_hit | dcache_ready);
      ld_data_q  <= fwd_hit ? fwd_data : dcache_rdata;
    end
  end
  assign ld_result       = ld_data_q;
  assign ld_result_valid = ld_valid_q;
endmodule
