// IVM-Fetch: eight-wide instruction fetch with a tournament branch
// predictor (local + gshare + chooser), modeled on the Alpha 21264 front
// end that IVM implements.  Verilog-95: replication is explicit
// instantiation, which is exactly the multiple-instantiation pattern the
// paper's accounting procedure exists to handle (Section 5.3).

module ivm_local_predictor (clk, rst, pc, update, update_pc, taken, predict);
  parameter PC_BITS = 30;
  parameter HIST    = 10;

  input                clk;
  input                rst;
  input  [PC_BITS-1:0] pc;
  input                update;
  input  [PC_BITS-1:0] update_pc;
  input                taken;
  output               predict;

  reg [HIST-1:0] history [0:1023];
  reg [2:0]      counters [0:1023];

  wire [9:0]      rd_index;
  wire [9:0]      wr_index;
  wire [HIST-1:0] rd_hist;
  wire [HIST-1:0] wr_hist;
  wire [2:0]      ctr;
  wire [2:0]      wr_ctr;

  assign rd_index = pc[9:0];
  assign wr_index = update_pc[9:0];
  assign rd_hist  = history[rd_index];
  assign wr_hist  = history[wr_index];
  assign ctr      = counters[rd_hist];
  assign wr_ctr   = counters[wr_hist];
  assign predict  = ctr[2];

  always @(posedge clk) begin
    if (!rst) begin
      if (update) begin
        history[wr_index] <= {wr_hist[HIST-2:0], taken};
        counters[wr_hist] <= taken ? ((wr_ctr == 3'b111) ? 3'b111 : wr_ctr + 1)
                                   : ((wr_ctr == 3'b000) ? 3'b000 : wr_ctr - 1);
      end
    end
  end
endmodule

module ivm_global_predictor (clk, rst, update, taken, predict);
  parameter HIST = 12;

  input       clk;
  input       rst;
  input       update;
  input       taken;
  output      predict;

  reg [HIST-1:0] ghr;
  reg [1:0]      counters [0:4095];

  wire [1:0] ctr;
  assign ctr = counters[ghr];
  assign predict = ctr[1];

  always @(posedge clk) begin
    if (rst) begin
      ghr <= 0;
    end else begin
      if (update) begin
        counters[ghr] <= taken ? ((ctr == 2'b11) ? 2'b11 : ctr + 1)
                               : ((ctr == 2'b00) ? 2'b00 : ctr - 1);
        ghr <= {ghr[HIST-2:0], taken};
      end
    end
  end
endmodule

module ivm_chooser (clk, rst, update, taken, local_was, global_was,
                    local_pred, global_pred, final_pred);
  parameter HIST = 12;

  input  clk;
  input  rst;
  input  update;
  input  taken;
  input  local_was;
  input  global_was;
  input  local_pred;
  input  global_pred;
  output final_pred;

  reg [HIST-1:0] chist;
  reg [1:0]      choice [0:4095];

  wire [1:0] ch;
  wire local_correct;
  wire global_correct;

  assign ch = choice[chist];
  assign final_pred = ch[1] ? global_pred : local_pred;
  assign local_correct  = (local_was == taken);
  assign global_correct = (global_was == taken);

  always @(posedge clk) begin
    if (rst) begin
      chist <= 0;
    end else begin
      if (update) begin
        chist <= {chist[HIST-2:0], taken};
        if (global_correct & !local_correct)
          choice[chist] <= (ch == 2'b11) ? 2'b11 : ch + 1;
        if (local_correct & !global_correct)
          choice[chist] <= (ch == 2'b00) ? 2'b00 : ch - 1;
      end
    end
  end
endmodule

module ivm_fetch_slot (bundle, slot_index, start_index, inst, in_range);
  parameter INST_BITS = 32;
  parameter FETCH     = 8;

  input  [FETCH*INST_BITS-1:0] bundle;
  input  [2:0]                 slot_index;
  input  [2:0]                 start_index;
  output [INST_BITS-1:0]       inst;
  output                       in_range;

  wire [2:0] source;
  assign source = start_index + slot_index;

  reg [INST_BITS-1:0] picked;
  integer i;
  always @(bundle or source) begin
    picked = bundle[INST_BITS-1:0];
    for (i = 1; i < FETCH; i = i + 1) begin
      if (source == i)
        picked = bundle[(i+1)*INST_BITS-1 -: INST_BITS];
    end
  end
  assign inst = picked;
  assign in_range = ({1'b0, start_index} + {1'b0, slot_index}) < FETCH;
endmodule

module ivm_fetch (clk, rst, stall, redirect, redirect_pc,
                  icache_data, icache_ready,
                  br_update, br_update_pc, br_taken,
                  br_local_was, br_global_was,
                  icache_addr, icache_req,
                  insts, insts_valid, fetch_pc, predict_taken);
  parameter PC_BITS   = 30;
  parameter INST_BITS = 32;
  parameter FETCH     = 8;

  input                        clk;
  input                        rst;
  input                        stall;
  input                        redirect;
  input  [PC_BITS-1:0]         redirect_pc;
  input  [FETCH*INST_BITS-1:0] icache_data;
  input                        icache_ready;
  input                        br_update;
  input  [PC_BITS-1:0]         br_update_pc;
  input                        br_taken;
  input                        br_local_was;
  input                        br_global_was;
  output [PC_BITS-1:0]         icache_addr;
  output                       icache_req;
  output [FETCH*INST_BITS-1:0] insts;
  output [FETCH-1:0]           insts_valid;
  output [PC_BITS-1:0]         fetch_pc;
  output                       predict_taken;

  reg [PC_BITS-1:0] pc;

  wire local_pred;
  wire global_pred;

  ivm_local_predictor #(PC_BITS, 10) u_local
    (clk, rst, pc, br_update, br_update_pc, br_taken, local_pred);

  ivm_global_predictor #(12) u_global
    (clk, rst, br_update, br_taken, global_pred);

  ivm_chooser #(12) u_chooser
    (clk, rst, br_update, br_taken, br_local_was, br_global_was,
     local_pred, global_pred, predict_taken);

  // Eight alignment slots, explicitly instantiated (Verilog-95 has no
  // generate construct).
  wire [2:0] start;
  assign start = pc[2:0];

  wire [INST_BITS-1:0] s0, s1, s2, s3, s4, s5, s6, s7;
  wire r0, r1, r2, r3, r4, r5, r6, r7;

  ivm_fetch_slot #(INST_BITS, FETCH) u_slot0
    (icache_data, 3'd0, start, s0, r0);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot1
    (icache_data, 3'd1, start, s1, r1);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot2
    (icache_data, 3'd2, start, s2, r2);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot3
    (icache_data, 3'd3, start, s3, r3);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot4
    (icache_data, 3'd4, start, s4, r4);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot5
    (icache_data, 3'd5, start, s5, r5);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot6
    (icache_data, 3'd6, start, s6, r6);
  ivm_fetch_slot #(INST_BITS, FETCH) u_slot7
    (icache_data, 3'd7, start, s7, r7);

  assign insts = {s7, s6, s5, s4, s3, s2, s1, s0};
  assign insts_valid = {r7, r6, r5, r4, r3, r2, r1, r0}
                     & {FETCH{icache_ready & !redirect}};

  always @(posedge clk) begin
    if (rst) begin
      pc <= 0;
    end else begin
      if (redirect)
        pc <= redirect_pc;
      else if (!stall && icache_ready)
        pc <= pc + FETCH;
    end
  end

  assign icache_addr = pc;
  assign icache_req  = !stall;
  assign fetch_pc    = pc;
endmodule
