// IVM-Rename: register rename for the 4-wide IVM core -- map table, free
// list, and intra-group dependency resolution, with explicitly
// instantiated per-slot bypass checkers.  Verilog-95.

module ivm_rename_map (clk, rst,
                       w0_valid, w0_arch, w0_tag,
                       w1_valid, w1_arch, w1_tag,
                       w2_valid, w2_arch, w2_tag,
                       w3_valid, w3_arch, w3_tag,
                       r0_arch, r0_tag, r1_arch, r1_tag,
                       r2_arch, r2_tag, r3_arch, r3_tag);
  parameter AREGS = 32;
  parameter LOGA  = 5;
  parameter LOGP  = 7;

  input             clk;
  input             rst;
  input             w0_valid;
  input  [LOGA-1:0] w0_arch;
  input  [LOGP-1:0] w0_tag;
  input             w1_valid;
  input  [LOGA-1:0] w1_arch;
  input  [LOGP-1:0] w1_tag;
  input             w2_valid;
  input  [LOGA-1:0] w2_arch;
  input  [LOGP-1:0] w2_tag;
  input             w3_valid;
  input  [LOGA-1:0] w3_arch;
  input  [LOGP-1:0] w3_tag;
  input  [LOGA-1:0] r0_arch;
  output [LOGP-1:0] r0_tag;
  input  [LOGA-1:0] r1_arch;
  output [LOGP-1:0] r1_tag;
  input  [LOGA-1:0] r2_arch;
  output [LOGP-1:0] r2_tag;
  input  [LOGA-1:0] r3_arch;
  output [LOGP-1:0] r3_tag;

  reg [LOGP-1:0] map [0:AREGS-1];

  assign r0_tag = map[r0_arch];
  assign r1_tag = map[r1_arch];
  assign r2_tag = map[r2_arch];
  assign r3_tag = map[r3_arch];

  always @(posedge clk) begin
    if (!rst) begin
      if (w0_valid) map[w0_arch] <= w0_tag;
      if (w1_valid) map[w1_arch] <= w1_tag;
      if (w2_valid) map[w2_arch] <= w2_tag;
      if (w3_valid) map[w3_arch] <= w3_tag;
    end
  end
endmodule

module ivm_rename_freelist (clk, rst, alloc0, alloc1, alloc2, alloc3,
                            free0, free0_tag, free1, free1_tag,
                            tag0, tag1, tag2, tag3, short);
  parameter PREGS = 128;
  parameter LOGP  = 7;

  input             clk;
  input             rst;
  input             alloc0;
  input             alloc1;
  input             alloc2;
  input             alloc3;
  input             free0;
  input  [LOGP-1:0] free0_tag;
  input             free1;
  input  [LOGP-1:0] free1_tag;
  output [LOGP-1:0] tag0;
  output [LOGP-1:0] tag1;
  output [LOGP-1:0] tag2;
  output [LOGP-1:0] tag3;
  output            short;

  reg [LOGP-1:0] head;
  reg [LOGP-1:0] tail;
  reg [LOGP:0]   count;
  reg [LOGP-1:0] pool [0:PREGS-1];

  assign tag0 = pool[head];
  assign tag1 = pool[head + 1];
  assign tag2 = pool[head + 2];
  assign tag3 = pool[head + 3];
  assign short = (count < 4);

  wire [2:0] n_alloc;
  wire [1:0] n_free;
  assign n_alloc = {2'b00, alloc0} + {2'b00, alloc1}
                 + {2'b00, alloc2} + {2'b00, alloc3};
  assign n_free  = {1'b0, free0} + {1'b0, free1};

  always @(posedge clk) begin
    if (rst) begin
      head  <= 0;
      tail  <= 0;
      count <= PREGS;
    end else begin
      head  <= head + {{4{1'b0}}, n_alloc};
      tail  <= tail + {{5{1'b0}}, n_free};
      count <= count + {{6{1'b0}}, n_free} - {{5{1'b0}}, n_alloc};
      if (free0) pool[tail]     <= free0_tag;
      if (free1) pool[tail + 1] <= free1_tag;
    end
  end
endmodule

module ivm_rename_bypass (src_arch, table_tag,
                          old0_valid, old0_arch, old0_tag,
                          old1_valid, old1_arch, old1_tag,
                          old2_valid, old2_arch, old2_tag,
                          out_tag);
  parameter LOGA = 5;
  parameter LOGP = 7;

  input  [LOGA-1:0] src_arch;
  input  [LOGP-1:0] table_tag;
  input             old0_valid;
  input  [LOGA-1:0] old0_arch;
  input  [LOGP-1:0] old0_tag;
  input             old1_valid;
  input  [LOGA-1:0] old1_arch;
  input  [LOGP-1:0] old1_tag;
  input             old2_valid;
  input  [LOGA-1:0] old2_arch;
  input  [LOGP-1:0] old2_tag;
  output [LOGP-1:0] out_tag;

  reg [LOGP-1:0] out_tag;
  always @(src_arch or table_tag
           or old0_valid or old0_arch or old0_tag
           or old1_valid or old1_arch or old1_tag
           or old2_valid or old2_arch or old2_tag) begin
    out_tag = table_tag;
    if (old0_valid && (old0_arch == src_arch)) out_tag = old0_tag;
    if (old1_valid && (old1_arch == src_arch)) out_tag = old1_tag;
    if (old2_valid && (old2_arch == src_arch)) out_tag = old2_tag;
  end
endmodule

module ivm_rename (clk, rst,
                   v0, ra0, rb0, rc0, writes0,
                   v1, ra1, rb1, rc1, writes1,
                   v2, ra2, rb2, rc2, writes2,
                   v3, ra3, rb3, rc3, writes3,
                   retire0, retire0_tag, retire1, retire1_tag,
                   pa0, pb0, pc0_tag,
                   pa1, pb1, pc1_tag,
                   pa2, pb2, pc2_tag,
                   pa3, pb3, pc3_tag,
                   stall);
  parameter LOGA = 5;
  parameter LOGP = 7;

  input             clk;
  input             rst;
  input             v0;
  input  [LOGA-1:0] ra0;
  input  [LOGA-1:0] rb0;
  input  [LOGA-1:0] rc0;
  input             writes0;
  input             v1;
  input  [LOGA-1:0] ra1;
  input  [LOGA-1:0] rb1;
  input  [LOGA-1:0] rc1;
  input             writes1;
  input             v2;
  input  [LOGA-1:0] ra2;
  input  [LOGA-1:0] rb2;
  input  [LOGA-1:0] rc2;
  input             writes2;
  input             v3;
  input  [LOGA-1:0] ra3;
  input  [LOGA-1:0] rb3;
  input  [LOGA-1:0] rc3;
  input             writes3;
  input             retire0;
  input  [LOGP-1:0] retire0_tag;
  input             retire1;
  input  [LOGP-1:0] retire1_tag;
  output [LOGP-1:0] pa0;
  output [LOGP-1:0] pb0;
  output [LOGP-1:0] pc0_tag;
  output [LOGP-1:0] pa1;
  output [LOGP-1:0] pb1;
  output [LOGP-1:0] pc1_tag;
  output [LOGP-1:0] pa2;
  output [LOGP-1:0] pb2;
  output [LOGP-1:0] pc2_tag;
  output [LOGP-1:0] pa3;
  output [LOGP-1:0] pb3;
  output [LOGP-1:0] pc3_tag;
  output            stall;

  wire a0v;
  wire a1v;
  wire a2v;
  wire a3v;
  assign a0v = v0 & writes0;
  assign a1v = v1 & writes1;
  assign a2v = v2 & writes2;
  assign a3v = v3 & writes3;

  wire [LOGP-1:0] t0, t1, t2, t3;
  ivm_rename_freelist #(128, LOGP) u_fl
    (clk, rst, a0v, a1v, a2v, a3v,
     retire0, retire0_tag, retire1, retire1_tag,
     t0, t1, t2, t3, stall);

  // Source lookups: two read ports per slot via two map instances
  // (mirroring the duplicated-RAM structure real rename units use).
  wire [LOGP-1:0] ma0, ma1, ma2, ma3;
  wire [LOGP-1:0] mb0, mb1, mb2, mb3;

  ivm_rename_map #(32, LOGA, LOGP) u_map_a
    (clk, rst,
     a0v, rc0, t0, a1v, rc1, t1, a2v, rc2, t2, a3v, rc3, t3,
     ra0, ma0, ra1, ma1, ra2, ma2, ra3, ma3);

  ivm_rename_map #(32, LOGA, LOGP) u_map_b
    (clk, rst,
     a0v, rc0, t0, a1v, rc1, t1, a2v, rc2, t2, a3v, rc3, t3,
     rb0, mb0, rb1, mb1, rb2, mb2, rb3, mb3);

  assign pa0 = ma0;
  assign pb0 = mb0;

  ivm_rename_bypass #(LOGA, LOGP) u_byp_a1
    (ra1, ma1, a0v, rc0, t0, 1'b0, 5'd0, 7'd0, 1'b0, 5'd0, 7'd0, pa1);
  ivm_rename_bypass #(LOGA, LOGP) u_byp_b1
    (rb1, mb1, a0v, rc0, t0, 1'b0, 5'd0, 7'd0, 1'b0, 5'd0, 7'd0, pb1);
  ivm_rename_bypass #(LOGA, LOGP) u_byp_a2
    (ra2, ma2, a0v, rc0, t0, a1v, rc1, t1, 1'b0, 5'd0, 7'd0, pa2);
  ivm_rename_bypass #(LOGA, LOGP) u_byp_b2
    (rb2, mb2, a0v, rc0, t0, a1v, rc1, t1, 1'b0, 5'd0, 7'd0, pb2);
  ivm_rename_bypass #(LOGA, LOGP) u_byp_a3
    (ra3, ma3, a0v, rc0, t0, a1v, rc1, t1, a2v, rc2, t2, pa3);
  ivm_rename_bypass #(LOGA, LOGP) u_byp_b3
    (rb3, mb3, a0v, rc0, t0, a1v, rc1, t1, a2v, rc2, t2, pb3);

  assign pc0_tag = t0;
  assign pc1_tag = t1;
  assign pc2_tag = t2;
  assign pc3_tag = t3;
endmodule
