// IVM-Decode: Alpha-subset instruction decode.  Eight identical decoder
// slots, explicitly instantiated (Verilog-95).  Decode proper is small --
// the paper reports only 2 person-months and the smallest synthesis
// numbers for this component.

module ivm_decoder_slot (inst, valid, ra, rb, rc, opclass, writes_rc,
                         uses_imm, imm8, illegal);
  parameter INST_BITS = 32;

  input  [INST_BITS-1:0] inst;
  input                  valid;
  output [4:0]           ra;
  output [4:0]           rb;
  output [4:0]           rc;
  output [2:0]           opclass;
  output                 writes_rc;
  output                 uses_imm;
  output [7:0]           imm8;
  output                 illegal;

  reg [2:0] opclass;
  reg       writes_rc;
  reg       illegal;

  wire [5:0] opcode;
  assign opcode = inst[INST_BITS-1:INST_BITS-6];
  assign ra = inst[25:21];
  assign rb = inst[20:16];
  assign rc = inst[4:0];
  assign uses_imm = inst[12];
  assign imm8 = inst[20:13];

  always @(opcode or valid) begin
    opclass   = 3'd0;
    writes_rc = 1'b0;
    illegal   = 1'b0;
    case (opcode)
      6'h10: begin opclass = 3'd0; writes_rc = 1'b1; end // INTA add/sub
      6'h11: begin opclass = 3'd1; writes_rc = 1'b1; end // INTL logic
      6'h12: begin opclass = 3'd2; writes_rc = 1'b1; end // INTS shift
      6'h28: begin opclass = 3'd3; writes_rc = 1'b1; end // LDL
      6'h2C: begin opclass = 3'd4; end                   // STL
      6'h30: begin opclass = 3'd5; end                   // BR
      6'h39: begin opclass = 3'd6; end                   // BEQ
      default: illegal = valid;
    endcase
  end
endmodule

module ivm_decode (clk, rst, stall, insts, insts_valid,
                   ra_bus, rb_bus, rc_bus, opclass_bus, writes_bus,
                   uses_imm_bus, imm_bus, valid_bus, any_illegal);
  parameter INST_BITS = 32;
  parameter FETCH     = 8;

  input                        clk;
  input                        rst;
  input                        stall;
  input  [FETCH*INST_BITS-1:0] insts;
  input  [FETCH-1:0]           insts_valid;
  output [FETCH*5-1:0]         ra_bus;
  output [FETCH*5-1:0]         rb_bus;
  output [FETCH*5-1:0]         rc_bus;
  output [FETCH*3-1:0]         opclass_bus;
  output [FETCH-1:0]           writes_bus;
  output [FETCH-1:0]           uses_imm_bus;
  output [FETCH*8-1:0]         imm_bus;
  output [FETCH-1:0]           valid_bus;
  output                       any_illegal;

  wire [FETCH-1:0] illegal;

  ivm_decoder_slot #(INST_BITS) u_d0
    (insts[INST_BITS-1:0], insts_valid[0],
     ra_bus[4:0], rb_bus[4:0], rc_bus[4:0], opclass_bus[2:0],
     writes_bus[0], uses_imm_bus[0], imm_bus[7:0], illegal[0]);
  ivm_decoder_slot #(INST_BITS) u_d1
    (insts[2*INST_BITS-1:INST_BITS], insts_valid[1],
     ra_bus[9:5], rb_bus[9:5], rc_bus[9:5], opclass_bus[5:3],
     writes_bus[1], uses_imm_bus[1], imm_bus[15:8], illegal[1]);
  ivm_decoder_slot #(INST_BITS) u_d2
    (insts[3*INST_BITS-1:2*INST_BITS], insts_valid[2],
     ra_bus[14:10], rb_bus[14:10], rc_bus[14:10], opclass_bus[8:6],
     writes_bus[2], uses_imm_bus[2], imm_bus[23:16], illegal[2]);
  ivm_decoder_slot #(INST_BITS) u_d3
    (insts[4*INST_BITS-1:3*INST_BITS], insts_valid[3],
     ra_bus[19:15], rb_bus[19:15], rc_bus[19:15], opclass_bus[11:9],
     writes_bus[3], uses_imm_bus[3], imm_bus[31:24], illegal[3]);
  ivm_decoder_slot #(INST_BITS) u_d4
    (insts[5*INST_BITS-1:4*INST_BITS], insts_valid[4],
     ra_bus[24:20], rb_bus[24:20], rc_bus[24:20], opclass_bus[14:12],
     writes_bus[4], uses_imm_bus[4], imm_bus[39:32], illegal[4]);
  ivm_decoder_slot #(INST_BITS) u_d5
    (insts[6*INST_BITS-1:5*INST_BITS], insts_valid[5],
     ra_bus[29:25], rb_bus[29:25], rc_bus[29:25], opclass_bus[17:15],
     writes_bus[5], uses_imm_bus[5], imm_bus[47:40], illegal[5]);
  ivm_decoder_slot #(INST_BITS) u_d6
    (insts[7*INST_BITS-1:6*INST_BITS], insts_valid[6],
     ra_bus[34:30], rb_bus[34:30], rc_bus[34:30], opclass_bus[20:18],
     writes_bus[6], uses_imm_bus[6], imm_bus[55:48], illegal[6]);
  ivm_decoder_slot #(INST_BITS) u_d7
    (insts[8*INST_BITS-1:7*INST_BITS], insts_valid[7],
     ra_bus[39:35], rb_bus[39:35], rc_bus[39:35], opclass_bus[23:21],
     writes_bus[7], uses_imm_bus[7], imm_bus[63:56], illegal[7]);

  reg [FETCH-1:0] valid_q;
  always @(posedge clk) begin
    if (rst) begin
      valid_q <= 0;
    end else begin
      if (!stall)
        valid_q <= insts_valid & ~illegal;
    end
  end
  assign valid_bus = valid_q;
  assign any_illegal = |illegal;
endmodule
