// RAT-Standard: register alias table renaming up to 4 instructions/cycle.
// Compact Verilog-2001 style (ANSI ports, generate regions), mirroring the
// standard RAT design of the paper's evaluation (Section 4.1).

module rat_freelist #(parameter PREGS = 64, LOGP = 6, WIDTH = 4) (
  input                    clk,
  input                    rst,
  input  [WIDTH-1:0]       alloc_valid,
  input  [WIDTH-1:0]       free_valid,
  input  [WIDTH*LOGP-1:0]  free_tags,
  output [WIDTH*LOGP-1:0]  alloc_tags,
  output                   empty
);
  reg  [LOGP-1:0] head;
  reg  [LOGP-1:0] tail;
  reg  [LOGP:0]   count;
  reg  [LOGP-1:0] pool [0:PREGS-1];

  genvar g;
  generate
    for (g = 0; g < WIDTH; g = g + 1) begin : rd
      assign alloc_tags[(g+1)*LOGP-1:g*LOGP] = pool[head + g];
    end
  endgenerate

  assign empty = (count < WIDTH);

  integer i;
  reg [2:0] n_alloc;
  reg [2:0] n_free;
  always @(*) begin
    n_alloc = 3'd0;
    n_free  = 3'd0;
    for (i = 0; i < WIDTH; i = i + 1) begin
      n_alloc = n_alloc + {2'b00, alloc_valid[i]};
      n_free  = n_free  + {2'b00, free_valid[i]};
    end
  end

  always @(posedge clk) begin
    if (rst) begin
      head  <= {LOGP{1'b0}};
      tail  <= {LOGP{1'b0}};
      count <= {1'b1, {LOGP{1'b0}}};
    end else begin
      head  <= head + {{3{1'b0}}, n_alloc};
      tail  <= tail + {{3{1'b0}}, n_free};
      count <= count + {{4{1'b0}}, n_free} - {{4{1'b0}}, n_alloc};
    end
  end

  always @(posedge clk) begin
    for (i = 0; i < WIDTH; i = i + 1) begin
      if (free_valid[i])
        pool[tail + i] <= free_tags[(i+1)*LOGP-1 -: LOGP];
    end
  end
endmodule

module rat_maptable #(parameter AREGS = 32, LOGA = 5, LOGP = 6, WIDTH = 4) (
  input                    clk,
  input                    rst,
  input  [WIDTH*LOGA-1:0]  write_arch,
  input  [WIDTH-1:0]       write_valid,
  input  [WIDTH*LOGP-1:0]  write_tags,
  input  [WIDTH*LOGA-1:0]  read_arch,
  output [WIDTH*LOGP-1:0]  read_tags
);
  reg [LOGP-1:0] map [0:AREGS-1];

  genvar g;
  generate
    for (g = 0; g < WIDTH; g = g + 1) begin : rd
      assign read_tags[(g+1)*LOGP-1:g*LOGP] =
          map[read_arch[(g+1)*LOGA-1 -: LOGA]];
    end
  endgenerate

  integer i;
  always @(posedge clk) begin
    if (!rst) begin
      for (i = 0; i < WIDTH; i = i + 1) begin
        if (write_valid[i])
          map[write_arch[(i+1)*LOGA-1 -: LOGA]] <= write_tags[(i+1)*LOGP-1 -: LOGP];
      end
    end
  end
endmodule

// Intra-group dependency check: a younger instruction's source that matches
// an older instruction's destination must take the older one's new tag.
module rat_bypass #(parameter LOGA = 5, LOGP = 6, OLDER = 3) (
  input  [LOGA-1:0]        src_arch,
  input  [LOGP-1:0]        table_tag,
  input  [OLDER*LOGA-1:0]  older_dests,
  input  [OLDER-1:0]       older_valid,
  input  [OLDER*LOGP-1:0]  older_tags,
  output reg [LOGP-1:0]    src_tag
);
  integer j;
  always @(*) begin
    src_tag = table_tag;
    for (j = 0; j < OLDER; j = j + 1) begin
      if (older_valid[j] &&
          (older_dests[(j+1)*LOGA-1 -: LOGA] == src_arch))
        src_tag = older_tags[(j+1)*LOGP-1 -: LOGP];
    end
  end
endmodule

module rat_standard #(
  parameter WIDTH = 4,
  parameter AREGS = 32,
  parameter LOGA  = 5,
  parameter PREGS = 64,
  parameter LOGP  = 6
) (
  input                    clk,
  input                    rst,
  input  [WIDTH-1:0]       valid,
  input  [WIDTH*LOGA-1:0]  src1_arch,
  input  [WIDTH*LOGA-1:0]  src2_arch,
  input  [WIDTH*LOGA-1:0]  dest_arch,
  input  [WIDTH-1:0]       dest_valid,
  input  [WIDTH-1:0]       commit_valid,
  input  [WIDTH*LOGP-1:0]  commit_tags,
  output [WIDTH*LOGP-1:0]  src1_tag,
  output [WIDTH*LOGP-1:0]  src2_tag,
  output [WIDTH*LOGP-1:0]  dest_tag,
  output                   stall
);
  wire [WIDTH*LOGP-1:0] table_src1;
  wire [WIDTH*LOGP-1:0] table_src2;
  wire [WIDTH*LOGP-1:0] fresh_tags;
  wire [WIDTH-1:0]      alloc_valid = valid & dest_valid;
  wire                  fl_empty;

  rat_freelist #(.PREGS(PREGS), .LOGP(LOGP), .WIDTH(WIDTH)) u_freelist (
    .clk(clk), .rst(rst),
    .alloc_valid(alloc_valid),
    .free_valid(commit_valid),
    .free_tags(commit_tags),
    .alloc_tags(fresh_tags),
    .empty(fl_empty)
  );

  rat_maptable #(.AREGS(AREGS), .LOGA(LOGA), .LOGP(LOGP), .WIDTH(WIDTH)) u_map (
    .clk(clk), .rst(rst),
    .write_arch(dest_arch),
    .write_valid(alloc_valid & {WIDTH{~fl_empty}}),
    .write_tags(fresh_tags),
    .read_arch(src1_arch),
    .read_tags(table_src1)
  );

  rat_maptable #(.AREGS(AREGS), .LOGA(LOGA), .LOGP(LOGP), .WIDTH(WIDTH)) u_map2 (
    .clk(clk), .rst(rst),
    .write_arch(dest_arch),
    .write_valid(alloc_valid & {WIDTH{~fl_empty}}),
    .write_tags(fresh_tags),
    .read_arch(src2_arch),
    .read_tags(table_src2)
  );

  assign dest_tag = fresh_tags;
  assign stall = fl_empty;

  genvar g;
  generate
    for (g = 1; g < WIDTH; g = g + 1) begin : dep
      rat_bypass #(.LOGA(LOGA), .LOGP(LOGP), .OLDER(g)) u_byp1 (
        .src_arch(src1_arch[(g+1)*LOGA-1 -: LOGA]),
        .table_tag(table_src1[(g+1)*LOGP-1 -: LOGP]),
        .older_dests(dest_arch[g*LOGA-1:0]),
        .older_valid(alloc_valid[g-1:0]),
        .older_tags(fresh_tags[g*LOGP-1:0]),
        .src_tag(src1_tag[(g+1)*LOGP-1 -: LOGP])
      );
      rat_bypass #(.LOGA(LOGA), .LOGP(LOGP), .OLDER(g)) u_byp2 (
        .src_arch(src2_arch[(g+1)*LOGA-1 -: LOGA]),
        .table_tag(table_src2[(g+1)*LOGP-1 -: LOGP]),
        .older_dests(dest_arch[g*LOGA-1:0]),
        .older_valid(alloc_valid[g-1:0]),
        .older_tags(fresh_tags[g*LOGP-1:0]),
        .src_tag(src2_tag[(g+1)*LOGP-1 -: LOGP])
      );
    end
  endgenerate
  assign src1_tag[LOGP-1:0] = table_src1[LOGP-1:0];
  assign src2_tag[LOGP-1:0] = table_src2[LOGP-1:0];
endmodule
