// RAT-Sliding: register alias table with sliding register-window support
// (SPARC-style overlapping windows, Section 4.1 of the paper).  Renames up
// to 4 instructions per cycle.  Verilog-2001.
//
// Relative to the standard RAT, each architectural register number is
// first translated through the current window pointer: globals map
// directly, window registers slide by CWP*16 with wraparound.

module rat_window_xlate #(
  parameter LOGA  = 5,   // architectural register index width
  parameter LOGV  = 7,   // virtual (window-translated) index width
  parameter LOGW  = 3    // window pointer width
) (
  input  [LOGA-1:0] arch,
  input  [LOGW-1:0] cwp,
  output [LOGV-1:0] virt
);
  // Registers 0..7 are globals; 8..31 belong to the sliding window.
  wire is_global = (arch < 8);
  wire [LOGV-1:0] offset = {cwp, {(LOGV-LOGW){1'b0}}} >> 1; // 16 regs/window
  wire [LOGV-1:0] widened = {{(LOGV-LOGA){1'b0}}, arch};
  assign virt = is_global ? widened : (widened + offset);
endmodule

module rat_wcheck #(parameter LOGW = 3, DEPTH = 8) (
  input              clk,
  input              rst,
  input              do_save,
  input              do_restore,
  input  [LOGW-1:0]  cwp,
  output reg         overflow,
  output reg         underflow,
  output reg [LOGW-1:0] next_cwp
);
  reg [LOGW:0] saved;
  always @(*) begin
    overflow  = do_save & (saved == DEPTH - 1);
    underflow = do_restore & (saved == 0);
    if (do_save & !overflow)
      next_cwp = cwp + 1;
    else if (do_restore & !underflow)
      next_cwp = cwp - 1;
    else
      next_cwp = cwp;
  end
  always @(posedge clk) begin
    if (rst)
      saved <= {(LOGW+1){1'b0}};
    else if (do_save & !overflow)
      saved <= saved + 1;
    else if (do_restore & !underflow)
      saved <= saved - 1;
  end
endmodule

module rat_sliding_freelist #(parameter PREGS = 64, LOGP = 6, WIDTH = 4) (
  input                    clk,
  input                    rst,
  input  [WIDTH-1:0]       alloc_valid,
  input  [WIDTH-1:0]       free_valid,
  input  [WIDTH*LOGP-1:0]  free_tags,
  output [WIDTH*LOGP-1:0]  alloc_tags,
  output                   empty
);
  reg  [LOGP-1:0] head;
  reg  [LOGP-1:0] tail;
  reg  [LOGP:0]   count;
  reg  [LOGP-1:0] pool [0:PREGS-1];

  genvar g;
  generate
    for (g = 0; g < WIDTH; g = g + 1) begin : rd
      assign alloc_tags[(g+1)*LOGP-1:g*LOGP] = pool[head + g];
    end
  endgenerate

  assign empty = (count < WIDTH);

  integer i;
  reg [2:0] n_alloc;
  reg [2:0] n_free;
  always @(*) begin
    n_alloc = 3'd0;
    n_free  = 3'd0;
    for (i = 0; i < WIDTH; i = i + 1) begin
      n_alloc = n_alloc + {2'b00, alloc_valid[i]};
      n_free  = n_free  + {2'b00, free_valid[i]};
    end
  end

  always @(posedge clk) begin
    if (rst) begin
      head  <= {LOGP{1'b0}};
      tail  <= {LOGP{1'b0}};
      count <= {1'b1, {LOGP{1'b0}}};
    end else begin
      head  <= head + {{3{1'b0}}, n_alloc};
      tail  <= tail + {{3{1'b0}}, n_free};
      count <= count + {{4{1'b0}}, n_free} - {{4{1'b0}}, n_alloc};
    end
  end

  always @(posedge clk) begin
    for (i = 0; i < WIDTH; i = i + 1) begin
      if (free_valid[i])
        pool[tail + i] <= free_tags[(i+1)*LOGP-1 -: LOGP];
    end
  end
endmodule

module rat_sliding_map #(parameter VREGS = 128, LOGV = 7, LOGP = 6, WIDTH = 4) (
  input                    clk,
  input                    rst,
  input  [WIDTH*LOGV-1:0]  write_virt,
  input  [WIDTH-1:0]       write_valid,
  input  [WIDTH*LOGP-1:0]  write_tags,
  input  [WIDTH*LOGV-1:0]  read_virt,
  output [WIDTH*LOGP-1:0]  read_tags
);
  reg [LOGP-1:0] map [0:VREGS-1];

  genvar g;
  generate
    for (g = 0; g < WIDTH; g = g + 1) begin : rd
      assign read_tags[(g+1)*LOGP-1:g*LOGP] =
          map[read_virt[(g+1)*LOGV-1 -: LOGV]];
    end
  endgenerate

  integer i;
  always @(posedge clk) begin
    if (!rst) begin
      for (i = 0; i < WIDTH; i = i + 1) begin
        if (write_valid[i])
          map[write_virt[(i+1)*LOGV-1 -: LOGV]] <= write_tags[(i+1)*LOGP-1 -: LOGP];
      end
    end
  end
endmodule

module rat_sliding_bypass #(parameter LOGV = 7, LOGP = 6, OLDER = 3) (
  input  [LOGV-1:0]        src_virt,
  input  [LOGP-1:0]        table_tag,
  input  [OLDER*LOGV-1:0]  older_dests,
  input  [OLDER-1:0]       older_valid,
  input  [OLDER*LOGP-1:0]  older_tags,
  output reg [LOGP-1:0]    src_tag
);
  integer j;
  always @(*) begin
    src_tag = table_tag;
    for (j = 0; j < OLDER; j = j + 1) begin
      if (older_valid[j] &&
          (older_dests[(j+1)*LOGV-1 -: LOGV] == src_virt))
        src_tag = older_tags[(j+1)*LOGP-1 -: LOGP];
    end
  end
endmodule

module rat_sliding #(
  parameter WIDTH = 4,
  parameter LOGA  = 5,
  parameter VREGS = 128,
  parameter LOGV  = 7,
  parameter PREGS = 64,
  parameter LOGP  = 6,
  parameter LOGW  = 3,
  parameter NWIN  = 8
) (
  input                    clk,
  input                    rst,
  input  [WIDTH-1:0]       valid,
  input  [WIDTH*LOGA-1:0]  src1_arch,
  input  [WIDTH*LOGA-1:0]  src2_arch,
  input  [WIDTH*LOGA-1:0]  dest_arch,
  input  [WIDTH-1:0]       dest_valid,
  input                    do_save,
  input                    do_restore,
  input  [WIDTH-1:0]       commit_valid,
  input  [WIDTH*LOGP-1:0]  commit_tags,
  output [WIDTH*LOGP-1:0]  src1_tag,
  output [WIDTH*LOGP-1:0]  src2_tag,
  output [WIDTH*LOGP-1:0]  dest_tag,
  output                   stall,
  output                   window_trap
);
  reg  [LOGW-1:0] cwp;
  wire [LOGW-1:0] next_cwp;
  wire overflow, underflow;

  rat_wcheck #(.LOGW(LOGW), .DEPTH(NWIN)) u_wcheck (
    .clk(clk), .rst(rst),
    .do_save(do_save), .do_restore(do_restore),
    .cwp(cwp),
    .overflow(overflow), .underflow(underflow),
    .next_cwp(next_cwp)
  );
  assign window_trap = overflow | underflow;

  always @(posedge clk) begin
    if (rst)
      cwp <= {LOGW{1'b0}};
    else
      cwp <= next_cwp;
  end

  wire [WIDTH*LOGV-1:0] src1_virt;
  wire [WIDTH*LOGV-1:0] src2_virt;
  wire [WIDTH*LOGV-1:0] dest_virt;
  genvar g;
  generate
    for (g = 0; g < WIDTH; g = g + 1) begin : xl
      rat_window_xlate #(.LOGA(LOGA), .LOGV(LOGV), .LOGW(LOGW)) u_x1 (
        .arch(src1_arch[(g+1)*LOGA-1 -: LOGA]), .cwp(cwp),
        .virt(src1_virt[(g+1)*LOGV-1 -: LOGV])
      );
      rat_window_xlate #(.LOGA(LOGA), .LOGV(LOGV), .LOGW(LOGW)) u_x2 (
        .arch(src2_arch[(g+1)*LOGA-1 -: LOGA]), .cwp(cwp),
        .virt(src2_virt[(g+1)*LOGV-1 -: LOGV])
      );
      rat_window_xlate #(.LOGA(LOGA), .LOGV(LOGV), .LOGW(LOGW)) u_xd (
        .arch(dest_arch[(g+1)*LOGA-1 -: LOGA]), .cwp(cwp),
        .virt(dest_virt[(g+1)*LOGV-1 -: LOGV])
      );
    end
  endgenerate

  wire [WIDTH*LOGP-1:0] table_src1;
  wire [WIDTH*LOGP-1:0] table_src2;
  wire [WIDTH*LOGP-1:0] fresh_tags;
  wire [WIDTH-1:0]      alloc_valid = valid & dest_valid & {WIDTH{~window_trap}};
  wire                  fl_empty;

  rat_sliding_freelist #(.PREGS(PREGS), .LOGP(LOGP), .WIDTH(WIDTH)) u_freelist (
    .clk(clk), .rst(rst),
    .alloc_valid(alloc_valid),
    .free_valid(commit_valid),
    .free_tags(commit_tags),
    .alloc_tags(fresh_tags),
    .empty(fl_empty)
  );

  rat_sliding_map #(.VREGS(VREGS), .LOGV(LOGV), .LOGP(LOGP), .WIDTH(WIDTH)) u_map1 (
    .clk(clk), .rst(rst),
    .write_virt(dest_virt),
    .write_valid(alloc_valid & {WIDTH{~fl_empty}}),
    .write_tags(fresh_tags),
    .read_virt(src1_virt),
    .read_tags(table_src1)
  );

  rat_sliding_map #(.VREGS(VREGS), .LOGV(LOGV), .LOGP(LOGP), .WIDTH(WIDTH)) u_map2 (
    .clk(clk), .rst(rst),
    .write_virt(dest_virt),
    .write_valid(alloc_valid & {WIDTH{~fl_empty}}),
    .write_tags(fresh_tags),
    .read_virt(src2_virt),
    .read_tags(table_src2)
  );

  assign dest_tag = fresh_tags;
  assign stall = fl_empty;

  generate
    for (g = 1; g < WIDTH; g = g + 1) begin : dep
      rat_sliding_bypass #(.LOGV(LOGV), .LOGP(LOGP), .OLDER(g)) u_byp1 (
        .src_virt(src1_virt[(g+1)*LOGV-1 -: LOGV]),
        .table_tag(table_src1[(g+1)*LOGP-1 -: LOGP]),
        .older_dests(dest_virt[g*LOGV-1:0]),
        .older_valid(alloc_valid[g-1:0]),
        .older_tags(fresh_tags[g*LOGP-1:0]),
        .src_tag(src1_tag[(g+1)*LOGP-1 -: LOGP])
      );
      rat_sliding_bypass #(.LOGV(LOGV), .LOGP(LOGP), .OLDER(g)) u_byp2 (
        .src_virt(src2_virt[(g+1)*LOGV-1 -: LOGV]),
        .table_tag(table_src2[(g+1)*LOGP-1 -: LOGP]),
        .older_dests(dest_virt[g*LOGV-1:0]),
        .older_valid(alloc_valid[g-1:0]),
        .older_tags(fresh_tags[g*LOGP-1:0]),
        .src_tag(src2_tag[(g+1)*LOGP-1 -: LOGP])
      );
    end
  endgenerate
  assign src1_tag[LOGP-1:0] = table_src1[LOGP-1:0];
  assign src2_tag[LOGP-1:0] = table_src2[LOGP-1:0];
endmodule
