"""Loading and measuring the bundled designs."""

from __future__ import annotations

from pathlib import Path

from repro.core.accounting import AccountingPolicy
from repro.core.workflow import ComponentMeasurement, measure_component
from repro.data.dataset import EffortDataset, EffortRecord
from repro.designs.catalog import CATALOG, ComponentSpec, component_specs
from repro.hdl.source import SourceFile

_RTL_ROOT = Path(__file__).parent / "rtl"


def load_sources(spec: ComponentSpec) -> list[SourceFile]:
    """Read a component's RTL files from the package data."""
    return [SourceFile.from_path(_RTL_ROOT / rel) for rel in spec.files]


def measure_catalog(
    policy: AccountingPolicy = AccountingPolicy.recommended(),
    designs: tuple[str, ...] | None = None,
) -> dict[str, ComponentMeasurement]:
    """Measure every bundled component under one accounting policy.

    Returns component label -> measurement, in catalog order.
    """
    out: dict[str, ComponentMeasurement] = {}
    for spec in component_specs():
        if designs is not None and spec.design not in designs:
            continue
        measurement = measure_component(
            load_sources(spec), spec.top, name=spec.label, policy=policy
        )
        out[spec.label] = measurement
    return out


def measured_dataset(
    policy: AccountingPolicy = AccountingPolicy.recommended(),
) -> EffortDataset:
    """The bundled designs as an effort dataset.

    Efforts are the paper's reported person-months (Table 2); metrics are
    *our* measurements of the bundled RTL through the full pipeline.  This
    dataset drives the accounting-procedure ablation (Figure 6) and the
    end-to-end examples.
    """
    measurements = measure_catalog(policy)
    records = []
    for spec in component_specs():
        m = measurements[spec.label]
        records.append(
            EffortRecord(
                team=spec.design,
                component=spec.name,
                effort=spec.effort,
                metrics=dict(m.metrics),
            )
        )
    return EffortDataset(tuple(records))
