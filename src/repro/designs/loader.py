"""Loading and measuring the bundled designs."""

from __future__ import annotations

from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.accounting import AccountingPolicy
from repro.core.workflow import ComponentMeasurement
from repro.data.dataset import EffortDataset, EffortRecord
from repro.designs.catalog import CATALOG, ComponentSpec, component_specs
from repro.hdl.source import SourceFile

if TYPE_CHECKING:
    from repro.cache import SynthesisCache

_RTL_ROOT = Path(__file__).parent / "rtl"


def load_sources(spec: ComponentSpec) -> list[SourceFile]:
    """Read a component's RTL files from the package data."""
    return [SourceFile.from_path(_RTL_ROOT / rel) for rel in spec.files]


def measure_catalog(
    policy: AccountingPolicy = AccountingPolicy.recommended(),
    designs: tuple[str, ...] | None = None,
    jobs: int = 1,
    cache: "SynthesisCache | None" = None,
) -> dict[str, ComponentMeasurement]:
    """Measure every bundled component under one accounting policy.

    Returns component label -> measurement, in catalog order.  ``jobs > 1``
    fans the components out over a process pool; ``cache`` memoizes
    synthesis products so reruns over the unchanged catalog skip that
    stage.  The bundled RTL is trusted, so a failure raises (strict mode)
    either way rather than quarantining.

    Thin wrapper over :meth:`repro.core.engine.Engine.measure_catalog`.
    """
    from repro.core.engine import Engine

    return Engine(cache=cache, jobs=jobs).measure_catalog(
        policy=policy, designs=designs,
    )


def measured_dataset(
    policy: AccountingPolicy = AccountingPolicy.recommended(),
    jobs: int = 1,
    cache: "SynthesisCache | None" = None,
) -> EffortDataset:
    """The bundled designs as an effort dataset.

    Efforts are the paper's reported person-months (Table 2); metrics are
    *our* measurements of the bundled RTL through the full pipeline.  This
    dataset drives the accounting-procedure ablation (Figure 6) and the
    end-to-end examples.
    """
    measurements = measure_catalog(policy, jobs=jobs, cache=cache)
    records = []
    for spec in component_specs():
        m = measurements[spec.label]
        records.append(
            EffortRecord(
                team=spec.design,
                component=spec.name,
                effort=spec.effort,
                metrics=dict(m.metrics),
            )
        )
    return EffortDataset(tuple(records))
