"""Catalog of the bundled designs and their components.

One :class:`ComponentSpec` per Table 2 component.  The ``effort`` field is
the paper's reported person-months (Table 2; RAT rows use the Table 4
values the regression corresponds to), which pairs with our *measured*
metrics to drive the accounting-procedure ablation (Figure 6).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ComponentSpec:
    """One measurable component of a bundled design."""

    design: str
    name: str
    files: tuple[str, ...]  # paths relative to designs/rtl/
    top: str
    effort: float  # reported person-months

    @property
    def label(self) -> str:
        return f"{self.design}-{self.name}"


@dataclass(frozen=True)
class DesignSpec:
    """A bundled design: a team plus its components."""

    name: str
    hdl: str
    components: tuple[ComponentSpec, ...]


CATALOG: dict[str, DesignSpec] = {
    "Leon3": DesignSpec(
        name="Leon3",
        hdl="VHDL-89",
        components=(
            ComponentSpec("Leon3", "Pipeline", ("leon3/pipeline.vhd",),
                          "leon3_pipeline", 24.0),
            ComponentSpec("Leon3", "Cache", ("leon3/cache.vhd",),
                          "leon3_cache", 6.0),
            ComponentSpec("Leon3", "MMU", ("leon3/mmu.vhd",),
                          "leon3_mmu", 6.0),
            ComponentSpec("Leon3", "MemCtrl", ("leon3/memctrl.vhd",),
                          "leon3_memctrl", 6.0),
        ),
    ),
    "PUMA": DesignSpec(
        name="PUMA",
        hdl="Verilog-95",
        components=(
            ComponentSpec("PUMA", "Fetch", ("puma/fetch.v",), "puma_fetch", 3.0),
            ComponentSpec("PUMA", "Decode", ("puma/decode.v",), "puma_decode", 4.0),
            ComponentSpec("PUMA", "ROB", ("puma/rob.v",), "puma_rob", 4.0),
            ComponentSpec("PUMA", "Execute", ("puma/execute.v",),
                          "puma_execute", 12.0),
            ComponentSpec("PUMA", "Memory", ("puma/memory.v",),
                          "puma_memory", 1.0),
        ),
    ),
    "IVM": DesignSpec(
        name="IVM",
        hdl="Verilog-95",
        components=(
            ComponentSpec("IVM", "Fetch", ("ivm/fetch.v",), "ivm_fetch", 10.0),
            ComponentSpec("IVM", "Decode", ("ivm/decode.v",), "ivm_decode", 2.0),
            ComponentSpec("IVM", "Rename", ("ivm/rename.v",), "ivm_rename", 4.0),
            ComponentSpec("IVM", "Issue", ("ivm/issue.v",), "ivm_issue", 4.0),
            ComponentSpec("IVM", "Execute", ("ivm/execute.v",),
                          "ivm_execute", 3.0),
            ComponentSpec("IVM", "Memory", ("ivm/memory.v",), "ivm_memory", 10.0),
            ComponentSpec("IVM", "Retire", ("ivm/retire.v",), "ivm_retire", 5.0),
        ),
    ),
    "RAT": DesignSpec(
        name="RAT",
        hdl="Verilog-2001",
        components=(
            ComponentSpec("RAT", "Standard", ("rat/rat_standard.v",),
                          "rat_standard", 0.6),
            ComponentSpec("RAT", "Sliding", ("rat/rat_sliding.v",),
                          "rat_sliding", 1.0),
        ),
    ),
}


def component_specs() -> list[ComponentSpec]:
    """Every component across every bundled design, catalog order."""
    return [c for design in CATALOG.values() for c in design.components]
