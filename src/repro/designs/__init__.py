"""Bundled processor designs.

Synthetic RTL mirroring the structure, style, and component breakdown of
the four designs the paper evaluates (Section 4.1): the Leon3-like in-order
SPARC-style core (uVHDL), the PUMA-like 2-issue and IVM-like 4-issue
out-of-order cores (verbose Verilog-95 with explicit replication), and the
two RAT rename units (compact Verilog-2001 with generate).

:mod:`repro.designs.catalog` lists every design and component with its
reported effort; :mod:`repro.designs.loader` parses and measures them
through the full uComplexity flow.
"""

from repro.designs.catalog import (
    CATALOG,
    ComponentSpec,
    DesignSpec,
    component_specs,
)
from repro.designs.loader import load_sources, measure_catalog, measured_dataset

__all__ = [
    "CATALOG",
    "ComponentSpec",
    "DesignSpec",
    "component_specs",
    "load_sources",
    "measure_catalog",
    "measured_dataset",
]
