"""Per-iteration optimizer telemetry for the NLME fitters.

The convergence verdicts of :mod:`repro.stats.robust` say *whether* a fit
converged; a :class:`FitTrace` shows *how*: one :class:`FitIteration` row
per optimizer iteration with the objective value (negative log-likelihood
for the likelihood fitters), the finite-difference gradient norm, and the
step length.  Non-convergence reports can then point at trajectories --
"the objective plateaued at iteration 12 with |grad| still 1e-1" -- instead
of bare verdicts.

A trace plugs into ``scipy.optimize.minimize`` through the standard
``callback`` hook (:meth:`FitTrace.watch` builds one per optimizer start),
and mirrors every row into the active tracer as a ``fit_iter`` event so
``--trace`` files carry the full trajectory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.obs import trace as obs_trace


@dataclass(frozen=True)
class FitIteration:
    """One optimizer iteration of one start."""

    fitter: str
    start_index: int        # which optimizer start (multi-start fits)
    iteration: int          # 0-based within the start
    objective: float        # value being minimized (NLL for ML fitters)
    grad_norm: float | None
    step: float | None      # ||theta_k - theta_{k-1}||; None on iteration 0

    @property
    def loglik(self) -> float:
        """The log-likelihood, assuming the objective is an NLL."""
        return -self.objective


class FitTrace:
    """Collects per-iteration rows across every start of one fit.

    Args:
        fitter: name recorded on every row ("exact-ml", "laplace-aghq",
            "fixed-effects").
        objective_is_nll: whether ``-objective`` is a log-likelihood;
            controls the ``loglik`` field of emitted trace events.
        record_gradients: compute a central finite-difference gradient norm
            each iteration (2k extra objective evaluations per iteration).
        emit: mirror rows into the active tracer as ``fit_iter`` events.
        grad_step: finite-difference step for the gradient norm.
    """

    def __init__(
        self,
        fitter: str,
        objective_is_nll: bool = True,
        record_gradients: bool = True,
        emit: bool = True,
        grad_step: float = 1e-6,
    ) -> None:
        self.fitter = fitter
        self.objective_is_nll = objective_is_nll
        self.record_gradients = record_gradients
        self.emit = emit
        self.grad_step = grad_step
        self.rows: list[FitIteration] = []

    def __len__(self) -> int:
        return len(self.rows)

    def starts(self) -> dict[int, list[FitIteration]]:
        """Rows grouped by optimizer start, in iteration order."""
        out: dict[int, list[FitIteration]] = {}
        for row in self.rows:
            out.setdefault(row.start_index, []).append(row)
        return out

    def _grad_norm(
        self, objective: Callable[[np.ndarray], float], theta: np.ndarray
    ) -> float:
        h = self.grad_step
        total = 0.0
        for i in range(theta.shape[0]):
            e = np.zeros_like(theta)
            e[i] = h
            g = (objective(theta + e) - objective(theta - e)) / (2.0 * h)
            total += g * g
        return math.sqrt(total)

    def record(
        self,
        start_index: int,
        iteration: int,
        theta: np.ndarray,
        objective_value: float,
        grad_norm: float | None,
        step: float | None,
    ) -> FitIteration:
        row = FitIteration(
            fitter=self.fitter,
            start_index=start_index,
            iteration=iteration,
            objective=float(objective_value),
            grad_norm=grad_norm,
            step=step,
        )
        self.rows.append(row)
        if self.emit:
            fields: dict = {
                "fitter": row.fitter,
                "start": row.start_index,
                "iter": row.iteration,
                "objective": row.objective,
                "grad_norm": row.grad_norm,
                "step": row.step,
            }
            if self.objective_is_nll:
                fields["loglik"] = row.loglik
            obs_trace.event("fit_iter", **fields)
        return row

    def watch(
        self,
        objective: Callable[[np.ndarray], float],
        start_index: int,
    ) -> Callable[..., None]:
        """A ``scipy.optimize.minimize``-compatible callback for one start.

        Works with solvers that call ``callback(xk)`` (L-BFGS-B,
        Nelder-Mead) and with those passing extra state positionally.
        """
        state: dict = {"prev": None, "iteration": 0}

        def callback(xk: Sequence[float], *_args: object) -> None:
            theta = np.asarray(xk, dtype=float).copy()
            value = float(objective(theta))
            grad_norm = (
                self._grad_norm(objective, theta)
                if self.record_gradients
                else None
            )
            prev = state["prev"]
            step = (
                float(np.linalg.norm(theta - prev)) if prev is not None else None
            )
            self.record(
                start_index=start_index,
                iteration=state["iteration"],
                theta=theta,
                objective_value=value,
                grad_norm=grad_norm,
                step=step,
            )
            state["prev"] = theta
            state["iteration"] += 1

        return callback


def maybe_fit_trace(
    fitter: str,
    explicit: FitTrace | None = None,
    objective_is_nll: bool = True,
    record_gradients: bool = True,
) -> FitTrace | None:
    """The trace a fitter should record into, if any.

    An explicitly passed trace always wins; otherwise a trace is created
    exactly when a tracer is active, so untraced fits pay nothing.
    ``record_gradients=False`` is for fitters whose objective is expensive
    enough (e.g. the quadrature marginal likelihood) that per-iteration
    finite differences would dominate the run.
    """
    if explicit is not None:
        return explicit
    if obs_trace.active() is not None:
        return FitTrace(
            fitter,
            objective_is_nll=objective_is_nll,
            record_gradients=record_gradients,
        )
    return None
