"""Benchmark regression gating: diff BENCH_obs.json against its history.

The benchmark harness (``benchmarks/conftest.py``) appends one history
entry per session to ``BENCH_obs.json``.  This module turns that history
into a gate: the **candidate** (the most recent entry) is compared,
key by key, against a **baseline** built from the earlier entries, and
any breach of the configured tolerance is a *regression* that
``ucomplexity bench-diff`` maps to a nonzero exit code -- the CI hook
that stops a perf regression from merging silently.

Contract (see DESIGN.md section 12):

* **Baseline = per-key median** of the prior history entries.  The
  median absorbs one noisy historical session without manual pruning;
  a key needs at least ``min_history`` prior samples before its
  tolerance gates at all (younger keys report ``skipped`` with the
  reason -- how many samples it has vs how many it needs -- so a thin
  history is visible in the report instead of silently passing).
* **Absolute floors.**  A key may carry ``min_value``: a candidate
  below it is a *regression* regardless of history depth or relative
  tolerance.  This is how hard invariants gate (e.g.
  ``parallel.speedup_jobs4`` must never sink below 1.0 -- parallel
  slower than sequential is a bug, not noise).
* **Direction-aware.**  ``speedup``/``rate``/``fraction``/``coverage``/
  ``completion``/``hit`` keys are higher-is-better; everything else
  (wall seconds, ratios, byte counts) is lower-is-better.  Per-key
  config overrides win over the name heuristic.
* **Relative tolerance** per key (default ``default_rel_tol``): a
  lower-is-better key regresses when ``candidate > baseline * (1 +
  tol)``; higher-is-better when ``candidate < baseline * (1 - tol)``.
* **Noise floor.**  Keys where both candidate and baseline sit below
  ``min_abs`` are ``skipped``: sub-50ms timings flap with machine load
  and should never gate a merge.

Tolerances load from a TOML file (stdlib ``tomllib``)::

    [benchdiff]
    default_rel_tol = 0.5
    min_abs = 0.05
    min_history = 2

    [benchdiff.keys."parallel.speedup_jobs4"]
    rel_tol = 0.30
    direction = "higher"
    min_value = 1.0

Everything here is pure data-in/data-out; the CLI owns I/O and exit
codes (0 = ok, 1 = regression, 2 = unusable input).
"""

from __future__ import annotations

import json
import re
import statistics
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

#: Key-name heuristic for higher-is-better series.
_HIGHER_RE = re.compile(
    r"(speedup|rate|fraction|coverage|completion|hit)", re.IGNORECASE
)


@dataclass(frozen=True)
class KeyRule:
    """Per-key tolerance override from the config file."""

    rel_tol: float | None = None
    direction: str | None = None     # "higher" | "lower"
    min_value: float | None = None   # hard floor: below it => regression


@dataclass(frozen=True)
class DiffConfig:
    """Tolerance policy for one bench-diff run."""

    default_rel_tol: float = 0.5
    min_abs: float = 0.05
    min_history: int = 2
    keys: Mapping[str, KeyRule] = field(default_factory=dict)

    def rel_tol(self, key: str) -> float:
        rule = self.keys.get(key)
        if rule is not None and rule.rel_tol is not None:
            return rule.rel_tol
        return self.default_rel_tol

    def direction(self, key: str) -> str:
        rule = self.keys.get(key)
        if rule is not None and rule.direction in ("higher", "lower"):
            return rule.direction
        return "higher" if _HIGHER_RE.search(key) else "lower"

    def min_value(self, key: str) -> float | None:
        rule = self.keys.get(key)
        return rule.min_value if rule is not None else None


def load_config(path: str | Path | None) -> DiffConfig:
    """Parse a TOML tolerance file; ``None`` yields the defaults.

    Raises ``ValueError`` for unreadable/invalid files -- the CLI maps
    that onto exit code 2 so a broken gate config fails loudly instead
    of silently passing everything.
    """
    if path is None:
        return DiffConfig()
    import tomllib

    try:
        raw = tomllib.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read bench-diff config: {exc}") from exc
    except tomllib.TOMLDecodeError as exc:
        raise ValueError(f"invalid bench-diff config TOML: {exc}") from exc
    section = raw.get("benchdiff", {})
    if not isinstance(section, dict):
        raise ValueError("bench-diff config: [benchdiff] must be a table")
    keys: dict[str, KeyRule] = {}
    for key, rule in (section.get("keys") or {}).items():
        if not isinstance(rule, dict):
            raise ValueError(f"bench-diff config: keys.{key} must be a table")
        direction = rule.get("direction")
        if direction not in (None, "higher", "lower"):
            raise ValueError(
                f"bench-diff config: keys.{key}.direction must be "
                "'higher' or 'lower'"
            )
        rel_tol = rule.get("rel_tol")
        min_value = rule.get("min_value")
        keys[key] = KeyRule(
            rel_tol=None if rel_tol is None else float(rel_tol),
            direction=direction,
            min_value=None if min_value is None else float(min_value),
        )
    cfg = DiffConfig(
        default_rel_tol=float(
            section.get("default_rel_tol", DiffConfig.default_rel_tol)
        ),
        min_abs=float(section.get("min_abs", DiffConfig.min_abs)),
        min_history=int(section.get("min_history", DiffConfig.min_history)),
        keys=keys,
    )
    if cfg.default_rel_tol < 0 or cfg.min_abs < 0 or cfg.min_history < 1:
        raise ValueError(
            "bench-diff config: need default_rel_tol >= 0, min_abs >= 0, "
            "min_history >= 1"
        )
    return cfg


# -- history access ----------------------------------------------------------


def _entry_values(entry: Mapping) -> dict[str, float]:
    """Flatten one history entry's benchmark + series measurements."""
    values: dict[str, float] = {}
    for section in ("benchmarks", "series"):
        for key, value in (entry.get(section) or {}).items():
            if isinstance(value, (int, float)):
                values[str(key)] = float(value)
    return values


def load_bench_obs(path: str | Path) -> dict:
    """Load a BENCH_obs.json file; raises ``ValueError`` if unusable."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read bench history: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid bench history JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(
        data.get("history"), list
    ):
        raise ValueError(
            "bench history has no 'history' section "
            "(run the benchmarks at least once)"
        )
    return data


# -- the diff ----------------------------------------------------------------


@dataclass
class KeyVerdict:
    """The gate's decision for one benchmark/series key."""

    key: str
    status: str                  # "ok" | "regression" | "improved" |
                                 # "skipped"
    candidate: float
    baseline: float | None       # None when no baseline exists yet
    rel_delta: float | None      # signed (candidate-baseline)/|baseline|
    rel_tol: float
    direction: str               # "higher" | "lower"
    samples: int                 # prior history samples behind baseline
    reason: str = ""             # why skipped / why regressed on a floor


@dataclass
class DiffReport:
    """All verdicts of one bench-diff run, candidate timestamp included."""

    timestamp: str
    verdicts: list[KeyVerdict] = field(default_factory=list)

    @property
    def regressions(self) -> list[KeyVerdict]:
        return [v for v in self.verdicts if v.status == "regression"]

    @property
    def ok(self) -> bool:
        return not self.regressions


def diff_history(data: Mapping, config: DiffConfig) -> DiffReport:
    """Gate the most recent history entry against the earlier ones.

    The last ``history`` entry is the candidate; every earlier entry
    contributes its value for a key to that key's baseline median.
    Keys the candidate session did not measure are not gated (a subset
    run only answers for what it ran).
    """
    history: Sequence[Mapping] = data.get("history") or []
    if not history:
        raise ValueError("bench history is empty -- nothing to diff")
    candidate_entry = history[-1]
    candidate = _entry_values(candidate_entry)
    prior: dict[str, list[float]] = {}
    for entry in history[:-1]:
        for key, value in _entry_values(entry).items():
            prior.setdefault(key, []).append(value)

    report = DiffReport(timestamp=str(candidate_entry.get("timestamp", "?")))
    for key in sorted(candidate):
        value = candidate[key]
        samples = prior.get(key, [])
        tol = config.rel_tol(key)
        direction = config.direction(key)
        floor = config.min_value(key)
        if floor is not None and value < floor:
            # Hard floor breach gates even with no history at all.
            report.verdicts.append(
                KeyVerdict(key=key, status="regression", candidate=value,
                           baseline=statistics.median(samples)
                           if samples else None,
                           rel_delta=None, rel_tol=tol,
                           direction=direction, samples=len(samples),
                           reason=f"below hard floor {floor:g}")
            )
            continue
        if len(samples) < config.min_history:
            report.verdicts.append(
                KeyVerdict(key=key, status="skipped", candidate=value,
                           baseline=None, rel_delta=None, rel_tol=tol,
                           direction=direction, samples=len(samples),
                           reason=f"only {len(samples)} prior sample(s) "
                                  f"(need {config.min_history})")
            )
            continue
        baseline = statistics.median(samples)
        reason = ""
        if abs(value) < config.min_abs and abs(baseline) < config.min_abs:
            status, rel_delta = "skipped", None
            reason = f"below noise floor {config.min_abs:g}"
        else:
            denom = abs(baseline) or 1e-12
            rel_delta = (value - baseline) / denom
            worse = rel_delta < -tol if direction == "higher" \
                else rel_delta > tol
            better = rel_delta > tol if direction == "higher" \
                else rel_delta < -tol
            status = (
                "regression" if worse else "improved" if better else "ok"
            )
        report.verdicts.append(
            KeyVerdict(key=key, status=status, candidate=value,
                       baseline=baseline, rel_delta=rel_delta, rel_tol=tol,
                       direction=direction, samples=len(samples),
                       reason=reason)
        )
    return report


def render_report(report: DiffReport, verbose: bool = False) -> str:
    """Human-readable verdict table (regressions always shown first)."""
    order = {"regression": 0, "improved": 1, "ok": 2, "skipped": 3}
    rows = sorted(report.verdicts,
                  key=lambda v: (order.get(v.status, 9), v.key))
    if not verbose:
        rows = [v for v in rows
                if v.status in ("regression", "improved", "skipped")]
    lines = [f"bench-diff @ {report.timestamp}: "
             f"{len(report.verdicts)} keys, "
             f"{len(report.regressions)} regression(s)"]
    for v in rows:
        if v.rel_delta is None:
            base = f" vs {v.baseline:g}" if v.baseline is not None else ""
            detail = f"{v.candidate:g}{base}"
            if v.reason:
                detail += f" ({v.reason})"
        else:
            arrow = "+" if v.rel_delta >= 0 else ""
            detail = (f"{v.candidate:g} vs median {v.baseline:g} "
                      f"({arrow}{v.rel_delta * 100:.1f}%, "
                      f"tol {v.rel_tol * 100:.0f}%, {v.direction}-better)")
            if v.reason:
                detail += f" [{v.reason}]"
        lines.append(f"  {v.status:<10} {v.key:<40} {detail}")
    if not report.verdicts:
        lines.append("  (candidate session recorded no measurements)")
    return "\n".join(lines)
