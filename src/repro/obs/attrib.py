"""Cost attribution over a span forest: rollups, critical path, flamegraph.

This module answers "where did the time go?" for one recorded run.  It
works on the generic JSONL row dicts of a trace (``Tracer.to_rows()`` live
or :func:`repro.obs.trace.read_jsonl` from a ``--trace`` file), so every
query here agrees byte-for-byte whether it runs in-process or offline --
the same property the timings report already has.

Three views, all zero-dependency:

* **Rollups** (:func:`rollup`): per-span-name call count, total (inclusive)
  wall time, and *self* wall time (total minus direct children), plus CPU
  time and error counts.  Summing self time across all names accounts each
  recorded moment exactly once, which is what makes the top-N table of
  ``ucomplexity profile`` trustworthy.
* **Critical path** (:func:`critical_path`): the chain of spans obtained
  by starting at the slowest root and descending into the slowest child at
  every level.  On a parallel run this is the sequence of frames a
  speedup effort has to shorten -- everything off the path is already
  hidden behind it.
* **Flamegraph export** (:func:`flamegraph_lines` /
  :func:`write_flamegraph`): the collapsed-stack format consumed by
  ``flamegraph.pl``, speedscope, and most flame viewers -- one line per
  unique root-to-frame stack, ``name;name;name <self-µs>``.  Worker-
  grafted subtrees (namespaced ids like ``"b0.w3:7"``) fold in exactly
  like local spans because stacks are built from the parent links, not
  from the id encoding.

The wall-clock *breakdown* of a supervised parallel run (utilization,
serialization share, idle) builds on these rows too but lives in
:mod:`repro.obs.timeline`, next to the Gantt and Perfetto exporters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterable, Sequence

SpanId = int | str


def span_rows(rows: Sequence[dict]) -> list[dict]:
    """The finished span rows of a trace (wall time known)."""
    return [
        r for r in rows
        if r.get("type") == "span" and r.get("wall_s") is not None
    ]


def metrics_values(rows: Sequence[dict]) -> dict[str, Any]:
    """The metrics snapshot embedded in the trace (empty dict if absent)."""
    for r in rows:
        if r.get("type") == "metrics":
            return r.get("values") or {}
    return {}


def histogram_sum(rows: Sequence[dict], name: str) -> float:
    """Sum of one histogram's observations from the metrics snapshot."""
    hist = metrics_values(rows).get("histograms", {}).get(name)
    if not hist:
        return 0.0
    return float(hist.get("sum", 0.0))


def counter_value(rows: Sequence[dict], name: str) -> float:
    """One counter's value from the metrics snapshot (0.0 if absent)."""
    return float(metrics_values(rows).get("counters", {}).get(name, 0.0))


# -- rollups -----------------------------------------------------------------


@dataclass
class Rollup:
    """Aggregate cost of every span sharing one name."""

    name: str
    count: int = 0
    total_s: float = 0.0
    self_s: float = 0.0
    cpu_s: float = 0.0
    errors: int = 0


def rollup(rows: Sequence[dict]) -> list[Rollup]:
    """Per-name rollups over the span forest, largest self time first.

    *Total* is inclusive of children; *self* subtracts every direct
    child's wall time (clamped at zero: a grafted worker subtree carries
    worker-local timings, so a child can nominally overrun its parent by
    scheduling noise).  Ties order by name for determinism.
    """
    spans = span_rows(rows)
    child_wall: dict[SpanId, float] = {}
    for r in spans:
        parent = r.get("parent")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + r["wall_s"]
    totals: dict[str, Rollup] = {}
    for r in spans:
        agg = totals.setdefault(r["name"], Rollup(name=r["name"]))
        agg.count += 1
        agg.total_s += r["wall_s"]
        agg.self_s += max(r["wall_s"] - child_wall.get(r["id"], 0.0), 0.0)
        if r.get("cpu_s") is not None:
            agg.cpu_s += r["cpu_s"]
        if r.get("status", "ok") != "ok":
            agg.errors += 1
    return sorted(totals.values(), key=lambda a: (-a.self_s, a.name))


# -- critical path -----------------------------------------------------------


@dataclass
class PathStep:
    """One frame of the critical path."""

    name: str
    span_id: SpanId
    wall_s: float
    self_s: float
    attrs: dict[str, Any] = field(default_factory=dict)


def critical_path(rows: Sequence[dict]) -> list[PathStep]:
    """Slowest root -> slowest child chain, with per-frame self time.

    The returned frames nest: ``frames[i+1]`` is the slowest direct child
    of ``frames[i]``.  Each frame's ``self_s`` is its wall time minus all
    its direct children (not just the one on the path), so the path's
    self times show where the descent actually spends its exclusive time.
    """
    spans = span_rows(rows)
    if not spans:
        return []
    children: dict[SpanId | None, list[dict]] = {}
    for r in spans:
        children.setdefault(r.get("parent"), []).append(r)

    def heaviest(candidates: list[dict]) -> dict:
        return max(candidates, key=lambda r: (r["wall_s"], str(r["id"])))

    path: list[PathStep] = []
    roots = children.get(None)
    if not roots:
        # A partial trace (e.g. filtered rows) may have no true roots;
        # fall back to the spans whose parents are absent from the set.
        ids = {r["id"] for r in spans}
        roots = [r for r in spans if r.get("parent") not in ids]
        if not roots:
            return []
    node = heaviest(roots)
    while node is not None:
        kids = children.get(node["id"], [])
        child_sum = sum(k["wall_s"] for k in kids)
        path.append(
            PathStep(
                name=node["name"],
                span_id=node["id"],
                wall_s=node["wall_s"],
                self_s=max(node["wall_s"] - child_sum, 0.0),
                attrs=dict(node.get("attrs") or {}),
            )
        )
        node = heaviest(kids) if kids else None
    return path


# -- flamegraph export -------------------------------------------------------


def _frame_name(name: str) -> str:
    """A collapsed-stack-safe frame name (';' is the stack separator)."""
    return name.replace(";", ":").replace("\n", " ").strip() or "?"


def flamegraph_lines(rows: Sequence[dict]) -> list[str]:
    """Collapsed-stack lines (``a;b;c <self-µs>``), sorted for determinism.

    Self time is emitted in integer microseconds (the conventional unit
    for wall-clock collapsed stacks); frames whose self time rounds to
    zero are omitted, matching what a sampling profiler would produce.
    Stacks with identical frame sequences (e.g. two ``measure.component``
    spans under the same parent chain) merge by summation.
    """
    spans = span_rows(rows)
    by_id = {r["id"]: r for r in spans}
    child_wall: dict[SpanId, float] = {}
    for r in spans:
        parent = r.get("parent")
        if parent is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + r["wall_s"]

    stacks: dict[str, int] = {}
    for r in spans:
        self_us = round(
            max(r["wall_s"] - child_wall.get(r["id"], 0.0), 0.0) * 1e6
        )
        if self_us <= 0:
            continue
        frames = [_frame_name(r["name"])]
        seen = {r["id"]}
        parent = by_id.get(r.get("parent"))
        while parent is not None and parent["id"] not in seen:
            seen.add(parent["id"])
            frames.append(_frame_name(parent["name"]))
            parent = by_id.get(parent.get("parent"))
        stack = ";".join(reversed(frames))
        stacks[stack] = stacks.get(stack, 0) + self_us
    return [f"{stack} {value}" for stack, value in sorted(stacks.items())]


def write_flamegraph(rows: Sequence[dict], path: str | Path) -> Path:
    """Write the collapsed-stack export of ``rows`` to ``path``."""
    path = Path(path)
    lines = flamegraph_lines(rows)
    path.write_text("\n".join(lines) + ("\n" if lines else ""),
                    encoding="utf-8")
    return path


# -- serialization share -----------------------------------------------------


@dataclass
class SerializationSummary:
    """Measured serialization cost of one run's pool traffic."""

    pickle_s: float            # parent: payload pickling at dispatch
    unpickle_s: float          # parent: result unpickling at join
    worker_unpickle_s: float   # workers: payload unpickling
    payload_bytes: float
    result_bytes: float

    @property
    def total_s(self) -> float:
        """All measured serialization seconds (parent + worker sides).

        The worker-side *result pickle* is the one leg not directly
        measured (it happens after the outcome's telemetry is sealed);
        its cost is bounded by the parent-side unpickle of the same
        bytes, so the total here is a slight undercount, never an
        overcount.
        """
        return self.pickle_s + self.unpickle_s + self.worker_unpickle_s

    @property
    def total_bytes(self) -> float:
        return self.payload_bytes + self.result_bytes


def serialization_summary(rows: Sequence[dict]) -> SerializationSummary:
    """Aggregate the run's pool serialization costs from its metrics."""
    return SerializationSummary(
        pickle_s=histogram_sum(rows, "exec.pickle_s"),
        unpickle_s=histogram_sum(rows, "exec.unpickle_s"),
        worker_unpickle_s=histogram_sum(rows, "exec.worker_unpickle_s"),
        payload_bytes=counter_value(rows, "exec.payload_bytes"),
        result_bytes=counter_value(rows, "exec.result_bytes"),
    )


def filter_spans(
    rows: Iterable[dict], name: str
) -> list[dict]:
    """All finished spans named ``name`` (a convenience for callers)."""
    return [r for r in span_rows(list(rows)) if r["name"] == name]
