"""Zero-dependency tracing: nested spans over the measurement pipeline.

A :class:`Tracer` records a tree of :class:`Span` records -- name, wall and
CPU time, free-form attributes, and the parent span -- for one pipeline run
(a CLI invocation, a benchmark, an example script).  Library code does not
hold a tracer; it calls the module-level :func:`span` context manager (or
the :func:`traced` decorator), which no-ops when no tracer is active, so
instrumentation can stay in hot paths permanently.

Design points:

* **Deterministic structure.**  Span ids are sequential integers assigned
  in start order, so two runs of the same pipeline produce the same span
  tree (ids, names, parents); only the measured durations differ.  Spans
  grafted from pool workers (:meth:`Tracer.graft`) instead carry
  *namespaced* string ids (``"w3:7"`` = worker ``w3``'s local span 7), so
  worker trees can never collide with the parent's ids or each other's.
* **Exception safety.**  A span whose body raises is still closed: it
  records ``status="error"`` plus the exception text, and the exception
  propagates unchanged.  This is what lets the fault-tolerant runtime
  (:mod:`repro.runtime.stages`) attach a span id to every diagnostic.
* **JSONL export.**  ``write_jsonl``/``read_jsonl`` round-trip the trace
  as one JSON object per line (see DESIGN.md, "Observability", for the
  schema); ``render_tree`` gives the human-readable nested view.

The active-tracer slot is process-global and single-threaded, like the
pipeline itself; activate per-thread tracers explicitly if that changes.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from functools import wraps
from pathlib import Path
from typing import Any, Callable, Iterator, TypeVar

F = TypeVar("F", bound=Callable[..., Any])


@dataclass
class Span:
    """One timed, attributed section of a pipeline run."""

    name: str
    span_id: int | str           # str = namespaced worker id ("w3:7")
    parent_id: int | str | None
    start: float                 # seconds since the tracer's epoch (wall)
    attrs: dict[str, Any] = field(default_factory=dict)
    wall_s: float | None = None  # None until the span finishes
    cpu_s: float | None = None
    status: str = "ok"           # "ok" | "error"
    error: str | None = None

    @property
    def finished(self) -> bool:
        return self.wall_s is not None

    def set_attr(self, key: str, value: Any) -> None:
        self.attrs[key] = value

    def to_dict(self) -> dict[str, Any]:
        """The JSONL row for this span."""
        row: dict[str, Any] = {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": round(self.start, 9),
            "wall_s": None if self.wall_s is None else round(self.wall_s, 9),
            "cpu_s": None if self.cpu_s is None else round(self.cpu_s, 9),
            "status": self.status,
        }
        if self.error is not None:
            row["error"] = self.error
        if self.attrs:
            row["attrs"] = self.attrs
        return row


class _NullSpan:
    """Stand-in yielded by :func:`span` when no tracer is active."""

    span_id: int | None = None
    wall_s: float | None = None
    cpu_s: float | None = None
    status: str = "ok"

    def set_attr(self, key: str, value: Any) -> None:  # noqa: ARG002
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """Collects the span tree and telemetry events of one pipeline run."""

    def __init__(self) -> None:
        self._epoch = time.perf_counter()
        self._cpu_epoch = time.process_time()
        self.spans: list[Span] = []     # in start order
        self.events: list[dict] = []    # e.g. per-iteration fit telemetry
        self._stack: list[Span] = []
        self._next_id = 1

    # -- clocks --------------------------------------------------------------

    def _now(self) -> float:
        return time.perf_counter() - self._epoch

    def _cpu_now(self) -> float:
        return time.process_time() - self._cpu_epoch

    @property
    def elapsed_s(self) -> float:
        """Wall seconds since this tracer was created."""
        return self._now()

    def now(self) -> float:
        """The current instant on this tracer's timeline (epoch-relative).

        Callers that time overlapping work themselves (e.g. the supervised
        pool's monitor loop) capture instants with ``now()`` and later
        replay them into :meth:`record_span`, so their spans land on the
        same timeline as stack-managed spans.
        """
        return self._now()

    # -- span lifecycle ------------------------------------------------------

    @property
    def current_span(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    @property
    def current_span_id(self) -> int | str | None:
        return self._stack[-1].span_id if self._stack else None

    def start_span(self, name: str, **attrs: Any) -> Span:
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self.current_span_id,
            start=self._now(),
            attrs={k: v for k, v in attrs.items() if v is not None},
        )
        sp._cpu0 = self._cpu_now()  # type: ignore[attr-defined]
        self._next_id += 1
        self.spans.append(sp)
        self._stack.append(sp)
        return sp

    def end_span(self, sp: Span, exc: BaseException | None = None) -> None:
        sp.wall_s = self._now() - sp.start
        sp.cpu_s = self._cpu_now() - sp._cpu0  # type: ignore[attr-defined]
        if exc is not None:
            sp.status = "error"
            sp.error = f"{type(exc).__name__}: {exc}"
        if self._stack and self._stack[-1] is sp:
            self._stack.pop()

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[Span]:
        """Open a child span of the current span for the ``with`` body."""
        sp = self.start_span(name, **attrs)
        try:
            yield sp
        except BaseException as exc:
            self.end_span(sp, exc)
            raise
        else:
            self.end_span(sp)

    def record_span(
        self,
        name: str,
        start: float,
        wall_s: float,
        *,
        parent_id: int | str | None | Any = ...,
        cpu_s: float | None = None,
        status: str = "ok",
        error: str | None = None,
        **attrs: Any,
    ) -> Span:
        """Append an already-finished span without touching the stack.

        The stack-based :meth:`span` context manager models strictly
        nested sections; work that *overlaps* (several supervised task
        attempts in flight at once) is timed by the caller and recorded
        retroactively here.  ``start`` is epoch-relative (see
        :meth:`now`); ``parent_id`` defaults to the span active at record
        time (pass ``None`` explicitly for a root).  Ids come from the
        same sequential counter as stack spans, so recorded spans stay
        deterministic and collision-free.
        """
        sp = Span(
            name=name,
            span_id=self._next_id,
            parent_id=self.current_span_id if parent_id is ... else parent_id,
            start=start,
            attrs={k: v for k, v in attrs.items() if v is not None},
            wall_s=wall_s,
            cpu_s=cpu_s,
            status=status,
            error=error,
        )
        self._next_id += 1
        self.spans.append(sp)
        return sp

    # -- worker-span grafting ------------------------------------------------

    def graft(
        self,
        spans: list[Span],
        namespace: str,
        parent_id: int | str | None = None,
    ) -> dict[int | str, str]:
        """Adopt a pool worker's span tree under namespaced ids.

        Every worker span id ``n`` becomes ``"<namespace>:<n>"`` (parents
        remapped consistently), so concurrently-joined worker trees never
        collide with each other or with this tracer's sequential integer
        ids.  Worker roots are re-parented under ``parent_id`` (default:
        the span active right now, i.e. the join point), and every grafted
        span is stamped with a ``worker`` attribute.  ``start`` offsets
        stay relative to the *worker's* epoch -- grafted spans carry
        worker-local timings, not a position on the parent timeline.

        Returns the old-id -> new-id mapping so callers can remap other
        references (e.g. ``Diagnostic.span_id``).
        """
        if parent_id is None:
            parent_id = self.current_span_id
        mapping: dict[int | str, str] = {}
        for sp in spans:
            mapping[sp.span_id] = f"{namespace}:{sp.span_id}"
        for sp in spans:
            sp.span_id = mapping[sp.span_id]
            if sp.parent_id is None:
                sp.parent_id = parent_id
            else:
                sp.parent_id = mapping.get(sp.parent_id, parent_id)
            sp.attrs.setdefault("worker", namespace)
            self.spans.append(sp)
        return mapping

    # -- events --------------------------------------------------------------

    def event(self, type_: str, **fields: Any) -> None:
        """Record a telemetry row attached to the current span."""
        self.events.append({"type": type_, "span": self.current_span_id, **fields})

    # -- queries -------------------------------------------------------------

    def slowest(self, n: int = 5) -> list[Span]:
        """The ``n`` slowest finished spans, slowest first (stable order)."""
        done = [sp for sp in self.spans if sp.finished]
        return sorted(done, key=lambda sp: -sp.wall_s)[:n]  # type: ignore[operator]

    def roots(self) -> list[Span]:
        return [sp for sp in self.spans if sp.parent_id is None]

    def render_tree(self) -> str:
        """Indented span tree with wall/CPU durations."""
        children: dict[int | str | None, list[Span]] = {}
        for sp in self.spans:
            children.setdefault(sp.parent_id, []).append(sp)
        lines: list[str] = []

        def walk(sp: Span, depth: int) -> None:
            wall = "..." if sp.wall_s is None else f"{sp.wall_s * 1e3:.2f}ms"
            mark = "" if sp.status == "ok" else f"  !{sp.error}"
            attrs = (
                " [" + ", ".join(f"{k}={v}" for k, v in sorted(sp.attrs.items())) + "]"
                if sp.attrs
                else ""
            )
            lines.append(f"{'  ' * depth}{sp.name}{attrs}  {wall}{mark}")
            for child in children.get(sp.span_id, ()):
                walk(child, depth + 1)

        for root in children.get(None, ()):
            walk(root, 0)
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------

    def to_rows(self, metrics: dict | None = None) -> list[dict]:
        """All trace rows (spans, events, optional metrics + summary)."""
        rows: list[dict] = [sp.to_dict() for sp in self.spans]
        rows.extend(self.events)
        if metrics is not None:
            rows.append({"type": "metrics", "values": metrics})
        rows.append(
            {
                "type": "trace",
                "elapsed_s": round(self.elapsed_s, 9),
                "spans": len(self.spans),
                "events": len(self.events),
            }
        )
        return rows

    def write_jsonl(self, path: str | Path, metrics: dict | None = None) -> Path:
        path = Path(path)
        lines = [json.dumps(row, sort_keys=True) for row in self.to_rows(metrics)]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path


def read_jsonl(path: str | Path) -> list[dict]:
    """Load trace rows written by :meth:`Tracer.write_jsonl`."""
    rows: list[dict] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if line.strip():
            rows.append(json.loads(line))
    return rows


# -- the process-global active tracer ----------------------------------------

_ACTIVE: Tracer | None = None


def activate(tracer: Tracer) -> Tracer:
    """Install ``tracer`` as the process-global active tracer."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def deactivate() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Tracer | None:
    return _ACTIVE


@contextmanager
def using(tracer: Tracer) -> Iterator[Tracer]:
    """Activate ``tracer`` for the ``with`` body, restoring the previous one."""
    global _ACTIVE
    prev = _ACTIVE
    _ACTIVE = tracer
    try:
        yield tracer
    finally:
        _ACTIVE = prev


@contextmanager
def span(name: str, **attrs: Any) -> Iterator[Span | _NullSpan]:
    """A span on the active tracer; a no-op :data:`NULL_SPAN` without one."""
    tracer = _ACTIVE
    if tracer is None:
        yield NULL_SPAN
        return
    with tracer.span(name, **attrs) as sp:
        yield sp


def event(type_: str, **fields: Any) -> None:
    """Record an event on the active tracer, if any."""
    if _ACTIVE is not None:
        _ACTIVE.event(type_, **fields)


def current_span_id() -> int | str | None:
    """The active tracer's current span id (None when untraced)."""
    return _ACTIVE.current_span_id if _ACTIVE is not None else None


def traced(name: str | None = None, **attrs: Any) -> Callable[[F], F]:
    """Decorator form of :func:`span` (span name defaults to the qualname)."""

    def deco(fn: F) -> F:
        label = name or fn.__qualname__

        @wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            with span(label, **attrs):
                return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return deco
