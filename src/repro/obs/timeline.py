"""Worker timelines: lanes, utilization, wall-clock breakdown, Perfetto.

Where :mod:`repro.obs.attrib` answers "which code is slow?", this module
answers "what were the workers *doing*?" for one supervised parallel run
(:mod:`repro.exec`).  It consumes the same trace rows and builds:

* **Lanes** (:func:`lanes`): each worker id (``w0``, ``w1``, ...) becomes
  one lane holding its ``exec.task`` attempt windows -- a Gantt chart in
  data form, rendered as ASCII by :func:`gantt_lines`.  A respawned
  worker takes over its dead predecessor's lane id (the supervisor's
  lane pool), so kills do not proliferate lanes or dilute per-lane
  utilization; the lane label carries the takeover count (``w1(+2)``),
  read from the ``respawn`` attribute of ``exec.spawn`` spans.
* **Breakdown** (:func:`breakdown`): the run's wall-clock *capacity*
  (supervised wall time x jobs) split into compute, serialization,
  transfer overhead, spawn, and idle -- categories that sum to capacity
  by construction, so the profile always accounts for 100% of the
  wall-clock and honestly shows where the parallel speedup went.
* **Chrome trace export** (:func:`chrome_trace` /
  :func:`write_chrome_trace`): the Trace Event JSON loadable by Perfetto
  (https://ui.perfetto.dev) and ``chrome://tracing`` -- the main process's
  span stack on one track, each worker's attempts on its own track, and
  the worker-grafted span subtrees rebased into their attempt windows so
  worker-side stages line up with the dispatch that caused them.

Accounting model (see DESIGN.md section 12):

``capacity = supervised wall x jobs`` is the total worker-seconds the
pool could have used.  Each ``exec.task`` attempt window (dispatch ->
result processed) contributes to its lane's *busy* time; inside busy,
the worker-reported compute and unpickle times are carved out and the
remainder is *transfer overhead* (pipe latency, result pickling in the
worker, monitor poll delay).  ``exec.spawn`` windows are counted
separately; whatever capacity remains is *idle* (workers waiting for
work -- the signature of a serial bottleneck in the parent).  Parent-side
pickle/unpickle happens on the monitor thread, outside any lane, and is
reported as part of the serialization share rather than double-counted
against capacity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.obs import attrib


# -- run + attempt extraction ------------------------------------------------


def run_span(rows: Sequence[dict]) -> dict | None:
    """The heaviest ``exec.supervised`` span (the run being profiled)."""
    runs = attrib.filter_spans(rows, "exec.supervised")
    if not runs:
        return None
    return max(runs, key=lambda r: r["wall_s"])


@dataclass
class Attempt:
    """One ``exec.task`` attempt window on a worker lane."""

    span_id: int | str
    task: str
    index: int
    wid: str
    start: float
    wall_s: float
    outcome: str                 # "ok" | "exc" | "kill"
    attempt: int = 1
    ns: str | None = None
    queue_wait_s: float = 0.0
    pickle_s: float = 0.0
    unpickle_s: float = 0.0
    payload_bytes: float = 0.0
    result_bytes: float = 0.0

    @property
    def end(self) -> float:
        return self.start + self.wall_s


def attempts(rows: Sequence[dict]) -> list[Attempt]:
    """Every ``exec.task`` attempt in the trace, in start order."""
    out: list[Attempt] = []
    for r in attrib.filter_spans(rows, "exec.task"):
        a = r.get("attrs") or {}
        out.append(
            Attempt(
                span_id=r["id"],
                task=str(a.get("task", "?")),
                index=int(a.get("index", -1)),
                wid=str(a.get("wid", "?")),
                start=r["start"],
                wall_s=r["wall_s"],
                outcome=str(a.get("outcome", "ok")),
                attempt=int(a.get("attempt", 1)),
                ns=a.get("ns"),
                queue_wait_s=float(a.get("queue_wait_s", 0.0)),
                pickle_s=float(a.get("pickle_s", 0.0)),
                unpickle_s=float(a.get("unpickle_s", 0.0)),
                payload_bytes=float(a.get("payload_bytes", 0.0)),
                result_bytes=float(a.get("result_bytes", 0.0)),
            )
        )
    out.sort(key=lambda at: (at.start, str(at.span_id)))
    return out


# -- lanes + utilization -----------------------------------------------------


def _wid_key(wid: str) -> tuple:
    """Sort ``w10`` after ``w9`` (numeric suffix first, lexical fallback)."""
    if wid.startswith("w") and wid[1:].isdigit():
        return (0, int(wid[1:]), wid)
    return (1, 0, wid)


@dataclass
class Lane:
    """One worker's timeline: its attempt windows and busy total."""

    wid: str
    attempts: list[Attempt] = field(default_factory=list)
    #: How many times a respawned worker took this lane over (0 = the
    #: original worker survived the whole run).
    respawns: int = 0

    @property
    def label(self) -> str:
        """Display label: the lane id plus its takeover count, if any."""
        return f"{self.wid}(+{self.respawns})" if self.respawns else self.wid

    @property
    def busy_s(self) -> float:
        return sum(at.wall_s for at in self.attempts)

    def utilization(self, wall_s: float) -> float:
        """Fraction of the run this lane spent inside attempt windows."""
        return self.busy_s / wall_s if wall_s > 0 else 0.0


def lanes(rows: Sequence[dict]) -> list[Lane]:
    """Worker lanes in ``w0, w1, ...`` order (``inline`` sorts last)."""
    by_wid: dict[str, Lane] = {}
    for at in attempts(rows):
        by_wid.setdefault(at.wid, Lane(wid=at.wid)).attempts.append(at)
    for r in attrib.filter_spans(rows, "exec.spawn"):
        a = r.get("attrs") or {}
        wid = str(a.get("wid", "?"))
        if wid in by_wid:
            by_wid[wid].respawns = max(
                by_wid[wid].respawns, int(a.get("respawn", 0) or 0)
            )
    return [by_wid[w] for w in sorted(by_wid, key=_wid_key)]


def gantt_lines(rows: Sequence[dict], width: int = 60) -> list[str]:
    """ASCII Gantt: one line per lane, ``#`` busy / ``x`` failed / ``.`` idle.

    The horizontal axis spans the supervised run window (or the full
    attempt envelope when no ``exec.supervised`` span is present, e.g. a
    filtered trace).
    """
    lns = lanes(rows)
    if not lns:
        return []
    run = run_span(rows)
    if run is not None:
        t0, t1 = run["start"], run["start"] + run["wall_s"]
    else:
        t0 = min(at.start for ln in lns for at in ln.attempts)
        t1 = max(at.end for ln in lns for at in ln.attempts)
    scale = (t1 - t0) or 1e-9
    name_w = max(len(ln.label) for ln in lns)
    out: list[str] = []
    for ln in lns:
        cells = ["."] * width
        for at in ln.attempts:
            lo = int((at.start - t0) / scale * width)
            hi = int((at.end - t0) / scale * width)
            lo = min(max(lo, 0), width - 1)
            hi = min(max(hi, lo + 1), width)
            mark = "#" if at.outcome == "ok" else "x"
            for i in range(lo, hi):
                # A failed attempt overprints: errors must stay visible
                # even when a later retry shares the same cell.
                cells[i] = mark if cells[i] != "x" else "x"
        util = ln.utilization(t1 - t0)
        out.append(
            f"{ln.label:<{name_w}} |{''.join(cells)}| "
            f"{util * 100:5.1f}%  {len(ln.attempts)} attempts"
        )
    return out


# -- wall-clock breakdown ----------------------------------------------------


@dataclass
class Breakdown:
    """Where one supervised run's worker-seconds went (sums to capacity)."""

    wall_s: float                # supervised run wall time
    jobs: int
    compute_s: float             # worker-reported task compute
    serialization_s: float       # in-lane: worker payload unpickling
    overhead_s: float            # in-lane residual: transfer, result
                                 # pickling, monitor poll latency
    spawn_s: float               # worker process startup
    idle_s: float                # capacity never used (workers starved)
    parent_serialization_s: float  # monitor-thread pickle + unpickle
                                   # (off-lane; part of the serialization
                                   # share, not of capacity)
    lanes: list[Lane] = field(default_factory=list)

    @property
    def capacity_s(self) -> float:
        return self.wall_s * self.jobs

    @property
    def busy_s(self) -> float:
        return self.compute_s + self.serialization_s + self.overhead_s

    @property
    def utilization(self) -> float:
        """Busy worker-seconds over capacity (the pool-wide average)."""
        return self.busy_s / self.capacity_s if self.capacity_s > 0 else 0.0

    @property
    def serialization_share(self) -> float:
        """All measured serialization seconds over capacity."""
        if self.capacity_s <= 0:
            return 0.0
        return (
            self.serialization_s + self.parent_serialization_s
        ) / self.capacity_s

    def fractions(self) -> dict[str, float]:
        """Category -> fraction of capacity; values sum to ~1.0."""
        cap = self.capacity_s
        if cap <= 0:
            return {}
        return {
            "compute": self.compute_s / cap,
            "serialization": self.serialization_s / cap,
            "overhead": self.overhead_s / cap,
            "spawn": self.spawn_s / cap,
            "idle": self.idle_s / cap,
        }


def breakdown(rows: Sequence[dict]) -> Breakdown | None:
    """The capacity breakdown of the trace's supervised run (None if no
    ``exec.supervised`` span was recorded, e.g. a sequential run)."""
    run = run_span(rows)
    if run is None:
        return None
    jobs = int((run.get("attrs") or {}).get("jobs", 1)) or 1
    wall = run["wall_s"]
    lns = lanes(rows)
    busy = sum(ln.busy_s for ln in lns)
    spawn = sum(
        r["wall_s"] for r in attrib.filter_spans(rows, "exec.spawn")
    )
    compute = attrib.histogram_sum(rows, "exec.worker_compute_s")
    worker_unpickle = attrib.histogram_sum(rows, "exec.worker_unpickle_s")
    # Carve the worker-reported costs out of the lane-busy total; clamp
    # each stage so rounding or a lost worker report can never produce a
    # negative category.
    compute = min(compute, busy)
    serialization = min(worker_unpickle, max(busy - compute, 0.0))
    overhead = max(busy - compute - serialization, 0.0)
    idle = max(wall * jobs - busy - spawn, 0.0)
    parent_serial = (
        attrib.histogram_sum(rows, "exec.pickle_s")
        + attrib.histogram_sum(rows, "exec.unpickle_s")
    )
    return Breakdown(
        wall_s=wall,
        jobs=jobs,
        compute_s=compute,
        serialization_s=serialization,
        overhead_s=overhead,
        spawn_s=spawn,
        idle_s=idle,
        parent_serialization_s=parent_serial,
        lanes=lns,
    )


# -- Chrome trace-event export (Perfetto) ------------------------------------

#: tid of the main process's span stack in the exported trace.
MAIN_TID = 0


def _grafted_offset(
    group: list[dict], attempt: Attempt
) -> float:
    """Shift (seconds) mapping a grafted subtree onto the parent timeline.

    Grafted worker spans keep their *worker-local* epoch (the worker's
    task wrapper starts its own tracer), so they must be rebased before
    they can share a timeline with the parent's spans.  The worker's
    span tree finishes just before the result ships back, so the subtree
    is aligned to end at the attempt window's end; the alignment is then
    clamped so no grafted span starts before its attempt was dispatched.
    """
    root_end = max(r["start"] + r["wall_s"] for r in group)
    offset = attempt.end - root_end
    first_start = min(r["start"] for r in group)
    if first_start + offset < attempt.start:
        offset = attempt.start - first_start
    return offset


def chrome_trace(rows: Sequence[dict]) -> dict:
    """The Trace Event JSON object for ``rows`` (Perfetto-loadable).

    Track layout: tid 0 is the main process's span stack; each worker
    lane gets its own tid (``exec.task`` attempt windows plus that
    worker's rebased grafted spans); spawn windows render on their
    worker's track.  All complete events use phase ``"X"`` with
    microsecond timestamps, per the Trace Event format spec.
    """
    spans = attrib.span_rows(rows)
    atts = attempts(rows)
    lane_tids: dict[str, int] = {}
    for i, ln in enumerate(lanes(rows)):
        lane_tids[ln.wid] = i + 1

    # Grafted subtrees join their ok-attempt window via the telemetry
    # namespace: graft stamps every worker span with ``worker=<ns>`` and
    # the supervisor stamps the attempt with ``ns=<ns>``.
    ok_by_ns = {
        at.ns: at for at in atts if at.outcome == "ok" and at.ns is not None
    }
    grafted: dict[str, list[dict]] = {}
    for r in spans:
        worker_ns = (r.get("attrs") or {}).get("worker")
        if worker_ns is not None:
            grafted.setdefault(str(worker_ns), []).append(r)
    rebase: dict[str, tuple[float, int]] = {}   # ns -> (offset, tid)
    next_tid = len(lane_tids) + 1
    for ns, group in grafted.items():
        at = ok_by_ns.get(ns)
        if at is not None:
            rebase[ns] = (_grafted_offset(group, at), lane_tids[at.wid])
        else:
            # No surviving attempt to anchor to (quarantined task, or a
            # trace filtered down): give the subtree its own track at
            # its local times rather than dropping it.
            rebase[ns] = (0.0, next_tid)
            next_tid += 1

    events: list[dict] = []

    def meta(tid: int, name: str, sort_index: int) -> None:
        events.append({"ph": "M", "pid": 1, "tid": tid,
                       "name": "thread_name", "args": {"name": name}})
        events.append({"ph": "M", "pid": 1, "tid": tid,
                       "name": "thread_sort_index",
                       "args": {"sort_index": sort_index}})

    events.append({"ph": "M", "pid": 1, "tid": MAIN_TID,
                   "name": "process_name", "args": {"name": "ucomplexity"}})
    meta(MAIN_TID, "main", 0)
    for wid, tid in sorted(lane_tids.items(), key=lambda kv: kv[1]):
        meta(tid, f"worker {wid}", tid)
    for ns, (_, tid) in sorted(rebase.items()):
        if tid > len(lane_tids):
            meta(tid, f"unanchored {ns}", tid)

    def complete(name: str, start_s: float, wall_s: float, tid: int,
                 args: dict | None = None) -> None:
        ev: dict[str, Any] = {
            "ph": "X",
            "pid": 1,
            "tid": tid,
            "name": name,
            "ts": round(start_s * 1e6, 3),
            "dur": round(wall_s * 1e6, 3),
        }
        if args:
            ev["args"] = args
        events.append(ev)

    spawn_tid: dict[str, int] = {}
    for r in attrib.filter_spans(rows, "exec.spawn"):
        wid = str((r.get("attrs") or {}).get("wid", "?"))
        spawn_tid[wid] = lane_tids.get(wid, MAIN_TID)

    for r in spans:
        a = r.get("attrs") or {}
        if "worker" in a:
            offset, tid = rebase[str(a["worker"])]
            complete(r["name"], r["start"] + offset, r["wall_s"], tid,
                     args=dict(a))
        elif r["name"] == "exec.task":
            tid = lane_tids.get(str(a.get("wid", "?")), MAIN_TID)
            complete(
                f"task {a.get('task', '?')}", r["start"], r["wall_s"], tid,
                args=dict(a),
            )
        elif r["name"] == "exec.spawn":
            tid = spawn_tid.get(str(a.get("wid", "?")), MAIN_TID)
            complete("spawn", r["start"], r["wall_s"], tid, args=dict(a))
        else:
            complete(r["name"], r["start"], r["wall_s"], MAIN_TID,
                     args=dict(a) if a else None)

    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(rows: Sequence[dict], path: str | Path) -> Path:
    """Write the Trace Event JSON for ``rows`` to ``path``."""
    path = Path(path)
    path.write_text(json.dumps(chrome_trace(rows), sort_keys=True),
                    encoding="utf-8")
    return path
