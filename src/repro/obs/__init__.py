"""Observability layer: tracing, metrics, and fit telemetry.

Zero-dependency instrumentation threaded through the whole
measure -> fit -> report pipeline (see DESIGN.md, "Observability"):

* :mod:`repro.obs.trace` -- nested :class:`Span` trees with wall/CPU time,
  JSONL export, and a no-op module API (:func:`span`, :func:`traced`) that
  library code can call unconditionally.
* :mod:`repro.obs.metrics` -- a process-local :class:`MetricsRegistry` of
  counters/gauges/histograms (files parsed, optimizer iterations,
  fallback activations, ...).
* :mod:`repro.obs.fittrace` -- per-iteration optimizer telemetry
  (objective / gradient norm / step) for the NLME fitters.
* :mod:`repro.obs.report` -- :class:`RunReport` bundling + the timings
  rendering behind ``--profile`` and ``ucomplexity timings``.
"""

from repro.obs.fittrace import FitIteration, FitTrace, maybe_fit_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import registry as metrics_registry
from repro.obs.metrics import reset as reset_metrics
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.report import RunReport, render_timings_rows
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    active,
    current_span_id,
    deactivate,
    event,
    read_jsonl,
    span,
    traced,
    using,
)

__all__ = [
    "Counter",
    "FitIteration",
    "FitTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "RunReport",
    "Span",
    "Tracer",
    "activate",
    "active",
    "current_span_id",
    "deactivate",
    "event",
    "maybe_fit_trace",
    "metrics_registry",
    "metrics_snapshot",
    "read_jsonl",
    "render_timings_rows",
    "reset_metrics",
    "span",
    "traced",
    "using",
]
