"""Observability layer: tracing, metrics, and fit telemetry.

Zero-dependency instrumentation threaded through the whole
measure -> fit -> report pipeline (see DESIGN.md, "Observability"):

* :mod:`repro.obs.trace` -- nested :class:`Span` trees with wall/CPU time,
  JSONL export, and a no-op module API (:func:`span`, :func:`traced`) that
  library code can call unconditionally.
* :mod:`repro.obs.metrics` -- a process-local :class:`MetricsRegistry` of
  counters/gauges/histograms (files parsed, optimizer iterations,
  fallback activations, ...).
* :mod:`repro.obs.fittrace` -- per-iteration optimizer telemetry
  (objective / gradient norm / step) for the NLME fitters.
* :mod:`repro.obs.report` -- :class:`RunReport` bundling + the timings
  rendering behind ``--profile`` and ``ucomplexity timings``.
* :mod:`repro.obs.attrib` -- cost attribution over a recorded trace:
  per-name rollups, critical path, collapsed-stack flamegraph export.
* :mod:`repro.obs.timeline` -- worker lanes/utilization, the wall-clock
  capacity breakdown, and the Chrome trace-event (Perfetto) export.
* :mod:`repro.obs.benchdiff` -- BENCH_obs.json history diffing behind the
  ``ucomplexity bench-diff`` regression gate.
"""

from repro.obs.attrib import (
    Rollup,
    critical_path,
    flamegraph_lines,
    rollup,
    serialization_summary,
    write_flamegraph,
)
from repro.obs.benchdiff import DiffConfig, diff_history, load_config
from repro.obs.fittrace import FitIteration, FitTrace, maybe_fit_trace
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.metrics import registry as metrics_registry
from repro.obs.metrics import reset as reset_metrics
from repro.obs.metrics import snapshot as metrics_snapshot
from repro.obs.report import RunReport, render_timings_rows
from repro.obs.timeline import (
    Breakdown,
    breakdown,
    chrome_trace,
    gantt_lines,
    lanes,
    write_chrome_trace,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    activate,
    active,
    current_span_id,
    deactivate,
    event,
    read_jsonl,
    span,
    traced,
    using,
)

__all__ = [
    "Breakdown",
    "Counter",
    "DiffConfig",
    "FitIteration",
    "FitTrace",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Rollup",
    "RunReport",
    "Span",
    "Tracer",
    "activate",
    "active",
    "breakdown",
    "chrome_trace",
    "critical_path",
    "current_span_id",
    "deactivate",
    "diff_history",
    "event",
    "flamegraph_lines",
    "gantt_lines",
    "lanes",
    "load_config",
    "maybe_fit_trace",
    "metrics_registry",
    "metrics_snapshot",
    "read_jsonl",
    "render_timings_rows",
    "reset_metrics",
    "rollup",
    "serialization_summary",
    "span",
    "traced",
    "using",
    "write_chrome_trace",
    "write_flamegraph",
]
