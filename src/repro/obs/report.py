"""Run reports: bundle a trace with a metrics snapshot and render timings.

A :class:`RunReport` is the end-of-run artifact behind the CLI's
``--trace``/``--profile`` flags and the ``ucomplexity timings`` subcommand:
the span rows and telemetry events of one :class:`~repro.obs.trace.Tracer`
plus a snapshot of the default metrics registry.  The timings rendering
(top-N slowest spans, per-stage totals with self time) works off the
generic JSONL row dicts, so a report rendered live and one re-rendered from
a written trace file agree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs.trace import Tracer


def span_rows(rows: Sequence[dict]) -> list[dict]:
    return [r for r in rows if r.get("type") == "span"]


def metrics_row(rows: Sequence[dict]) -> dict[str, Any] | None:
    for r in rows:
        if r.get("type") == "metrics":
            return r.get("values")
    return None


def trace_elapsed(rows: Sequence[dict]) -> float | None:
    for r in rows:
        if r.get("type") == "trace":
            return r.get("elapsed_s")
    return None


def stage_totals(rows: Sequence[dict]) -> list[dict[str, Any]]:
    """Aggregate span rows by name: count, total wall, and self wall.

    *Total* is inclusive of children; *self* subtracts every direct
    child's wall time, so summing self across all names accounts each
    moment once.
    """
    child_wall: dict[int, float] = {}
    for r in span_rows(rows):
        parent = r.get("parent")
        if parent is not None and r.get("wall_s") is not None:
            child_wall[parent] = child_wall.get(parent, 0.0) + r["wall_s"]
    totals: dict[str, dict[str, Any]] = {}
    for r in span_rows(rows):
        wall = r.get("wall_s")
        if wall is None:
            continue
        agg = totals.setdefault(
            r["name"], {"name": r["name"], "count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        agg["count"] += 1
        agg["total_s"] += wall
        agg["self_s"] += max(wall - child_wall.get(r["id"], 0.0), 0.0)
    return sorted(totals.values(), key=lambda a: (-a["self_s"], a["name"]))


def slowest_spans(rows: Sequence[dict], n: int = 10) -> list[dict]:
    done = [r for r in span_rows(rows) if r.get("wall_s") is not None]
    return sorted(done, key=lambda r: -r["wall_s"])[:n]


def coverage(rows: Sequence[dict]) -> float | None:
    """Fraction of the run's wall time covered by root spans (0..1)."""
    elapsed = trace_elapsed(rows)
    roots = [
        r for r in span_rows(rows)
        if r.get("parent") is None and r.get("wall_s") is not None
    ]
    if not roots:
        return None
    covered = sum(r["wall_s"] for r in roots)
    if elapsed is None or elapsed <= 0.0:
        return None
    return min(covered / elapsed, 1.0)


def _fmt_s(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:8.3f}s "
    return f"{seconds * 1e3:8.2f}ms"


def render_timings_rows(rows: Sequence[dict], top: int = 10) -> str:
    """Timings report (top spans + per-stage totals) from raw trace rows."""
    lines: list[str] = []
    elapsed = trace_elapsed(rows)
    cov = coverage(rows)
    head = "Timings"
    if elapsed is not None:
        head += f" -- {elapsed:.3f}s total"
    if cov is not None:
        head += f", {cov * 100.0:.1f}% covered by spans"
    lines.append(head)

    lines.append(f"\ntop {top} slowest spans:")
    for r in slowest_spans(rows, top):
        attrs = r.get("attrs") or {}
        detail = (
            " [" + ", ".join(f"{k}={v}" for k, v in sorted(attrs.items())) + "]"
            if attrs
            else ""
        )
        mark = "" if r.get("status", "ok") == "ok" else "  !error"
        lines.append(f"  {_fmt_s(r['wall_s'])}  {r['name']}{detail}{mark}")

    lines.append("\nper-stage totals (self time first):")
    lines.append(f"  {'stage':<28} {'count':>6} {'total':>10} {'self':>10}")
    for agg in stage_totals(rows):
        lines.append(
            f"  {agg['name']:<28} {agg['count']:>6} "
            f"{_fmt_s(agg['total_s'])} {_fmt_s(agg['self_s'])}"
        )

    n_iters = sum(1 for r in rows if r.get("type") == "fit_iter")
    if n_iters:
        fitters = sorted({r.get("fitter", "?") for r in rows if r.get("type") == "fit_iter"})
        lines.append(
            f"\nfit telemetry: {n_iters} optimizer iteration(s) recorded "
            f"({', '.join(fitters)})"
        )

    metrics = metrics_row(rows)
    if metrics and metrics.get("counters"):
        lines.append("\ncounters:")
        for name, value in metrics["counters"].items():
            rendered = int(value) if float(value).is_integer() else value
            lines.append(f"  {name:<40} {rendered}")
    return "\n".join(lines)


@dataclass
class RunReport:
    """One run's trace rows plus the metrics snapshot taken at collection."""

    rows: list[dict] = field(default_factory=list)
    metrics: dict[str, Any] | None = None

    @classmethod
    def collect(
        cls, tracer: Tracer, registry: obs_metrics.MetricsRegistry | None = None
    ) -> "RunReport":
        """Snapshot ``tracer`` and the (default) metrics registry."""
        reg = registry if registry is not None else obs_metrics.registry()
        snap = reg.snapshot()
        return cls(rows=tracer.to_rows(metrics=snap), metrics=snap)

    def write_jsonl(self, path: str | Path) -> Path:
        import json

        path = Path(path)
        lines = [json.dumps(row, sort_keys=True) for row in self.rows]
        path.write_text("\n".join(lines) + "\n", encoding="utf-8")
        return path

    def render_timings(self, top: int = 10) -> str:
        return render_timings_rows(self.rows, top=top)

    @property
    def coverage(self) -> float | None:
        return coverage(self.rows)
