"""Process-local metrics: counters, gauges, and histograms.

A :class:`MetricsRegistry` is a flat namespace of named instruments that
pipeline stages bump as they work -- files parsed, tokens lexed, optimizer
iterations, fallback activations (the full name catalog is in DESIGN.md,
"Observability").  Unlike spans, metrics are always on: incrementing a
counter is cheap enough for hot paths, and a snapshot of the default
registry rides along in every ``--trace`` file and ``RunReport``.

Instruments are created on first use (``counter(name).inc()``), so callers
never need registration boilerplate, and a snapshot only contains
instruments the run actually touched.

Thread-safety: instrument creation and whole-registry operations
(``snapshot``/``dump``/``merge``/``reset``) take a registry lock, so a
reader thread (the serve daemon's ``/metrics`` endpoint) can snapshot
while a single writer thread works.  Individual ``inc``/``set``/
``observe`` calls stay lock-free -- the pipeline has one writer thread at
a time, and hot-path increments must stay cheap.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Iterator


@dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot inc by {amount}")
        self.value += amount


@dataclass
class Gauge:
    """A last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A distribution of observed values with percentile queries."""

    name: str
    values: list[float] = field(default_factory=list)

    def observe(self, value: float) -> None:
        self.values.append(float(value))

    @property
    def count(self) -> int:
        return len(self.values)

    @property
    def sum(self) -> float:
        return float(sum(self.values))

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100), linearly interpolated."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            raise ValueError(f"histogram {self.name}: no observations")
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        lo = int(rank)
        frac = rank - lo
        if lo + 1 >= len(ordered):
            return ordered[-1]
        return ordered[lo] * (1.0 - frac) + ordered[lo + 1] * frac

    def snapshot(self) -> dict[str, float]:
        if not self.values:
            return {"count": 0, "sum": 0.0}
        return {
            "count": self.count,
            "sum": self.sum,
            "min": min(self.values),
            "max": max(self.values),
            "p50": self.percentile(50.0),
            "p90": self.percentile(90.0),
            "p99": self.percentile(99.0),
        }


class MetricsRegistry:
    """A namespace of counters/gauges/histograms for one process (or test)."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        self._lock = threading.RLock()

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            with self._lock:
                self._counters.setdefault(name, Counter(name))
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            with self._lock:
                self._gauges.setdefault(name, Gauge(name))
        return self._gauges[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            with self._lock:
                self._histograms.setdefault(name, Histogram(name))
        return self._histograms[name]

    def inc(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).inc(amount)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    def snapshot(self) -> dict[str, Any]:
        """All touched instruments, sorted by name (deterministic)."""
        with self._lock:
            return {
                "counters": {
                    n: c.value for n, c in sorted(self._counters.items())
                },
                "gauges": {
                    n: g.value for n, g in sorted(self._gauges.items())
                },
                "histograms": {
                    n: h.snapshot()
                    for n, h in sorted(self._histograms.items())
                },
            }

    def dump(self) -> dict[str, Any]:
        """A lossless, mergeable export of this registry.

        Unlike :meth:`snapshot` (which aggregates histograms down to
        percentiles), ``dump`` keeps the raw observations, so a pool
        worker's registry can be folded into the parent's with
        :meth:`merge` and no information is lost.
        """
        with self._lock:
            return {
                "counters": {
                    n: c.value for n, c in sorted(self._counters.items())
                },
                "gauges": {
                    n: g.value for n, g in sorted(self._gauges.items())
                },
                "histogram_values": {
                    n: list(h.values)
                    for n, h in sorted(self._histograms.items())
                },
            }

    def merge(self, dump: dict[str, Any]) -> None:
        """Fold a worker registry :meth:`dump` into this registry.

        Counters add, histograms re-observe every raw value, and gauges
        (last-write-wins by definition) take the worker's value.  This is
        the join-side half of the worker-snapshot contract used by
        :mod:`repro.parallel`: process-local instruments bumped in a pool
        worker are never silently dropped.
        """
        with self._lock:
            for name, value in dump.get("counters", {}).items():
                self.counter(name).inc(float(value))
            for name, value in dump.get("gauges", {}).items():
                self.gauge(name).set(float(value))
            for name, values in dump.get("histogram_values", {}).items():
                hist = self.histogram(name)
                for value in values:
                    hist.observe(float(value))

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The default registry the pipeline instruments write to.
_DEFAULT = MetricsRegistry()


def registry() -> MetricsRegistry:
    return _DEFAULT


def counter(name: str) -> Counter:
    return _DEFAULT.counter(name)


def gauge(name: str) -> Gauge:
    return _DEFAULT.gauge(name)


def histogram(name: str) -> Histogram:
    return _DEFAULT.histogram(name)


def snapshot() -> dict[str, Any]:
    return _DEFAULT.snapshot()


def reset() -> None:
    _DEFAULT.reset()


@contextmanager
def using(reg: MetricsRegistry) -> Iterator[MetricsRegistry]:
    """Route module-level instruments to ``reg`` for the ``with`` body.

    Pool workers wrap each task in ``using(MetricsRegistry())`` so their
    counts accumulate in a private registry (the fork start method would
    otherwise leave them double-counting into an inherited copy of the
    parent's), then ship ``reg.dump()`` back for the parent to ``merge``.
    """
    global _DEFAULT
    prev = _DEFAULT
    _DEFAULT = reg
    try:
        yield reg
    finally:
        _DEFAULT = prev
