"""Synthetic datasets drawn from the paper's generative model.

These are used to validate the fitters: data generated with known weights
``w``, productivity spread ``sigma_rho``, and error spread ``sigma_eps``
should be recovered by :func:`repro.stats.nlme.fit_nlme` within statistical
tolerance.  They also back the fitter-consistency benchmarks and the
extension experiments (e.g., how estimation accuracy degrades with fewer
data points).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.grouping import GroupedData


@dataclass(frozen=True)
class SyntheticDataset:
    """A generated dataset plus the ground truth that produced it."""

    data: GroupedData
    true_weights: np.ndarray
    true_sigma_eps: float
    true_sigma_rho: float
    true_productivities: dict[str, float]


def simulate_dataset(
    weights: np.ndarray | list[float],
    sigma_eps: float,
    sigma_rho: float,
    components_per_team: list[int],
    metric_log_mean: float = 7.0,
    metric_log_sd: float = 1.0,
    seed: int | np.random.Generator | np.random.SeedSequence = 0,
    metric_names: tuple[str, ...] = (),
) -> SyntheticDataset:
    """Draw a dataset from the Section 3.1 generative model.

    Metrics are lognormal (HDL size metrics span orders of magnitude across
    components, so a lognormal marginal is realistic).  For each team ``i``
    a productivity ``rho_i`` is drawn lognormal(0, sigma_rho), and each
    component's effort is ``(1/rho_i) * sum_k w_k m_k * eps`` with ``eps``
    lognormal(0, sigma_eps).

    Args:
        weights: true metric weights (positive).
        sigma_eps: multiplicative error log-SD.
        sigma_rho: productivity log-SD.
        components_per_team: number of components for each synthetic team;
            its length sets the number of teams.
        metric_log_mean: mean of log metric values.
        metric_log_sd: SD of log metric values.
        seed: RNG seed, ``SeedSequence``, or an already-constructed
            ``numpy.random.Generator``.  Passing a Generator lets callers
            (e.g. the recovery studies in :mod:`repro.gen.recovery`) give
            each replicate an independent spawned stream, so results are
            reproducible regardless of evaluation order or worker count.
            Global NumPy RNG state is never touched.
        metric_names: optional column labels.
    """
    w = np.asarray(weights, dtype=float)
    if w.ndim != 1 or w.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(w <= 0.0):
        raise ValueError("weights must be strictly positive")
    if sigma_eps < 0.0 or sigma_rho < 0.0:
        raise ValueError("standard deviations must be non-negative")
    if not components_per_team or any(n <= 0 for n in components_per_team):
        raise ValueError("components_per_team must be positive counts")

    rng = np.random.default_rng(seed)
    k = w.size
    rows: list[np.ndarray] = []
    efforts: list[float] = []
    groups: list[str] = []
    labels: list[str] = []
    productivities: dict[str, float] = {}
    for team_idx, n_components in enumerate(components_per_team):
        team = f"team{team_idx}"
        rho = float(np.exp(rng.normal(0.0, sigma_rho))) if sigma_rho > 0 else 1.0
        productivities[team] = rho
        for comp_idx in range(n_components):
            m = np.exp(rng.normal(metric_log_mean, metric_log_sd, size=k))
            eps = float(np.exp(rng.normal(0.0, sigma_eps))) if sigma_eps > 0 else 1.0
            effort = float(m @ w) / rho * eps
            rows.append(m)
            efforts.append(effort)
            groups.append(team)
            labels.append(f"{team}-c{comp_idx}")

    data = GroupedData(
        efforts=np.asarray(efforts),
        metrics=np.vstack(rows),
        groups=tuple(groups),
        metric_names=metric_names or tuple(f"m{j}" for j in range(k)),
        labels=tuple(labels),
    )
    return SyntheticDataset(
        data=data,
        true_weights=w,
        true_sigma_eps=sigma_eps,
        true_sigma_rho=sigma_rho,
        true_productivities=productivities,
    )
