"""Exact maximum-likelihood fitting of the uComplexity mixed-effects model.

The paper's model (Equations 2 and 3) is, for component ``j`` of project
``i`` with metric vector ``m_ij``::

    Eff_ij = (1 / rho_i) * sum_k(w_k * m_ijk) * eps_ij

with ``rho_i`` and ``eps_ij`` lognormal with median 1.  Taking logs (the
transformation in Appendix A)::

    y_ij = b_i + log(sum_k w_k * m_ijk) + e_ij
    y_ij = log(Eff_ij),  b_i = -log(rho_i) ~ N(0, sigma_rho^2),
    e_ij ~ N(0, sigma_eps^2)

Because the random effect enters *additively* on the log scale, the marginal
distribution of the per-group residual vector is multivariate normal with
compound-symmetric covariance ``sigma_eps^2 I + sigma_rho^2 J``.  Its
determinant and inverse are closed form, so the marginal likelihood that
``PROC NLMIXED`` approximates by quadrature is available exactly here; we
maximize it directly with multi-start quasi-Newton optimization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np
from scipy import optimize

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.fittrace import FitTrace, maybe_fit_trace
from repro.stats.criteria import FitCriteria
from repro.stats.grouping import GroupedData
from repro.stats.lognormal import confidence_interval

_LOG_2PI = math.log(2.0 * math.pi)

# Bounds on the log-scale optimization variables.  Weights in the paper's
# fits span roughly 1e-5..1e-1 and the sigmas 0.1..3; these bounds are far
# wider while still preventing numerical overflow.
_LOG_W_BOUNDS = (-35.0, 15.0)
_LOG_SIGMA_BOUNDS = (-8.0, 4.0)

# Indirection over scipy's optimizer so the fault-injection harness
# (repro.runtime.faultinject) can deterministically sabotage convergence
# without monkeypatching scipy itself.
_MINIMIZE = optimize.minimize


@dataclass(frozen=True)
class NlmeFit:
    """Result of a nonlinear mixed-effects fit.

    Attributes:
        weights: fitted metric weights ``w_k`` (positive).
        sigma_eps: residual (multiplicative-error) log-standard deviation;
            this is the ``sigma_epsilon`` accuracy figure reported throughout
            the paper's evaluation.
        sigma_rho: log-standard deviation of the productivity random effect.
        loglik: maximized marginal log-likelihood.
        random_effects: BLUP of ``b_i = -log(rho_i)`` per team.
        productivities: ``rho_i = exp(-b_i)`` per team (Section 2.4).
        metric_names: metric column labels, aligned with ``weights``.
        n_obs: number of observations fitted.
        converged: whether the optimizer reported convergence.
        fitter: which fitter produced the estimate (``"exact-ml"`` here;
            the robust fallback chain in :mod:`repro.stats.robust` records
            ``"laplace-aghq"`` when it degrades to quadrature).
        start_objectives: final negative log-likelihood of every optimizer
            start, for multi-start dispersion checks.
    """

    weights: np.ndarray
    sigma_eps: float
    sigma_rho: float
    loglik: float
    random_effects: dict[str, float]
    productivities: dict[str, float]
    metric_names: tuple[str, ...]
    n_obs: int
    converged: bool = True
    fitter: str = "exact-ml"
    start_objectives: tuple[float, ...] = ()

    @property
    def n_params(self) -> int:
        """Fitted parameter count: the weights plus the two sigmas."""
        return len(self.weights) + 2

    @property
    def criteria(self) -> FitCriteria:
        return FitCriteria(loglik=self.loglik, n_params=self.n_params, n_obs=self.n_obs)

    @property
    def aic(self) -> float:
        return self.criteria.aic

    @property
    def bic(self) -> float:
        return self.criteria.bic

    def linear_predictor(self, metrics: np.ndarray) -> np.ndarray:
        """Unscaled effort ``sum_k w_k * m_k`` for each metric row."""
        metrics = np.atleast_2d(np.asarray(metrics, dtype=float))
        if metrics.shape[1] != len(self.weights):
            raise ValueError(
                f"metrics have {metrics.shape[1]} columns, fit has "
                f"{len(self.weights)} weights"
            )
        return metrics @ self.weights

    def predict_median(self, metrics: np.ndarray, team: str | None = None) -> np.ndarray:
        """Median design-effort estimate (Equation 1).

        If ``team`` names a team seen during fitting, its productivity
        ``rho_i`` divides the unscaled effort; otherwise ``rho = 1`` is
        assumed (relative estimation mode, Section 3.1.1).
        """
        rho = 1.0
        if team is not None:
            if team not in self.productivities:
                raise KeyError(f"unknown team {team!r}; fitted teams: "
                               f"{sorted(self.productivities)}")
            rho = self.productivities[team]
        return self.linear_predictor(metrics) / rho

    def predict_mean(self, metrics: np.ndarray, team: str | None = None) -> np.ndarray:
        """Mean design-effort estimate (Equation 4)."""
        factor = math.exp((self.sigma_eps**2 + self.sigma_rho**2) / 2.0)
        return self.predict_median(metrics, team) * factor

    def prediction_interval(
        self, metrics: np.ndarray, team: str | None = None, confidence: float = 0.90
    ) -> list[tuple[float, float]]:
        """Per-row multiplicative confidence interval around the median."""
        medians = self.predict_median(metrics, team)
        return [confidence_interval(m, self.sigma_eps, confidence) for m in medians]


def _group_structure(data: GroupedData) -> list[tuple[str, np.ndarray]]:
    return list(data.group_indices().items())


def _negative_loglik(
    theta: np.ndarray,
    y: np.ndarray,
    metrics: np.ndarray,
    groups: list[tuple[str, np.ndarray]],
) -> float:
    """Exact negative marginal log-likelihood at ``theta``.

    ``theta = (u_1..u_k, log sigma_eps, log sigma_rho)`` with ``w = exp(u)``.
    """
    k = metrics.shape[1]
    w = np.exp(theta[:k])
    s2e = math.exp(2.0 * theta[k])
    s2r = math.exp(2.0 * theta[k + 1])
    lin = metrics @ w
    # w > 0 and metrics > 0 guarantee lin > 0.
    f = np.log(lin)
    r = y - f
    nll = 0.0
    for _, idx in groups:
        ri = r[idx]
        n_i = ri.shape[0]
        tot = s2e + n_i * s2r
        logdet = (n_i - 1) * math.log(s2e) + math.log(tot)
        quad = float(ri @ ri) / s2e - (s2r / (s2e * tot)) * float(ri.sum()) ** 2
        nll += 0.5 * (n_i * _LOG_2PI + logdet + quad)
    return nll


def _blups(
    w: np.ndarray,
    s2e: float,
    s2r: float,
    y: np.ndarray,
    metrics: np.ndarray,
    groups: list[tuple[str, np.ndarray]],
) -> dict[str, float]:
    """Empirical-Bayes estimates of the random intercepts ``b_i``."""
    r = y - np.log(metrics @ w)
    out: dict[str, float] = {}
    for name, idx in groups:
        n_i = idx.shape[0]
        shrink = n_i * s2r / (s2e + n_i * s2r)
        out[name] = shrink * float(r[idx].mean())
    return out


def _single_metric_start(y: np.ndarray, column: np.ndarray) -> float:
    """Closed-form log-weight start for a single-metric model.

    With one metric, ``log(w * m) = log w + log m`` and the ML estimate of
    ``log w`` (ignoring grouping) is ``mean(y - log m)``.
    """
    return float(np.mean(y - np.log(column)))


def _starting_points(
    y: np.ndarray, metrics: np.ndarray, rng: np.random.Generator, n_random: int
) -> list[np.ndarray]:
    k = metrics.shape[1]
    resid_sd = max(float(np.std(y)), 0.05)
    base_sigmas = [math.log(max(resid_sd * 0.7, 1e-3)), math.log(max(resid_sd * 0.5, 1e-3))]
    # Deterministic start: split the single-metric solutions evenly.
    u0 = np.array(
        [_single_metric_start(y, metrics[:, j]) - math.log(k) for j in range(k)]
    )
    starts = [np.concatenate([u0, base_sigmas])]
    # Starts that put all the weight on one metric at a time.
    for j in range(k):
        u = np.full(k, u0[j] - 6.0)
        u[j] = _single_metric_start(y, metrics[:, j])
        starts.append(np.concatenate([u, base_sigmas]))
    # Random perturbations around the balanced start.
    for _ in range(n_random):
        u = u0 + rng.normal(scale=1.5, size=k)
        sig = np.asarray(base_sigmas) + rng.normal(scale=0.5, size=2)
        starts.append(np.concatenate([u, sig]))
    return starts


def fit_nlme(
    data: GroupedData,
    n_random_starts: int = 8,
    seed: int = 20050101,
    bounds_margin: float = 0.0,
    start_jitter: float = 0.0,
    fit_trace: FitTrace | None = None,
) -> NlmeFit:
    """Fit the mixed-effects model by exact marginal maximum likelihood.

    Args:
        data: grouped dataset (efforts, metric matrix, team labels).
        n_random_starts: extra randomized optimizer starts on top of the
            deterministic ones; more starts make the global optimum more
            likely on multi-metric models.
        seed: RNG seed for the randomized starts (fits are deterministic for
            a fixed seed).
        bounds_margin: widens the log-scale box constraints by this much on
            each side; the robust retry ladder uses it to escape optima
            pinned at a bound.
        start_jitter: extra N(0, start_jitter) noise added to every start;
            the robust retry ladder uses it for jittered restarts.
        fit_trace: per-iteration telemetry sink; when omitted, one is
            created automatically if a tracer is active (see
            :mod:`repro.obs.fittrace`).
    """
    if len(data.group_names) < 2:
        raise ValueError(
            "the mixed-effects model needs at least two teams; "
            "use fit_fixed_effects for single-project data (Section 3.2)"
        )
    y = data.log_efforts
    metrics = data.metrics
    groups = _group_structure(data)
    rng = np.random.default_rng(seed)
    k = metrics.shape[1]
    w_bounds = (_LOG_W_BOUNDS[0] - bounds_margin, _LOG_W_BOUNDS[1] + bounds_margin)
    s_bounds = (
        _LOG_SIGMA_BOUNDS[0] - bounds_margin,
        _LOG_SIGMA_BOUNDS[1] + bounds_margin,
    )
    bounds = [w_bounds] * k + [s_bounds] * 2

    with obs_trace.span(
        "fit.exact-ml", n_obs=data.n_observations, n_metrics=k
    ) as fit_span:
        trace_sink = maybe_fit_trace("exact-ml", fit_trace)

        def nll_at(theta: np.ndarray) -> float:
            return _negative_loglik(theta, y, metrics, groups)

        iters = obs_metrics.counter("fit.exact-ml.iterations")
        evals = obs_metrics.counter("fit.exact-ml.loglik_evals")
        best: optimize.OptimizeResult | None = None
        start_objectives: list[float] = []
        starts = _starting_points(y, metrics, rng, n_random_starts)
        for start_index, theta0 in enumerate(starts):
            if start_jitter > 0.0:
                theta0 = theta0 + rng.normal(scale=start_jitter, size=theta0.shape)
            theta0 = np.clip(theta0, [b[0] for b in bounds], [b[1] for b in bounds])
            res = _MINIMIZE(
                _negative_loglik,
                theta0,
                args=(y, metrics, groups),
                method="L-BFGS-B",
                bounds=bounds,
                callback=(
                    trace_sink.watch(nll_at, start_index) if trace_sink is not None else None
                ),
            )
            iters.inc(int(getattr(res, "nit", 0)))
            evals.inc(int(getattr(res, "nfev", 0)))
            start_objectives.append(float(res.fun))
            if best is None or res.fun < best.fun:
                best = res
        assert best is not None
        # Polish with a derivative-free pass; L-BFGS-B with numeric gradients
        # can stall slightly short of the optimum on flat likelihoods.
        polish = _MINIMIZE(
            _negative_loglik,
            best.x,
            args=(y, metrics, groups),
            method="Nelder-Mead",
            options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 20000},
            callback=(
                trace_sink.watch(nll_at, len(starts)) if trace_sink is not None else None
            ),
        )
        iters.inc(int(getattr(polish, "nit", 0)))
        evals.inc(int(getattr(polish, "nfev", 0)))
        if polish.fun < best.fun:
            best = polish
        fit_span.set_attr("n_starts", len(starts))
        fit_span.set_attr("nll", float(best.fun))

    theta = best.x
    w = np.exp(theta[:k])
    sigma_eps = math.exp(theta[k])
    sigma_rho = math.exp(theta[k + 1])
    blups = _blups(w, sigma_eps**2, sigma_rho**2, y, metrics, groups)
    return NlmeFit(
        weights=w,
        sigma_eps=sigma_eps,
        sigma_rho=sigma_rho,
        loglik=-float(best.fun),
        random_effects=blups,
        productivities={g: math.exp(-b) for g, b in blups.items()},
        metric_names=data.metric_names,
        n_obs=data.n_observations,
        converged=bool(best.success),
        start_objectives=tuple(start_objectives),
    )
