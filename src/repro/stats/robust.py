"""Fitter resilience: convergence verification and the degradation ladder.

``fit_nlme`` reports whatever the optimizer's ``success`` flag says, but a
production estimation service needs stronger evidence before trusting a
fit, and a defined answer when that evidence is missing.  This module
provides both:

* :func:`verify_nlme_convergence` -- post-hoc convergence verification of
  an exact-ML fit: first-order condition (gradient norm at the reported
  optimum), second-order condition (finite-difference Hessian positive
  definite), and multi-start dispersion (how many independent starts
  reached the same optimum).  A near-singular Hessian also flags
  unidentifiable models, e.g. collinear metric columns.
* :func:`fit_nlme_robust` -- the declared fallback chain::

      exact-ML  --(retry: jittered restarts, widened bounds)-->
      exact-ML  --(degrade)-->  Laplace/AGHQ  --(degrade)-->
      fixed effects (rho = 1)

  Every degradation step is recorded as a structured diagnostic, and the
  returned :class:`RobustFitResult` names the fitter that produced the
  estimate, so downstream tables can mark degraded figures instead of
  silently reporting them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic, Severity
from repro.stats.fixedeffects import FixedEffectsFit, fit_fixed_effects
from repro.stats.grouping import GroupedData
from repro.stats.laplace import fit_nlme_laplace
from repro.stats.nlme import (
    _LOG_SIGMA_BOUNDS,
    _LOG_W_BOUNDS,
    NlmeFit,
    _group_structure,
    _negative_loglik,
    fit_nlme,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs of the retry ladder and convergence verification."""

    max_attempts: int = 3          # exact-ML tries before degrading
    jitter_scale: float = 0.8      # start jitter added per retry attempt
    widen_step: float = 4.0        # log-bounds widening per retry attempt
    extra_starts: int = 4          # extra random starts per retry attempt
    grad_tol: float = 1e-3         # relative first-order tolerance
    hessian_tol: float = 1e-6      # relative PD tolerance (min eigenvalue)
    support_min: int = 2           # starts that must agree with the optimum
    support_tol: float = 1e-3      # relative objective agreement window


@dataclass(frozen=True)
class ConvergenceReport:
    """Evidence collected when verifying one exact-ML fit."""

    optimizer_success: bool
    grad_norm: float
    grad_tol: float
    min_hessian_eig: float
    hessian_pd: bool
    multistart_support: int
    n_starts: int
    passed: bool
    reasons: tuple[str, ...]

    def summary(self) -> str:
        state = "passed" if self.passed else "FAILED"
        return (
            f"convergence {state}: |grad|={self.grad_norm:.2e} "
            f"(tol {self.grad_tol:.2e}), min Hessian eig="
            f"{self.min_hessian_eig:.2e}, multi-start support "
            f"{self.multistart_support}/{self.n_starts}"
            + ("" if self.passed else f"; reasons: {'; '.join(self.reasons)}")
        )


def _theta_of(fit: NlmeFit) -> np.ndarray:
    return np.concatenate(
        [
            np.log(fit.weights),
            [math.log(fit.sigma_eps), math.log(fit.sigma_rho)],
        ]
    )


def _finite_diff_gradient(f, theta: np.ndarray, h: float = 1e-5) -> np.ndarray:
    grad = np.zeros_like(theta)
    for i in range(theta.shape[0]):
        e = np.zeros_like(theta)
        e[i] = h
        grad[i] = (f(theta + e) - f(theta - e)) / (2.0 * h)
    return grad


def _finite_diff_hessian(f, theta: np.ndarray, h: float = 1e-4) -> np.ndarray:
    n = theta.shape[0]
    hess = np.zeros((n, n))
    for i in range(n):
        ei = np.zeros(n)
        ei[i] = h
        for j in range(i, n):
            ej = np.zeros(n)
            ej[j] = h
            val = (
                f(theta + ei + ej)
                - f(theta + ei - ej)
                - f(theta - ei + ej)
                + f(theta - ei - ej)
            ) / (4.0 * h * h)
            hess[i, j] = hess[j, i] = val
    return hess


def verify_nlme_convergence(
    fit: NlmeFit, data: GroupedData, policy: RetryPolicy = RetryPolicy()
) -> ConvergenceReport:
    """Check first/second-order conditions and multi-start agreement.

    Tolerances are relative to ``1 + |nll|`` so they behave uniformly
    across datasets of different likelihood scale.  A clean fit on the
    paper's data shows ``|grad| ~ 1e-7`` and strictly positive Hessian
    eigenvalues, so the defaults have orders of magnitude of headroom.
    """
    y = data.log_efforts
    metrics = data.metrics
    groups = _group_structure(data)

    def nll(theta: np.ndarray) -> float:
        return _negative_loglik(theta, y, metrics, groups)

    with obs_trace.span("fit.verify"):
        return _verify_nlme_convergence(fit, policy, nll)


def _verify_nlme_convergence(
    fit: NlmeFit, policy: RetryPolicy, nll
) -> ConvergenceReport:
    theta = _theta_of(fit)
    scale = 1.0 + abs(nll(theta))
    grad_tol = policy.grad_tol * scale

    # Active-set reduction: a parameter pinned at (or collapsed past) its
    # box bound is a legitimate boundary optimum -- e.g. sigma_rho -> 0 when
    # a metric shows no productivity spread -- and the likelihood is flat
    # along it, so first/second-order interior conditions only apply to the
    # free coordinates.
    k = len(fit.weights)
    lower = np.array([_LOG_W_BOUNDS[0]] * k + [_LOG_SIGMA_BOUNDS[0]] * 2)
    upper = np.array([_LOG_W_BOUNDS[1]] * k + [_LOG_SIGMA_BOUNDS[1]] * 2)
    free = (theta > lower + 0.5) & (theta < upper - 0.5)

    grad = _finite_diff_gradient(nll, theta)
    grad_norm = float(np.linalg.norm(grad[free])) if free.any() else 0.0

    if free.any():
        hess = _finite_diff_hessian(nll, theta)
        sub = ((hess + hess.T) / 2.0)[np.ix_(free, free)]
        eigs = np.linalg.eigvalsh(sub)
        min_eig = float(eigs[0])
        max_eig = float(eigs[-1])
    else:
        min_eig = max_eig = 0.0
    hessian_pd = min_eig > -policy.hessian_tol * scale and math.isfinite(min_eig)
    # A numerically singular Hessian (eigenvalue ~ 0 relative to the
    # largest curvature) means some free direction is unidentifiable --
    # the collinear-metrics failure mode.  Clean paper fits condition at
    # ~5e-2; exactly collinear columns at ~5e-9, so 1e-6 splits them with
    # orders of magnitude to spare on both sides.
    if max_eig > 0 and min_eig / max_eig < 1e-6:
        hessian_pd = False

    support = 0
    if fit.start_objectives:
        best = min(fit.start_objectives)
        window = policy.support_tol * (1.0 + abs(best))
        support = sum(1 for f0 in fit.start_objectives if abs(f0 - best) <= window)
    n_starts = len(fit.start_objectives)

    reasons: list[str] = []
    if not fit.converged:
        reasons.append("optimizer did not report success")
    if grad_norm > grad_tol:
        reasons.append(
            f"first-order condition violated (|grad| {grad_norm:.2e} > "
            f"{grad_tol:.2e})"
        )
    if not hessian_pd:
        reasons.append(
            f"Hessian not positive definite (min eigenvalue {min_eig:.2e}); "
            "the model may be unidentifiable (e.g. collinear metrics)"
        )
    if n_starts >= policy.support_min and support < policy.support_min:
        reasons.append(
            f"multi-start dispersion: only {support}/{n_starts} starts "
            "reached the reported optimum"
        )

    return ConvergenceReport(
        optimizer_success=fit.converged,
        grad_norm=grad_norm,
        grad_tol=grad_tol,
        min_hessian_eig=min_eig,
        hessian_pd=hessian_pd,
        multistart_support=support,
        n_starts=n_starts,
        passed=not reasons,
        reasons=tuple(reasons),
    )


@dataclass(frozen=True)
class RobustFitResult:
    """Outcome of the fallback chain, with degradation provenance."""

    fit: NlmeFit | FixedEffectsFit
    fitter: str                 # "exact-ml" | "laplace-aghq" | "fixed-effects"
    attempts: int               # exact-ML attempts made
    degraded: bool              # a fallback produced the estimate
    convergence: ConvergenceReport | None
    diagnostics: tuple[Diagnostic, ...]

    @property
    def sigma_eps(self) -> float:
        return self.fit.sigma_eps

    @property
    def converged(self) -> bool:
        return self.fit.converged

    @property
    def weights(self) -> np.ndarray:
        return self.fit.weights


def _laplace_as_nlme(data: GroupedData, n_quadrature: int = 9) -> NlmeFit:
    """Run the Laplace/AGHQ fitter and repackage as an :class:`NlmeFit`.

    The paper's model has the same parameters under both fitters, so the
    quadrature estimate supports the full prediction API; ``fitter``
    records the provenance.
    """
    lap = fit_nlme_laplace(data, n_quadrature=n_quadrature)
    return NlmeFit(
        weights=lap.weights,
        sigma_eps=lap.sigma_eps,
        sigma_rho=lap.sigma_rho,
        loglik=lap.loglik,
        random_effects=dict(lap.random_effects),
        productivities=dict(lap.productivities),
        metric_names=lap.metric_names,
        n_obs=lap.n_obs,
        converged=lap.converged,
        fitter="laplace-aghq",
    )


def fit_nlme_robust(
    data: GroupedData,
    policy: RetryPolicy = RetryPolicy(),
    seed: int = 20050101,
    component: str | None = None,
) -> RobustFitResult:
    """Fit the mixed-effects model with verification, retries, and fallbacks.

    The chain never raises for fit-quality reasons: it returns the best
    estimate the ladder could produce, plus diagnostics describing every
    degradation taken.  Structural errors (empty metric selection, etc.)
    still raise, as they indicate caller bugs rather than input noise.
    """
    diags: list[Diagnostic] = []

    def note(severity: Severity, message: str, hint: str | None = None) -> None:
        diags.append(
            Diagnostic(
                severity=severity,
                stage="fit",
                message=message,
                component=component,
                hint=hint,
            )
        )

    # Single-team data cannot support a random effect at all: degrade
    # straight to the rho=1 model instead of raising like fit_nlme does.
    if len(data.group_names) < 2:
        note(
            Severity.ERROR,
            "only one team in the dataset; the productivity random effect "
            "is not estimable, degrading to the fixed-effects (rho=1) model",
            hint="collect data from at least two teams to fit productivity "
                 "adjustments",
        )
        obs_metrics.counter("fit.fallback_activations").inc()
        fixed = fit_fixed_effects(data, seed=seed)
        return RobustFitResult(
            fit=fixed, fitter="fixed-effects", attempts=0, degraded=True,
            convergence=None, diagnostics=tuple(diags),
        )

    # Rung 1: exact ML, with jittered/widened retries.
    report: ConvergenceReport | None = None
    attempts = 0
    for attempt in range(policy.max_attempts):
        attempts = attempt + 1
        obs_metrics.counter("fit.attempts").inc()
        try:
            with obs_trace.span(
                "fit.attempt", attempt=attempts, component=component
            ):
                fit = fit_nlme(
                    data,
                    n_random_starts=8 + attempt * policy.extra_starts,
                    seed=seed + 7919 * attempt,
                    bounds_margin=attempt * policy.widen_step,
                    start_jitter=attempt * policy.jitter_scale,
                )
                report = verify_nlme_convergence(fit, data, policy)
        except Exception as exc:  # noqa: BLE001 -- degrade, don't propagate
            note(
                Severity.WARNING,
                f"exact-ML attempt {attempts} raised "
                f"{type(exc).__name__}: {exc}",
            )
            report = None
            continue
        if report.passed:
            if attempt > 0:
                note(
                    Severity.WARNING,
                    f"exact-ML fit converged only after {attempts} attempts "
                    "(jittered restarts / widened bounds)",
                )
            return RobustFitResult(
                fit=fit, fitter="exact-ml", attempts=attempts,
                degraded=False, convergence=report, diagnostics=tuple(diags),
            )
        note(
            Severity.WARNING,
            f"exact-ML attempt {attempts} failed verification: "
            f"{report.summary()}",
        )

    # Rung 2: Laplace/AGHQ quadrature.
    note(
        Severity.ERROR,
        f"exact-ML convergence checks failed after {attempts} attempts; "
        "degrading to the Laplace/AGHQ fitter",
        hint="inspect the dataset for collinear metric columns or extreme "
             "outliers; the quadrature estimate is reported instead",
    )
    obs_metrics.counter("fit.fallback_activations").inc()
    try:
        lap = _laplace_as_nlme(data)
    except Exception as exc:  # noqa: BLE001
        lap = None
        note(
            Severity.WARNING,
            f"Laplace/AGHQ fitter raised {type(exc).__name__}: {exc}",
        )
    if lap is not None and lap.converged:
        return RobustFitResult(
            fit=lap, fitter="laplace-aghq", attempts=attempts,
            degraded=True, convergence=report, diagnostics=tuple(diags),
        )

    # Rung 3: fixed effects (rho = 1) -- always well-posed.
    note(
        Severity.ERROR,
        "Laplace/AGHQ fitter also failed to converge; degrading to the "
        "fixed-effects (rho=1) model -- productivity adjustment is lost",
        hint="the reported sigma_eps excludes the productivity random "
             "effect; treat accuracy comparisons with care",
    )
    obs_metrics.counter("fit.fallback_activations").inc()
    fixed = fit_fixed_effects(data, seed=seed)
    if not fixed.converged:
        note(
            Severity.FATAL,
            "even the fixed-effects fallback did not converge; the estimate "
            "is the best objective value seen but is unverified",
        )
    return RobustFitResult(
        fit=fixed, fitter="fixed-effects", attempts=attempts,
        degraded=True, convergence=report, diagnostics=tuple(diags),
    )
