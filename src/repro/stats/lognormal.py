"""Lognormal distribution helpers.

The uComplexity model (Section 3.1) assumes that both the per-team
productivity ``rho`` and the multiplicative estimation error ``epsilon`` are
lognormally distributed with ``mu = 0`` so that their median is 1.  This
module provides the closed-form quantities the paper uses:

* the density, mean, median, and mode (Figure 2);
* the multiplicative confidence-interval factors ``(yl, yh)`` that map a
  residual log-standard-deviation ``sigma_epsilon`` to an x% confidence
  interval ``(yl * eff, yh * eff)`` (Figures 3 and 4);
* the median-to-mean correction of Equation 4.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

_SQRT_2PI = math.sqrt(2.0 * math.pi)
_SQRT_2 = math.sqrt(2.0)


@dataclass(frozen=True)
class LognormalSpec:
    """A lognormal distribution parameterized on the log scale.

    ``mu`` and ``sigma`` are the mean and standard deviation of the *log* of
    the variable, matching the convention of Section 3.1.
    """

    mu: float = 0.0
    sigma: float = 1.0

    def __post_init__(self) -> None:
        if self.sigma < 0.0:
            raise ValueError(f"sigma must be non-negative, got {self.sigma}")

    @property
    def median(self) -> float:
        return math.exp(self.mu)

    @property
    def mean(self) -> float:
        return math.exp(self.mu + self.sigma**2 / 2.0)

    @property
    def mode(self) -> float:
        return math.exp(self.mu - self.sigma**2)

    @property
    def variance(self) -> float:
        s2 = self.sigma**2
        return (math.exp(s2) - 1.0) * math.exp(2.0 * self.mu + s2)

    def pdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if self.sigma == 0.0:
            raise ValueError("pdf undefined for a degenerate (sigma=0) lognormal")
        z = (math.log(x) - self.mu) / self.sigma
        return math.exp(-0.5 * z * z) / (x * self.sigma * _SQRT_2PI)

    def cdf(self, x: float) -> float:
        if x <= 0.0:
            return 0.0
        if self.sigma == 0.0:
            return 1.0 if math.log(x) >= self.mu else 0.0
        z = (math.log(x) - self.mu) / (self.sigma * _SQRT_2)
        return 0.5 * (1.0 + math.erf(z))

    def quantile(self, p: float) -> float:
        if not 0.0 < p < 1.0:
            raise ValueError(f"p must be in (0, 1), got {p}")
        return math.exp(self.mu + self.sigma * _normal_quantile(p))


def _normal_quantile(p: float) -> float:
    """Inverse CDF of the standard normal (Acklam's rational approximation).

    Accurate to about 1e-9 over (0, 1), which is far below the statistical
    noise of anything in this package.  Implemented locally so the module has
    no scipy dependency and can be used from lightweight contexts.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Coefficients for the central and tail rational approximations.
    a = (-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
         1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
         6.680131188771972e+01, -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
         -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
         3.754408661907416e+00)
    p_low = 0.02425
    if p < p_low:
        q = math.sqrt(-2.0 * math.log(p))
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    if p > 1.0 - p_low:
        q = math.sqrt(-2.0 * math.log(1.0 - p))
        return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) / (
            (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
    q = p - 0.5
    r = q * q
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q / (
        ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0)


def lognormal_pdf(x: float, mu: float = 0.0, sigma: float = 1.0) -> float:
    """Density of a lognormal at ``x`` (convenience wrapper)."""
    return LognormalSpec(mu, sigma).pdf(x)


def lognormal_median(mu: float = 0.0, sigma: float = 1.0) -> float:
    return LognormalSpec(mu, sigma).median


def lognormal_mean(mu: float = 0.0, sigma: float = 1.0) -> float:
    return LognormalSpec(mu, sigma).mean


def lognormal_mode(mu: float = 0.0, sigma: float = 1.0) -> float:
    return LognormalSpec(mu, sigma).mode


def confidence_factors(sigma: float, confidence: float = 0.90) -> tuple[float, float]:
    """Multiplicative confidence-interval factors ``(yl, yh)``.

    Given the residual log-SD ``sigma`` (the paper's ``sigma_epsilon``) and a
    confidence level, return the factors such that the interval
    ``(yl * eff, yh * eff)`` contains the actual effort with the requested
    probability.  This is the mapping plotted in Figures 3 and 4; e.g.,
    ``confidence_factors(0.45)`` is approximately ``(0.5, 2.1)``.
    """
    if sigma < 0.0:
        raise ValueError(f"sigma must be non-negative, got {sigma}")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    z = _normal_quantile(0.5 + confidence / 2.0)
    return math.exp(-z * sigma), math.exp(z * sigma)


def confidence_interval(
    estimate: float, sigma: float, confidence: float = 0.90
) -> tuple[float, float]:
    """Confidence interval for an actual effort given its median estimate."""
    if estimate < 0.0:
        raise ValueError(f"estimate must be non-negative, got {estimate}")
    yl, yh = confidence_factors(sigma, confidence)
    return yl * estimate, yh * estimate


def median_to_mean_factor(sigma_epsilon: float, sigma_rho: float = 0.0) -> float:
    """Equation 4: factor converting the median effort to the mean effort.

    The fitted model predicts the *median* design effort; multiplying by
    ``exp((sigma_epsilon^2 + sigma_rho^2) / 2)`` yields the mean.
    """
    if sigma_epsilon < 0.0 or sigma_rho < 0.0:
        raise ValueError("standard deviations must be non-negative")
    return math.exp((sigma_epsilon**2 + sigma_rho**2) / 2.0)
