"""Generic NLME fitting via Laplace / adaptive Gauss-Hermite quadrature.

:mod:`repro.stats.nlme` exploits the fact that the paper's random effect is
*additive* on the log scale, which makes the marginal likelihood exact.
Tools like SAS ``PROC NLMIXED`` do not assume that structure: they
approximate the per-group integral over the random effect numerically.  This
module implements that general approach -- a Laplace approximation refined by
adaptive Gauss-Hermite quadrature (AGHQ) -- for models where the scalar
random effect ``b_i`` may enter the mean function *nonlinearly*.

On the paper's model the integrand is exactly Gaussian in ``b``, so the
Laplace approximation is exact and this fitter must agree with
:func:`repro.stats.nlme.fit_nlme`; the test suite checks that.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize
from scipy.special import roots_hermite

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.fittrace import FitTrace, maybe_fit_trace
from repro.stats.criteria import FitCriteria
from repro.stats.grouping import GroupedData

_LOG_2PI = math.log(2.0 * math.pi)
_LOG_W_BOUNDS = (-35.0, 15.0)
_LOG_SIGMA_BOUNDS = (-8.0, 4.0)

# Optimizer indirection for the fault-injection harness (see
# repro.runtime.faultinject); only the top-level fit goes through this,
# not the inner per-group mode searches.
_MINIMIZE = optimize.minimize

# Mean function signature: (weights, metric rows, random effect b) -> means
# on the log-effort scale for those rows.
MeanFunction = Callable[[np.ndarray, np.ndarray, float], np.ndarray]


def additive_log_mean(w: np.ndarray, metrics: np.ndarray, b: float) -> np.ndarray:
    """The paper's mean function: ``log(sum_k w_k m_k) + b``."""
    return np.log(metrics @ w) + b


@dataclass(frozen=True)
class LaplaceFit:
    """Result of a Laplace/AGHQ mixed-effects fit."""

    weights: np.ndarray
    sigma_eps: float
    sigma_rho: float
    loglik: float
    random_effects: dict[str, float]
    productivities: dict[str, float]
    metric_names: tuple[str, ...]
    n_obs: int
    n_quadrature: int
    converged: bool = True

    @property
    def n_params(self) -> int:
        return len(self.weights) + 2

    @property
    def criteria(self) -> FitCriteria:
        return FitCriteria(loglik=self.loglik, n_params=self.n_params, n_obs=self.n_obs)


def _group_loglik(
    y: np.ndarray,
    metrics: np.ndarray,
    w: np.ndarray,
    s2e: float,
    sigma_rho: float,
    mean_fn: MeanFunction,
    nodes: np.ndarray,
    log_weights: np.ndarray,
) -> tuple[float, float]:
    """Marginal log-likelihood contribution of one group, plus the mode b*."""
    n_i = y.shape[0]

    def h(b: float) -> float:
        mu = mean_fn(w, metrics, b)
        r = y - mu
        data_ll = -0.5 * (n_i * (_LOG_2PI + math.log(s2e)) + float(r @ r) / s2e)
        prior_ll = -0.5 * (_LOG_2PI + 2.0 * math.log(sigma_rho) + (b / sigma_rho) ** 2)
        return data_ll + prior_ll

    span = 8.0 * sigma_rho + 2.0
    res = optimize.minimize_scalar(
        lambda b: -h(b), bounds=(-span, span), method="bounded",
        options={"xatol": 1e-10},
    )
    b_star = float(res.x)
    # Numeric second derivative of h at the mode.
    step = max(1e-4, 1e-4 * sigma_rho)
    h0 = h(b_star)
    hpp = (h(b_star + step) - 2.0 * h0 + h(b_star - step)) / step**2
    if hpp >= 0.0:
        # Flat or ill-conditioned curvature: fall back to the prior scale.
        hpp = -1.0 / sigma_rho**2
    scale = 1.0 / math.sqrt(-hpp)
    if nodes.shape[0] == 1:
        # Pure Laplace approximation.
        return h0 + 0.5 * math.log(2.0 * math.pi) + math.log(scale), b_star
    # Adaptive Gauss-Hermite: integrate exp(h(b)) with nodes recentered at
    # the mode and rescaled by the local curvature.
    shifted = b_star + math.sqrt(2.0) * scale * nodes
    terms = np.array([h(b) for b in shifted]) + nodes**2 + log_weights
    m = float(np.max(terms))
    integral = m + math.log(float(np.sum(np.exp(terms - m))))
    return integral + 0.5 * math.log(2.0) + math.log(scale), b_star


def _marginal_nll(
    theta: np.ndarray,
    y: np.ndarray,
    metrics: np.ndarray,
    groups: list[tuple[str, np.ndarray]],
    mean_fn: MeanFunction,
    nodes: np.ndarray,
    log_weights: np.ndarray,
) -> float:
    k = metrics.shape[1]
    w = np.exp(theta[:k])
    s2e = math.exp(2.0 * theta[k])
    sigma_rho = math.exp(theta[k + 1])
    total = 0.0
    for _, idx in groups:
        ll_i, _ = _group_loglik(
            y[idx], metrics[idx, :], w, s2e, sigma_rho, mean_fn, nodes, log_weights
        )
        total += ll_i
    return -total


def fit_nlme_laplace(
    data: GroupedData,
    mean_fn: MeanFunction = additive_log_mean,
    n_quadrature: int = 9,
    start: np.ndarray | None = None,
    seed: int = 20050101,
    fit_trace: FitTrace | None = None,
) -> LaplaceFit:
    """Fit a scalar-random-effect NLME by Laplace/AGHQ marginal likelihood.

    Args:
        data: grouped dataset.
        mean_fn: mean of ``log(effort)`` given weights, metric rows, and the
            group's random effect ``b``; defaults to the paper's model.
        n_quadrature: Gauss-Hermite node count; 1 selects the pure Laplace
            approximation.
        start: optional starting ``theta = (log w, log sigma_eps,
            log sigma_rho)``; when omitted, heuristic starts are used.
        seed: RNG seed for randomized extra starts.
    """
    if n_quadrature < 1:
        raise ValueError(f"n_quadrature must be >= 1, got {n_quadrature}")
    if len(data.group_names) < 2:
        raise ValueError("the mixed-effects model needs at least two teams")
    y = data.log_efforts
    metrics = data.metrics
    groups = list(data.group_indices().items())
    k = metrics.shape[1]
    if n_quadrature == 1:
        nodes = np.zeros(1)
        log_weights = np.zeros(1)
    else:
        nodes, gh_weights = roots_hermite(n_quadrature)
        log_weights = np.log(gh_weights)

    rng = np.random.default_rng(seed)
    resid_sd = max(float(np.std(y)), 0.05)
    u0 = np.array(
        [float(np.mean(y - np.log(metrics[:, j]))) - math.log(k) for j in range(k)]
    )
    base = np.concatenate(
        [u0, [math.log(max(resid_sd * 0.7, 1e-3)), math.log(max(resid_sd * 0.5, 1e-3))]]
    )
    starts = [base] if start is None else [np.asarray(start, dtype=float)]
    if start is None:
        for _ in range(3):
            starts.append(base + rng.normal(scale=0.8, size=k + 2))

    args = (y, metrics, groups, mean_fn, nodes, log_weights)
    with obs_trace.span(
        "fit.laplace-aghq", n_obs=data.n_observations, n_quadrature=n_quadrature
    ):
        # The quadrature NLL runs a mode search per group per evaluation;
        # finite-difference gradient rows would dominate the fit, so the
        # auto-created trace records objective and step only.
        trace_sink = maybe_fit_trace(
            "laplace-aghq", fit_trace, record_gradients=False
        )

        def nll_at(theta: np.ndarray) -> float:
            return _marginal_nll(theta, *args)

        iters = obs_metrics.counter("fit.laplace-aghq.iterations")
        evals = obs_metrics.counter("fit.laplace-aghq.loglik_evals")
        best: optimize.OptimizeResult | None = None
        for start_index, theta0 in enumerate(starts):
            res = _MINIMIZE(
                _marginal_nll,
                theta0,
                args=args,
                method="Nelder-Mead",
                options={"xatol": 1e-8, "fatol": 1e-10, "maxiter": 20000},
                callback=(
                    trace_sink.watch(nll_at, start_index) if trace_sink is not None else None
                ),
            )
            iters.inc(int(getattr(res, "nit", 0)))
            evals.inc(int(getattr(res, "nfev", 0)))
            if best is None or res.fun < best.fun:
                best = res
        assert best is not None

    theta = best.x
    w = np.exp(theta[:k])
    sigma_eps = math.exp(theta[k])
    sigma_rho = math.exp(theta[k + 1])
    blups: dict[str, float] = {}
    for name, idx in groups:
        _, b_star = _group_loglik(
            y[idx], metrics[idx, :], w, sigma_eps**2, sigma_rho,
            mean_fn, nodes, log_weights,
        )
        blups[name] = b_star
    return LaplaceFit(
        weights=w,
        sigma_eps=sigma_eps,
        sigma_rho=sigma_rho,
        loglik=-float(best.fun),
        random_effects=blups,
        productivities={g: math.exp(-b) for g, b in blups.items()},
        metric_names=data.metric_names,
        n_obs=data.n_observations,
        n_quadrature=n_quadrature,
        converged=bool(best.success),
    )
