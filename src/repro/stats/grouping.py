"""Containers for grouped regression data.

Every data point in the uComplexity regression is a component ``j`` designed
by team (project) ``i``; the team label is the grouping variable of the
random productivity effect.  :class:`GroupedData` is the numeric container
all the fitters in this package consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class GroupedData:
    """A grouped nonlinear-regression dataset.

    Attributes:
        efforts: reported design efforts (person-months), strictly positive,
            shape ``(n,)``.
        metrics: metric matrix, shape ``(n, k)``; column order matches
            ``metric_names``.  All entries must be strictly positive because
            the model takes ``log(sum_k w_k * m_k)``.
        groups: team label for each observation, shape ``(n,)``.
        metric_names: column labels (defaults to ``m0..m{k-1}``).
        labels: optional per-observation labels (component names).
    """

    efforts: np.ndarray
    metrics: np.ndarray
    groups: tuple[str, ...]
    metric_names: tuple[str, ...] = ()
    labels: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        efforts = np.asarray(self.efforts, dtype=float)
        metrics = np.asarray(self.metrics, dtype=float)
        if metrics.ndim == 1:
            metrics = metrics.reshape(-1, 1)
        object.__setattr__(self, "efforts", efforts)
        object.__setattr__(self, "metrics", metrics)
        n = efforts.shape[0]
        if metrics.shape[0] != n:
            raise ValueError(
                f"metrics has {metrics.shape[0]} rows but there are {n} efforts"
            )
        if len(self.groups) != n:
            raise ValueError(f"got {len(self.groups)} groups for {n} observations")
        if n == 0:
            raise ValueError("dataset is empty")
        if np.any(efforts <= 0.0) or not np.all(np.isfinite(efforts)):
            raise ValueError("efforts must be finite and strictly positive")
        if np.any(metrics <= 0.0) or not np.all(np.isfinite(metrics)):
            raise ValueError(
                "metrics must be finite and strictly positive; floor zero-valued "
                "metrics (e.g. a component with no flip-flops) before fitting"
            )
        if not self.metric_names:
            names = tuple(f"m{k}" for k in range(metrics.shape[1]))
            object.__setattr__(self, "metric_names", names)
        elif len(self.metric_names) != metrics.shape[1]:
            raise ValueError(
                f"{len(self.metric_names)} metric names for "
                f"{metrics.shape[1]} metric columns"
            )
        if self.labels and len(self.labels) != n:
            raise ValueError(f"got {len(self.labels)} labels for {n} observations")

    @property
    def n_observations(self) -> int:
        return self.efforts.shape[0]

    @property
    def n_metrics(self) -> int:
        return self.metrics.shape[1]

    @property
    def group_names(self) -> tuple[str, ...]:
        """Distinct group labels, in first-appearance order."""
        seen: dict[str, None] = {}
        for g in self.groups:
            seen.setdefault(g, None)
        return tuple(seen)

    @property
    def log_efforts(self) -> np.ndarray:
        return np.log(self.efforts)

    def group_indices(self) -> dict[str, np.ndarray]:
        """Indices of the observations belonging to each group."""
        out: dict[str, list[int]] = {}
        for idx, g in enumerate(self.groups):
            out.setdefault(g, []).append(idx)
        return {g: np.asarray(ix, dtype=int) for g, ix in out.items()}

    def select_metrics(self, names: Sequence[str]) -> "GroupedData":
        """A new dataset restricted to the named metric columns (in order)."""
        missing = [n for n in names if n not in self.metric_names]
        if missing:
            raise KeyError(f"unknown metrics: {missing}")
        cols = [self.metric_names.index(n) for n in names]
        return GroupedData(
            efforts=self.efforts,
            metrics=self.metrics[:, cols],
            groups=self.groups,
            metric_names=tuple(names),
            labels=self.labels,
        )

    def drop_observations(self, indices: Iterable[int]) -> "GroupedData":
        """A new dataset without the given observation indices."""
        drop = set(int(i) for i in indices)
        bad = [i for i in drop if not 0 <= i < self.n_observations]
        if bad:
            raise IndexError(f"observation indices out of range: {bad}")
        keep = [i for i in range(self.n_observations) if i not in drop]
        if not keep:
            raise ValueError("dropping all observations leaves an empty dataset")
        return GroupedData(
            efforts=self.efforts[keep],
            metrics=self.metrics[keep, :],
            groups=tuple(self.groups[i] for i in keep),
            metric_names=self.metric_names,
            labels=tuple(self.labels[i] for i in keep) if self.labels else (),
        )


def floor_metrics(values: np.ndarray, floor: float = 1.0) -> np.ndarray:
    """Clamp metric values up to ``floor``.

    A handful of published metric values are zero (e.g. the flip-flop count
    of IVM-Decode), which the multiplicative model cannot represent; the
    conventional fix is to clamp to the smallest meaningful measurement.
    """
    if floor <= 0.0:
        raise ValueError(f"floor must be positive, got {floor}")
    values = np.asarray(values, dtype=float)
    return np.maximum(values, floor)
