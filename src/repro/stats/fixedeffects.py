"""The model without productivity adjustments (Section 3.2).

Setting ``rho_i = 1`` for every team removes the random effect, and the
log-scale model becomes an ordinary nonlinear regression::

    y_ij = log(sum_k w_k * m_ijk) + e_ij,   e ~ N(0, sigma_eps^2)

Maximum likelihood reduces to least squares on the log residuals with
``sigma_eps^2 = RSS / n`` (the ML variance estimate, matching what the
mixed-effects fit degenerates to as ``sigma_rho -> 0``).  The paper uses
this model only to show that dropping the productivity adjustment loses a
significant amount of accuracy (the last row of Table 4).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy import optimize

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.fittrace import FitTrace, maybe_fit_trace
from repro.stats.criteria import FitCriteria
from repro.stats.grouping import GroupedData
from repro.stats.lognormal import confidence_interval

_LOG_2PI = math.log(2.0 * math.pi)
_LOG_W_BOUNDS = (-35.0, 15.0)


@dataclass(frozen=True)
class FixedEffectsFit:
    """Result of the rho=1 (no productivity adjustment) fit."""

    weights: np.ndarray
    sigma_eps: float
    loglik: float
    metric_names: tuple[str, ...]
    n_obs: int
    converged: bool = True

    @property
    def n_params(self) -> int:
        """Weights plus sigma_eps."""
        return len(self.weights) + 1

    @property
    def criteria(self) -> FitCriteria:
        return FitCriteria(loglik=self.loglik, n_params=self.n_params, n_obs=self.n_obs)

    @property
    def aic(self) -> float:
        return self.criteria.aic

    @property
    def bic(self) -> float:
        return self.criteria.bic

    def predict_median(self, metrics: np.ndarray) -> np.ndarray:
        metrics = np.atleast_2d(np.asarray(metrics, dtype=float))
        if metrics.shape[1] != len(self.weights):
            raise ValueError(
                f"metrics have {metrics.shape[1]} columns, fit has "
                f"{len(self.weights)} weights"
            )
        return metrics @ self.weights

    def prediction_interval(
        self, metrics: np.ndarray, confidence: float = 0.90
    ) -> list[tuple[float, float]]:
        medians = self.predict_median(metrics)
        return [confidence_interval(m, self.sigma_eps, confidence) for m in medians]


def _rss(u: np.ndarray, y: np.ndarray, metrics: np.ndarray) -> float:
    r = y - np.log(metrics @ np.exp(u))
    return float(r @ r)


def fit_fixed_effects(
    data: GroupedData,
    n_random_starts: int = 8,
    seed: int = 20050101,
    fit_trace: FitTrace | None = None,
) -> FixedEffectsFit:
    """Fit the rho=1 model by maximum likelihood (nonlinear least squares)."""
    y = data.log_efforts
    metrics = data.metrics
    n, k = metrics.shape
    rng = np.random.default_rng(seed)
    bounds = [_LOG_W_BOUNDS] * k

    u_balanced = np.array(
        [float(np.mean(y - np.log(metrics[:, j]))) - math.log(k) for j in range(k)]
    )
    starts = [u_balanced]
    for j in range(k):
        u = np.full(k, u_balanced[j] - 6.0)
        u[j] = float(np.mean(y - np.log(metrics[:, j])))
        starts.append(u)
    for _ in range(n_random_starts):
        starts.append(u_balanced + rng.normal(scale=1.5, size=k))

    with obs_trace.span("fit.fixed-effects", n_obs=n, n_metrics=k):
        # The objective is an RSS, not a log-likelihood, so trace rows
        # carry it as a bare objective (no loglik field).
        trace_sink = maybe_fit_trace(
            "fixed-effects", fit_trace, objective_is_nll=False
        )

        def rss_at(u: np.ndarray) -> float:
            return _rss(u, y, metrics)

        iters = obs_metrics.counter("fit.fixed-effects.iterations")
        evals = obs_metrics.counter("fit.fixed-effects.loglik_evals")
        best: optimize.OptimizeResult | None = None
        for start_index, u0 in enumerate(starts):
            u0 = np.clip(u0, _LOG_W_BOUNDS[0], _LOG_W_BOUNDS[1])
            res = optimize.minimize(
                _rss, u0, args=(y, metrics), method="L-BFGS-B", bounds=bounds,
                callback=(
                    trace_sink.watch(rss_at, start_index) if trace_sink is not None else None
                ),
            )
            iters.inc(int(getattr(res, "nit", 0)))
            evals.inc(int(getattr(res, "nfev", 0)))
            if best is None or res.fun < best.fun:
                best = res
        assert best is not None
        polish = optimize.minimize(
            _rss,
            best.x,
            args=(y, metrics),
            method="Nelder-Mead",
            options={"xatol": 1e-10, "fatol": 1e-12, "maxiter": 20000},
            callback=(
                trace_sink.watch(rss_at, len(starts)) if trace_sink is not None else None
            ),
        )
        iters.inc(int(getattr(polish, "nit", 0)))
        evals.inc(int(getattr(polish, "nfev", 0)))
        if polish.fun < best.fun:
            best = polish

    w = np.exp(best.x)
    rss = float(best.fun)
    sigma2 = max(rss / n, 1e-12)
    loglik = -0.5 * n * (_LOG_2PI + math.log(sigma2) + 1.0)
    return FixedEffectsFit(
        weights=w,
        sigma_eps=math.sqrt(sigma2),
        loglik=loglik,
        metric_names=data.metric_names,
        n_obs=n,
        converged=bool(best.success),
    )
