"""Model-selection criteria.

The paper reports goodness of fit primarily as ``sigma_epsilon`` but also
quotes Akaike's Information Criterion (AIC) and the Bayesian Information
Criterion (BIC) when comparing DEE1 against single-metric estimators
(Section 5.1.1).  Both are computed from the maximized log-likelihood with
*all* fitted parameters counted (weights plus the two variance components),
matching SAS ``PROC NLMIXED``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def aic(loglik: float, n_params: int) -> float:
    """Akaike's Information Criterion: ``-2 ll + 2 p`` (lower is better)."""
    if n_params < 0:
        raise ValueError(f"n_params must be non-negative, got {n_params}")
    return -2.0 * loglik + 2.0 * n_params


def bic(loglik: float, n_params: int, n_obs: int) -> float:
    """Bayesian Information Criterion: ``-2 ll + p ln(n)`` (lower is better)."""
    if n_params < 0:
        raise ValueError(f"n_params must be non-negative, got {n_params}")
    if n_obs <= 0:
        raise ValueError(f"n_obs must be positive, got {n_obs}")
    return -2.0 * loglik + n_params * math.log(n_obs)


@dataclass(frozen=True)
class FitCriteria:
    """Log-likelihood and the derived information criteria for one fit."""

    loglik: float
    n_params: int
    n_obs: int

    @property
    def aic(self) -> float:
        return aic(self.loglik, self.n_params)

    @property
    def bic(self) -> float:
        return bic(self.loglik, self.n_params, self.n_obs)


def compare_fits(criteria: dict[str, FitCriteria], by: str = "aic") -> list[str]:
    """Rank fit names from best (lowest criterion) to worst.

    ``by`` selects the criterion: ``"aic"``, ``"bic"``, or ``"loglik"``
    (for log-likelihood, higher is better).
    """
    if by == "aic":
        return sorted(criteria, key=lambda name: criteria[name].aic)
    if by == "bic":
        return sorted(criteria, key=lambda name: criteria[name].bic)
    if by == "loglik":
        return sorted(criteria, key=lambda name: -criteria[name].loglik)
    raise ValueError(f"unknown criterion {by!r}; expected aic, bic, or loglik")
