"""Statistics substrate for the uComplexity regression model.

This package replaces the SAS ``PROC NLMIXED`` / R ``nlme`` programs listed
in Appendix A of the paper.  It provides:

* :mod:`repro.stats.lognormal` -- lognormal distribution helpers used for the
  productivity factor ``rho`` and the multiplicative error ``epsilon``
  (Figures 2, 3, and 4 of the paper).
* :mod:`repro.stats.grouping` -- containers for grouped (per-team) data.
* :mod:`repro.stats.nlme` -- the nonlinear mixed-effects fitter.  The paper's
  model, once log-transformed, has an additive normal random intercept per
  team, so the marginal likelihood is available in closed form
  (compound-symmetric covariance); we maximize it exactly.
* :mod:`repro.stats.laplace` -- a generic Laplace / adaptive Gauss-Hermite
  fitter for models where the random effect enters nonlinearly.  On the
  paper's model it must agree with the exact fitter.
* :mod:`repro.stats.fixedeffects` -- the "no productivity adjustment" model
  of Section 3.2 (``rho_i = 1`` for all teams).
* :mod:`repro.stats.criteria` -- log-likelihood based model-selection
  criteria (AIC and BIC, Section 5.1.1).
* :mod:`repro.stats.simulate` -- a generator that draws synthetic datasets
  from the paper's generative model, used to validate the fitters.
* :mod:`repro.stats.robust` -- convergence verification (gradient norm,
  Hessian definiteness, multi-start dispersion) and the fallback chain
  exact-ML -> Laplace/AGHQ -> fixed effects, with degradation recorded.
"""

from repro.stats.bootstrap import BootstrapResult, bootstrap_sigma
from repro.stats.criteria import FitCriteria, aic, bic, compare_fits
from repro.stats.fixedeffects import FixedEffectsFit, fit_fixed_effects
from repro.stats.grouping import GroupedData
from repro.stats.laplace import LaplaceFit, fit_nlme_laplace
from repro.stats.lognormal import (
    LognormalSpec,
    confidence_factors,
    confidence_interval,
    lognormal_mean,
    lognormal_median,
    lognormal_mode,
    lognormal_pdf,
    median_to_mean_factor,
)
from repro.stats.nlme import NlmeFit, fit_nlme
from repro.stats.robust import (
    ConvergenceReport,
    RetryPolicy,
    RobustFitResult,
    fit_nlme_robust,
    verify_nlme_convergence,
)
from repro.stats.simulate import SyntheticDataset, simulate_dataset

__all__ = [
    "BootstrapResult",
    "ConvergenceReport",
    "FitCriteria",
    "FixedEffectsFit",
    "GroupedData",
    "LaplaceFit",
    "LognormalSpec",
    "NlmeFit",
    "RetryPolicy",
    "RobustFitResult",
    "SyntheticDataset",
    "aic",
    "bic",
    "bootstrap_sigma",
    "compare_fits",
    "confidence_factors",
    "confidence_interval",
    "fit_fixed_effects",
    "fit_nlme",
    "fit_nlme_laplace",
    "fit_nlme_robust",
    "lognormal_mean",
    "lognormal_median",
    "lognormal_mode",
    "lognormal_pdf",
    "median_to_mean_factor",
    "simulate_dataset",
    "verify_nlme_convergence",
]
