"""Bootstrap uncertainty for the fitted accuracy figures.

The paper notes that "within the margin of error of our study, any one of
Stmts, LoC, or FanInLC has the same accuracy" but does not quantify that
margin.  This module estimates it: a cluster bootstrap (resampling whole
teams, then components within teams, preserving the grouped structure)
refits the model on each replicate and collects the sigma_eps
distribution.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.stats.grouping import GroupedData
from repro.stats.nlme import fit_nlme


@dataclass(frozen=True)
class BootstrapResult:
    """Distribution of sigma_eps over bootstrap replicates."""

    sigma_eps: float           # point estimate on the original data
    replicates: np.ndarray     # sigma_eps per bootstrap replicate
    confidence: float

    @property
    def interval(self) -> tuple[float, float]:
        alpha = (1.0 - self.confidence) / 2.0
        lo = float(np.quantile(self.replicates, alpha))
        hi = float(np.quantile(self.replicates, 1.0 - alpha))
        return lo, hi

    @property
    def std_error(self) -> float:
        return float(np.std(self.replicates))

    def overlaps(self, other: "BootstrapResult") -> bool:
        """Whether two estimators' accuracy intervals overlap -- the
        'same accuracy within the margin of error' test."""
        a_lo, a_hi = self.interval
        b_lo, b_hi = other.interval
        return a_lo <= b_hi and b_lo <= a_hi


def bootstrap_sigma(
    data: GroupedData,
    n_replicates: int = 200,
    confidence: float = 0.90,
    seed: int = 20050101,
) -> BootstrapResult:
    """Cluster bootstrap of the mixed-effects sigma_eps.

    Each replicate resamples teams with replacement and, within each drawn
    team, components with replacement; replicates with fewer than two
    distinct teams are redrawn (the mixed model needs a grouping spread).
    """
    if n_replicates < 10:
        raise ValueError(f"need at least 10 replicates, got {n_replicates}")
    rng = np.random.default_rng(seed)
    point = fit_nlme(data, n_random_starts=2).sigma_eps
    indices = data.group_indices()
    teams = list(indices)

    sigmas = []
    attempts = 0
    while len(sigmas) < n_replicates:
        attempts += 1
        if attempts > n_replicates * 20:
            raise RuntimeError("bootstrap failed to draw usable replicates")
        drawn = rng.choice(len(teams), size=len(teams), replace=True)
        if len(set(drawn)) < 2:
            continue
        rows: list[int] = []
        groups: list[str] = []
        for clone_id, team_idx in enumerate(drawn):
            team_rows = indices[teams[team_idx]]
            resampled = rng.choice(team_rows, size=len(team_rows), replace=True)
            rows.extend(int(r) for r in resampled)
            # Clones of the same team become distinct groups, each with its
            # own productivity draw -- matching the generative model.
            groups.extend([f"boot{clone_id}"] * len(resampled))
        replicate = GroupedData(
            efforts=data.efforts[rows],
            metrics=data.metrics[rows, :],
            groups=tuple(groups),
            metric_names=data.metric_names,
        )
        try:
            fit = fit_nlme(replicate, n_random_starts=1)
        except Exception:  # singular replicate: redraw
            continue
        sigmas.append(fit.sigma_eps)
    return BootstrapResult(
        sigma_eps=point,
        replicates=np.asarray(sigmas),
        confidence=confidence,
    )
