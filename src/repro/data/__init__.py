"""Canonical datasets shipped with the reproduction.

:mod:`repro.data.paper` embeds the published evaluation data of the paper
(Tables 1, 2, and 4), and :mod:`repro.data.dataset` provides the
:class:`~repro.data.dataset.EffortDataset` container with CSV round-tripping
for user-collected measurement databases (Section 3.1.1 recommends
maintaining one).
"""

from repro.data.dataset import EffortDataset, EffortRecord
from repro.data.paper import (
    DESIGN_CHARACTERISTICS,
    PAPER_COMPONENTS,
    PAPER_SIGMA_EPS,
    PAPER_SIGMA_EPS_NO_RHO,
    SYNTHESIS_METRICS,
    SOFTWARE_METRICS,
    paper_dataset,
)

__all__ = [
    "DESIGN_CHARACTERISTICS",
    "EffortDataset",
    "EffortRecord",
    "PAPER_COMPONENTS",
    "PAPER_SIGMA_EPS",
    "PAPER_SIGMA_EPS_NO_RHO",
    "SOFTWARE_METRICS",
    "SYNTHESIS_METRICS",
    "paper_dataset",
]
