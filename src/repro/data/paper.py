"""The published evaluation data of the paper.

This module embeds, verbatim, the data the paper prints:

* Table 1 -- characteristics of the four designs;
* Table 2 / Table 4 column 2 -- reported design effort in person-months;
* Table 4 -- the value of every metric for every component, plus the
  published ``sigma_epsilon`` accuracy figures for the mixed-effects model
  (penultimate row) and for the model without productivity adjustment
  (last row, ``rho_i = 1``).

Note on efforts: Table 2 lists the RAT efforts as 0.3 and 0.5 person-months
while Table 4 lists them as 0.6 and 1.0.  The regression results in the
paper correspond to the Table 4 column, so that is what
:func:`paper_dataset` uses; both values are preserved here.
"""

from __future__ import annotations

from repro.data.dataset import EffortDataset, EffortRecord
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

#: Metrics measured from the HDL source text alone (Table 3).
SOFTWARE_METRICS: tuple[str, ...] = ("Stmts", "LoC")

#: Metrics that require synthesizing the design (Table 3).
SYNTHESIS_METRICS: tuple[str, ...] = (
    "FanInLC", "Nets", "Freq", "AreaL", "PowerD", "PowerS", "AreaS", "Cells", "FFs",
)

#: All eleven single metrics of Table 3, in the column order of Table 4.
ALL_METRICS: tuple[str, ...] = SOFTWARE_METRICS + SYNTHESIS_METRICS

# Table 4 rows: component, effort, DEE1 (paper's fitted estimate), then the
# eleven metric values in the order Stmts, LoC, FanInLC, Nets, Freq, AreaL,
# PowerD, PowerS, AreaS, Cells, FFs.
_TABLE4_ROWS: tuple[tuple, ...] = (
    ("Leon3", "Pipeline", 24.0, 12.8, 2070, 2814, 10502, 4299, 56, 50199, 80, 409, 68411, 3586, 1062),
    ("Leon3", "Cache", 6.0, 7.3, 1172, 1092, 6325, 1980, 94, 37456, 57, 332, 12556, 3, 210),
    ("Leon3", "MMU", 6.0, 4.4, 721, 1943, 3149, 1130, 84, 60136, 23, 287, 112765, 246, 699),
    ("Leon3", "MemCtrl", 6.0, 5.4, 938, 1421, 2692, 853, 138, 7394, 5, 2, 11938, 704, 275),
    ("PUMA", "Fetch", 3.0, 2.2, 586, 1490, 5192, 1292, 68, 147096, 226, 3513, 555168, 1809, 1786),
    ("PUMA", "Decode", 4.0, 6.2, 1998, 3416, 4724, 5662, 65, 78076, 11, 526, 47604, 5189, 464),
    ("PUMA", "ROB", 4.0, 2.2, 503, 913, 6965, 9840, 41, 82527, 733, 816, 1022, 9709, 922),
    ("PUMA", "Execute", 12.0, 12.6, 3762, 9613, 18260, 10681, 49, 92473, 44, 1370, 119746, 10867, 1725),
    ("PUMA", "Memory", 1.0, 3.3, 976, 2251, 5034, 1089, 60, 43418, 80, 602, 115841, 4337, 1549),
    ("IVM", "Fetch", 10.0, 8.0, 1432, 4972, 15726, 4914, 71, 212663, 8, 2, 135074, 1859, 1661),
    ("IVM", "Decode", 2.0, 1.7, 391, 963, 1044, 504, 104, 2022, 2, 6, 73, 2, 0),
    ("IVM", "Rename", 4.0, 2.7, 566, 2519, 3307, 1134, 159, 70146, 1, 1, 26740, 121, 510),
    ("IVM", "Issue", 4.0, 3.6, 624, 2704, 8063, 4603, 60, 90388, 2, 1, 68667, 3414, 2729),
    ("IVM", "Execute", 3.0, 5.4, 961, 4083, 11045, 4476, 91, 619561, 5, 5, 154655, 940, 0),
    ("IVM", "Memory", 10.0, 11.6, 2240, 5308, 19021, 23247, 54, 267753, 73, 2, 625952, 12050, 2510),
    ("IVM", "Retire", 5.0, 5.0, 1021, 2278, 6635, 3357, 71, 36100, 2, 1, 50375, 1923, 924),
    ("RAT", "Standard", 0.6, 0.7, 64, 250, 3889, 2905, 137, 34254, 4, 275, 17603, 2596, 288),
    ("RAT", "Sliding", 1.0, 1.0, 78, 334, 5586, 4936, 119, 52210, 10, 459, 60713, 4507, 612),
)

#: Published sigma_epsilon per estimator (Table 4, penultimate row).
PAPER_SIGMA_EPS: dict[str, float] = {
    "DEE1": 0.46, "Stmts": 0.50, "LoC": 0.55, "FanInLC": 0.55, "Nets": 0.67,
    "Freq": 0.94, "AreaL": 1.23, "PowerD": 1.34, "PowerS": 1.44,
    "AreaS": 2.07, "Cells": 2.09, "FFs": 2.14,
}

#: Published sigma_epsilon with rho_i = 1 (Table 4, last row).
PAPER_SIGMA_EPS_NO_RHO: dict[str, float] = {
    "DEE1": 0.53, "Stmts": 0.60, "LoC": 0.69, "FanInLC": 0.82, "Nets": 1.08,
    "Freq": 1.12, "AreaL": 1.35, "PowerD": 1.82, "PowerS": 3.21,
    "AreaS": 2.07, "Cells": 2.55, "FFs": 2.18,
}

#: Published no-accounting-procedure sigma_epsilon values quoted in
#: Section 5.3 (the bar chart of Figure 6 is not tabulated; these two are
#: given in the text).
PAPER_SIGMA_EPS_NO_ACCOUNTING: dict[str, float] = {
    "FanInLC": 1.18,
    "Nets": 1.07,
}

#: Published DEE1/Stmts information criteria (Section 5.1.1).
PAPER_AIC: dict[str, float] = {"DEE1": 34.8, "Stmts": 37.0}
PAPER_BIC: dict[str, float] = {"DEE1": 38.4, "Stmts": 39.7}

#: The per-component DEE1 estimates printed in Table 4 (for Figure 5).
PAPER_DEE1_ESTIMATES: dict[str, float] = {
    f"{row[0]}-{row[1]}": float(row[3]) for row in _TABLE4_ROWS
}

#: Table 2 reported efforts (person-months).  RAT values differ from the
#: Table 4 effort column; see the module docstring.
TABLE2_EFFORTS: dict[str, float] = {
    "Leon3-Pipeline": 24, "Leon3-Cache": 6, "Leon3-MMU": 6, "Leon3-MemCtrl": 6,
    "PUMA-Fetch": 3, "PUMA-Decode": 4, "PUMA-ROB": 4, "PUMA-Execute": 12,
    "PUMA-Memory": 1,
    "IVM-Fetch": 10, "IVM-Decode": 2, "IVM-Rename": 4, "IVM-Issue": 4,
    "IVM-Execute": 3, "IVM-Memory": 10, "IVM-Retire": 5,
    "RAT-Standard": 0.3, "RAT-Sliding": 0.5,
}

#: Table 1: characteristics of the processor designs.
DESIGN_CHARACTERISTICS: dict[str, dict[str, object]] = {
    "Leon3": {
        "isa": "Sparc V8", "execution": "In-order", "pipeline_stages": 7,
        "fetch_width": 1, "issue_width": 1, "dispatch_width": 1,
        "retire_width": 1, "branch_predictor": "None", "caches": "Blocking",
        "multiprocessor": True, "hdl": "VHDL-89",
    },
    "PUMA": {
        "isa": "PPC subset", "execution": "Out-of-order", "pipeline_stages": 9,
        "fetch_width": 2, "issue_width": 2, "dispatch_width": 4,
        "retire_width": 2, "branch_predictor": "Gshare", "caches": "Non-block",
        "multiprocessor": False, "hdl": "Verilog-95",
    },
    "IVM": {
        "isa": "Alpha subset", "execution": "Out-of-order", "pipeline_stages": 7,
        "fetch_width": 8, "issue_width": 4, "dispatch_width": 4,
        "retire_width": 8, "branch_predictor": "Tournament",
        "caches": "Not modeled", "multiprocessor": False, "hdl": "Verilog-95",
    },
    "RAT": {
        "isa": "Rename unit (4 inst/cycle)", "execution": "n/a",
        "pipeline_stages": 1, "fetch_width": 4, "issue_width": 4,
        "dispatch_width": 4, "retire_width": 4, "branch_predictor": "n/a",
        "caches": "n/a", "multiprocessor": False, "hdl": "Verilog-2001",
    },
}

#: Component labels in Table 4 row order.
PAPER_COMPONENTS: tuple[str, ...] = tuple(
    f"{team}-{comp}" for team, comp, *_ in _TABLE4_ROWS
)


def paper_dataset() -> EffortDataset:
    """The 18-component evaluation dataset of Table 4.

    Efforts are the Table 4 effort column (the values the published
    ``sigma_epsilon`` figures correspond to).
    """
    with obs_trace.span("dataset.load", source="paper") as sp:
        records = []
        for team, comp, effort, _dee1, *values in _TABLE4_ROWS:
            metrics = dict(zip(ALL_METRICS, (float(v) for v in values)))
            records.append(
                EffortRecord(team=team, component=comp, effort=effort, metrics=metrics)
            )
        obs_metrics.counter("dataset.rows_loaded").inc(len(records))
        sp.set_attr("rows", len(records))
        return EffortDataset(tuple(records))
