"""Effort-measurement dataset container.

Section 3.1.1 of the paper recommends "maintaining a continuously updated
database of component measurements and of reported design efforts" and
periodically re-fitting the model.  :class:`EffortDataset` is that database:
a list of per-component records (team, component, reported effort, metric
values) with CSV round-tripping and conversion to the numeric
:class:`~repro.stats.grouping.GroupedData` the fitters consume.
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

import numpy as np

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic, Result, Severity, SourceSpan
from repro.stats.grouping import GroupedData


@dataclass(frozen=True)
class EffortRecord:
    """One component: who designed it, how long it took, what it measures."""

    team: str
    component: str
    effort: float
    metrics: dict[str, float]

    def __post_init__(self) -> None:
        if not math.isfinite(self.effort):
            raise ValueError(
                f"{self.team}/{self.component}: effort must be a finite "
                f"number of person-months, got {self.effort}"
            )
        if self.effort <= 0.0:
            raise ValueError(
                f"{self.team}/{self.component}: effort must be positive, "
                f"got {self.effort}"
            )
        for name, value in self.metrics.items():
            if not math.isfinite(value):
                raise ValueError(
                    f"{self.team}/{self.component}: metric {name!r} is "
                    f"not finite ({value})"
                )
            if value < 0.0:
                raise ValueError(
                    f"{self.team}/{self.component}: metric {name!r} is negative"
                )

    @property
    def label(self) -> str:
        return f"{self.team}-{self.component}"


@dataclass(frozen=True)
class EffortDataset:
    """An ordered collection of :class:`EffortRecord`."""

    records: tuple[EffortRecord, ...]

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("dataset must contain at least one record")
        seen: set[str] = set()
        for rec in self.records:
            if rec.label in seen:
                raise ValueError(f"duplicate component {rec.label!r}")
            seen.add(rec.label)

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)

    @property
    def teams(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for rec in self.records:
            seen.setdefault(rec.team, None)
        return tuple(seen)

    @property
    def metric_names(self) -> tuple[str, ...]:
        """Metric names present in *every* record, in first-record order."""
        common = set(self.records[0].metrics)
        for rec in self.records[1:]:
            common &= set(rec.metrics)
        return tuple(n for n in self.records[0].metrics if n in common)

    def filter_teams(self, teams: Iterable[str]) -> "EffortDataset":
        keep = set(teams)
        unknown = keep - set(self.teams)
        if unknown:
            raise KeyError(f"unknown teams: {sorted(unknown)}")
        return EffortDataset(tuple(r for r in self.records if r.team in keep))

    def without(self, label: str) -> "EffortDataset":
        """The dataset minus one component (for leave-one-out analyses)."""
        remaining = tuple(r for r in self.records if r.label != label)
        if len(remaining) == len(self.records):
            raise KeyError(f"no component labeled {label!r}")
        return EffortDataset(remaining)

    def record(self, label: str) -> EffortRecord:
        for rec in self.records:
            if rec.label == label:
                return rec
        raise KeyError(f"no component labeled {label!r}")

    def add(self, record: EffortRecord) -> "EffortDataset":
        return EffortDataset(self.records + (record,))

    def to_grouped(
        self, metric_names: Sequence[str], metric_floor: float = 1.0
    ) -> GroupedData:
        """Numeric view over the chosen metric columns.

        Metric values below ``metric_floor`` (notably zeros, which the
        multiplicative model cannot represent) are clamped up to it.
        """
        names = tuple(metric_names)
        if not names:
            raise ValueError("select at least one metric")
        rows = []
        for rec in self.records:
            missing = [n for n in names if n not in rec.metrics]
            if missing:
                raise KeyError(f"{rec.label}: missing metrics {missing}")
            rows.append([max(rec.metrics[n], metric_floor) for n in names])
        return GroupedData(
            efforts=np.asarray([r.effort for r in self.records]),
            metrics=np.asarray(rows, dtype=float),
            groups=tuple(r.team for r in self.records),
            metric_names=names,
            labels=tuple(r.label for r in self.records),
        )

    def to_csv(self, path: str | Path | None = None) -> str:
        """Serialize to CSV; write to ``path`` when given, return the text."""
        names = self.metric_names
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["team", "component", "effort", *names])
        for rec in self.records:
            writer.writerow(
                [rec.team, rec.component, rec.effort]
                + [rec.metrics[n] for n in names]
            )
        text = buf.getvalue()
        if path is not None:
            Path(path).write_text(text, encoding="utf-8")
        return text

    @classmethod
    def from_csv(cls, source: str | Path) -> "EffortDataset":
        """Parse a dataset from CSV text or a file path (fail-fast)."""
        result = cls.from_csv_checked(source, keep_going=False)
        if result.value is None or result.diagnostics:
            first = result.diagnostics[0]
            raise ValueError(first.message)
        return result.value

    @classmethod
    def from_csv_checked(
        cls, source: str | Path, keep_going: bool = False
    ) -> "Result[EffortDataset]":
        """Parse a dataset from CSV with structured row-level diagnostics.

        With ``keep_going`` a malformed row (wrong field count, non-numeric
        value, NaN/zero/negative effort, negative or non-finite metric) is
        quarantined: it becomes an ERROR diagnostic pointing at the CSV
        line, and the remaining rows still form a dataset.  Without it, the
        first bad row fails the whole load (one FATAL diagnostic).
        """
        with obs_trace.span("dataset.load", keep_going=keep_going) as sp:
            result = cls._from_csv_checked(source, keep_going)
            if result.value is not None:
                obs_metrics.counter("dataset.rows_loaded").inc(len(result.value))
                sp.set_attr("rows", len(result.value))
            quarantined = sum(
                1 for d in result.diagnostics if d.severity == Severity.ERROR
            )
            if quarantined:
                obs_metrics.counter("dataset.rows_quarantined").inc(quarantined)
            return result

    @classmethod
    def _from_csv_checked(
        cls, source: str | Path, keep_going: bool
    ) -> "Result[EffortDataset]":
        if isinstance(source, Path) or "\n" not in str(source):
            origin = str(source)
            try:
                text = Path(source).read_text(encoding="utf-8")
            except OSError as exc:
                return Result(
                    None,
                    (
                        Diagnostic(
                            Severity.FATAL, "dataset",
                            f"cannot read dataset: {exc}",
                            span=SourceSpan(origin),
                            hint="check the CSV path",
                        ),
                    ),
                )
        else:
            origin = "<csv>"
            text = str(source)

        reader = csv.reader(io.StringIO(text))
        header = next(reader, None)
        if header is None or header[:3] != ["team", "component", "effort"]:
            return Result(
                None,
                (
                    Diagnostic(
                        Severity.FATAL, "dataset",
                        "CSV must start with header: "
                        "team,component,effort,<metrics...>",
                        span=SourceSpan(origin, 1),
                        hint="the first row names the columns; effort is in "
                             "person-months",
                    ),
                ),
            )
        metric_names = header[3:]
        records: list[EffortRecord] = []
        diagnostics: list[Diagnostic] = []
        for row in reader:
            if not row:
                continue
            line = reader.line_num
            try:
                if len(row) != len(header):
                    raise ValueError(
                        f"row has {len(row)} fields, expected {len(header)}"
                    )
                metrics = {n: float(v) for n, v in zip(metric_names, row[3:])}
                records.append(
                    EffortRecord(
                        team=row[0], component=row[1], effort=float(row[2]),
                        metrics=metrics,
                    )
                )
            except ValueError as exc:
                severity = Severity.ERROR if keep_going else Severity.FATAL
                diagnostics.append(
                    Diagnostic(
                        severity, "dataset", str(exc),
                        span=SourceSpan(origin, line),
                        component=row[0] if len(row) >= 2 else None,
                        hint="fix or drop this row; effort must be a positive "
                             "finite number and metrics non-negative",
                    )
                )
                if not keep_going:
                    return Result(None, tuple(diagnostics))
        if not records:
            diagnostics.append(
                Diagnostic(
                    Severity.FATAL, "dataset",
                    "no usable rows remain after quarantining bad ones",
                    span=SourceSpan(origin),
                )
            )
            return Result(None, tuple(diagnostics))
        return Result(cls(tuple(records)), tuple(diagnostics))

    def validate(self, collinearity_threshold: float = 0.9999) -> tuple[Diagnostic, ...]:
        """Data-quality diagnostics that do not invalidate the dataset.

        Currently checks the shared metric columns for zero variance and
        (near-)collinearity -- both make fitted weights unidentifiable,
        which is exactly the failure mode the convergence verification in
        :mod:`repro.stats.robust` guards against downstream.
        """
        diags: list[Diagnostic] = []
        names = self.metric_names
        if len(self) < 2:
            return tuple(diags)
        columns = {
            n: np.array([max(rec.metrics[n], 1.0) for rec in self.records])
            for n in names
        }
        for n in names:
            if float(np.std(columns[n])) == 0.0:
                diags.append(
                    Diagnostic(
                        Severity.WARNING, "dataset",
                        f"metric column {n!r} is constant across all "
                        "components; its weight is unidentifiable",
                        hint="drop the column or fix the measurements",
                    )
                )
        for i, a in enumerate(names):
            for b in names[i + 1:]:
                ca, cb = columns[a], columns[b]
                if float(np.std(ca)) == 0.0 or float(np.std(cb)) == 0.0:
                    continue
                r = float(np.corrcoef(np.log(ca), np.log(cb))[0, 1])
                if abs(r) >= collinearity_threshold:
                    diags.append(
                        Diagnostic(
                            Severity.WARNING, "dataset",
                            f"metric columns {a!r} and {b!r} are (nearly) "
                            f"collinear (log-scale correlation {r:.6f}); "
                            "their fitted weights are unidentifiable",
                            hint="combine or drop one of the columns before "
                                 "fitting multi-metric estimators",
                        )
                    )
        return tuple(diags)
