"""``ucomplexity serve``: a stdlib-only asyncio HTTP/JSON front end.

The server is deliberately small: HTTP/1.1 with Content-Length framing
and keep-alive, hand-parsed over :func:`asyncio.start_server` -- no
third-party web stack, matching the repo's no-dependency rule.  All
pipeline work happens off-loop in the :class:`~repro.serve.session.
ServeSession` dispatcher thread; the event loop only frames requests and
awaits futures, so ``GET /healthz`` answers instantly even while a batch
of measurements is running.

Routes:

* ``POST /measure``  -- measure one component (inline sources + top).
* ``POST /lint``     -- audit sources against the accounting rules.
* ``POST /estimate`` -- effort estimate from fitted metrics.
* ``GET /healthz``   -- liveness + engine configuration.
* ``GET /metrics``   -- snapshot of the process metrics registry.

Shutdown mirrors the supervisor's drain contract: on SIGINT/SIGTERM the
listener closes and in-flight requests are answered before the process
exits; only when the grace period lapses is the pool interrupted
(:func:`repro.exec.request_interrupt`) and the remainder failed with 503.
"""

from __future__ import annotations

import asyncio
import json
import signal
from dataclasses import dataclass
from typing import Any, Callable

from repro.obs import metrics as obs_metrics
from repro.runtime.diagnostics import EXIT_INTERRUPTED, EXIT_OK
from repro.serve import protocol
from repro.serve.session import ServeSession

_POST_ROUTES = frozenset({"/measure", "/lint", "/estimate"})
_GET_ROUTES = frozenset({"/healthz", "/metrics"})
_MAX_HEADER_BYTES = 64 * 1024


@dataclass(frozen=True)
class ServeConfig:
    """Listener + shutdown settings for one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 8321
    grace_s: float = 30.0
    max_body_bytes: int = 32 * 1024 * 1024


class MeasureServer:
    """One listening socket bound to one :class:`ServeSession`."""

    def __init__(self, session: ServeSession, config: ServeConfig) -> None:
        self.session = session
        self.config = config
        self.port: int | None = None  # resolved once listening (port 0 ok)
        self._draining = False
        self._forced = False
        self._inflight = 0
        self._served = 0
        self._idle: asyncio.Event | None = None
        self._shutdown: asyncio.Event | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # -- lifecycle -------------------------------------------------------------

    async def run(
        self,
        *,
        install_signals: bool = False,
        ready: "Callable[[MeasureServer], None] | None" = None,
    ) -> int:
        """Serve until shutdown is requested; returns a process exit code.

        ``install_signals`` registers SIGINT/SIGTERM drain handlers on the
        loop (the CLI does; in-process tests call
        :meth:`request_shutdown` instead).  ``ready`` fires once the
        socket is bound, with the resolved port available -- the test
        harness and the CLI use it to announce the listen address.
        """
        self._loop = asyncio.get_running_loop()
        self._idle = asyncio.Event()
        self._idle.set()
        self._shutdown = asyncio.Event()
        self.session.start()
        server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )
        self.port = server.sockets[0].getsockname()[1]
        if install_signals:
            for signum in (signal.SIGINT, signal.SIGTERM):
                self._loop.add_signal_handler(
                    signum, self.request_shutdown
                )
        if ready is not None:
            ready(self)
        try:
            await self._shutdown.wait()
            # Drain: stop accepting, let in-flight requests finish.
            self._draining = True
            server.close()
            await server.wait_closed()
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.grace_s
                )
            except asyncio.TimeoutError:
                self._forced = True
        finally:
            for task in list(self._conn_tasks):
                task.cancel()
            if self._conn_tasks:
                await asyncio.gather(
                    *self._conn_tasks, return_exceptions=True
                )
            if install_signals:
                for signum in (signal.SIGINT, signal.SIGTERM):
                    self._loop.remove_signal_handler(signum)
            clean = self.session.stop(self.config.grace_s)
            if not clean:
                self._forced = True
        return EXIT_INTERRUPTED if self._forced else EXIT_OK

    def request_shutdown(self) -> None:
        """Begin the drain; safe to call from any thread or a signal handler."""
        if self._loop is None or self._shutdown is None:
            return
        self._loop.call_soon_threadsafe(self._shutdown.set)

    # -- connection handling ---------------------------------------------------

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
            task.add_done_callback(self._conn_tasks.discard)
        try:
            while True:
                request = await self._read_request(reader, writer)
                if request is None:
                    break
                method, path, body, close_requested = request
                status, payload = await self._route(method, path, body)
                rid = payload.get("request_id") if isinstance(
                    payload, dict
                ) else None
                keep_alive = not self._draining and not close_requested
                self._write_response(
                    writer, status, protocol.encode(payload),
                    request_id=rid, keep_alive=keep_alive,
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.CancelledError,
            ConnectionError,
            asyncio.IncompleteReadError,
        ):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> tuple[str, str, bytes, bool] | None:
        """One framed request, or None when the client is done / hopeless."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            self._write_response(
                writer, 431,
                protocol.encode({"error": "headers too large"}),
                keep_alive=False,
            )
            await writer.drain()
            return None
        if len(head) > _MAX_HEADER_BYTES:
            return None
        lines = head.decode("latin-1").split("\r\n")
        parts = lines[0].split(" ")
        if len(parts) != 3:
            self._write_response(
                writer, 400,
                protocol.encode({"error": "malformed request line"}),
                keep_alive=False,
            )
            await writer.drain()
            return None
        method, path, _version = parts
        headers: dict[str, str] = {}
        for line in lines[1:]:
            if not line:
                continue
            key, _, value = line.partition(":")
            headers[key.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            length = -1
        if length < 0 or length > self.config.max_body_bytes:
            self._write_response(
                writer, 413,
                protocol.encode({"error": "request body too large"}),
                keep_alive=False,
            )
            await writer.drain()
            return None
        body = await reader.readexactly(length) if length else b""
        close_requested = headers.get("connection", "").lower() == "close"
        return method, path.split("?", 1)[0], body, close_requested

    # -- routing ---------------------------------------------------------------

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, dict[str, Any]]:
        if path in _GET_ROUTES:
            if method != "GET":
                return protocol.error_response(
                    protocol.STATUS_METHOD_NOT_ALLOWED,
                    f"{path} only supports GET",
                )
            return 200, (
                self._healthz() if path == "/healthz" else self._metrics()
            )
        if path not in _POST_ROUTES:
            return protocol.error_response(
                protocol.STATUS_NOT_FOUND, f"no such endpoint: {path}"
            )
        if method != "POST":
            return protocol.error_response(
                protocol.STATUS_METHOD_NOT_ALLOWED,
                f"{path} only supports POST",
            )
        if self._draining:
            return protocol.error_response(
                protocol.STATUS_UNAVAILABLE, "server shutting down"
            )
        try:
            parsed = json.loads(body.decode("utf-8")) if body else None
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return protocol.error_response(
                protocol.STATUS_BAD_REQUEST, f"invalid JSON body: {exc}"
            )
        self._inflight += 1
        self._idle.clear()
        try:
            _rid, future = self.session.submit(path.lstrip("/"), parsed)
            return await asyncio.wrap_future(future)
        finally:
            self._inflight -= 1
            self._served += 1
            if self._inflight == 0:
                self._idle.set()

    def _healthz(self) -> dict[str, Any]:
        return {
            "status": "draining" if self._draining else "ok",
            "engine": self.session.engine.stats(),
            "inflight": self._inflight,
            "served": self._served,
        }

    def _metrics(self) -> dict[str, Any]:
        return {
            "metrics": obs_metrics.snapshot(),
            "server": {
                "inflight": self._inflight,
                "served": self._served,
                "queued": self.session.pending(),
                "draining": self._draining,
            },
        }

    # -- response writing ------------------------------------------------------

    def _write_response(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: bytes,
        *,
        request_id: str | None = None,
        keep_alive: bool = True,
    ) -> None:
        head = [
            f"HTTP/1.1 {status} {protocol.reason(status)}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep_alive else 'close'}",
        ]
        if request_id:
            head.append(f"X-Request-Id: {request_id}")
        writer.write(
            ("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + body
        )


def serve_forever(
    session: ServeSession,
    config: ServeConfig,
    *,
    ready: "Callable[[MeasureServer], None] | None" = None,
) -> int:
    """Blocking entry point used by the CLI: run one server to completion."""
    server = MeasureServer(session, config)
    return asyncio.run(server.run(install_signals=True, ready=ready))
