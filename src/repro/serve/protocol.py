"""The serve daemon's wire protocol: JSON requests, canonical responses.

Everything the server says on the wire is defined here, so the e2e suite
can build the *expected* bytes for a request by running the same pipeline
entry point in-process and encoding the result with the same functions --
"concurrent server responses are byte-identical to single-shot CLI
output" is checked literally, as a byte comparison.

Two wire-format rules make that possible:

* **Canonical JSON.**  :func:`encode` renders every response body with
  sorted keys and fixed separators; two equal payloads always produce
  equal bytes.
* **No run-dependent fields.**  ``Diagnostic.span_id`` pairs a diagnostic
  with a trace span of *this* run; it is deliberately excluded from
  :func:`diagnostic_to_wire` (the trace id in the response envelope is
  the cross-reference instead).

Status mapping: the CLI's 0/1/2 exit contract
(:func:`repro.runtime.diagnostics.exit_code`) maps onto HTTP as
0 -> 200 (clean), 1 -> 422 (degraded: the measurement ran but inputs
were quarantined), 2 -> 500 (fatal: no usable result).  Malformed
requests are 400, unknown paths 404, wrong methods 405, and requests
arriving (or aborted) during shutdown 503.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping, Sequence

from repro.core.accounting import AccountingPolicy
from repro.core.workflow import ComponentMeasurement, ComponentSpec
from repro.hdl.source import SourceFile
from repro.runtime.diagnostics import (
    EXIT_DEGRADED,
    EXIT_FATAL,
    EXIT_OK,
    Diagnostic,
    Result,
    exit_code,
)

#: exit code -> HTTP status for the three measurement outcomes.
STATUS_BY_EXIT = {EXIT_OK: 200, EXIT_DEGRADED: 422, EXIT_FATAL: 500}

#: Non-measurement statuses.
STATUS_BAD_REQUEST = 400
STATUS_NOT_FOUND = 404
STATUS_METHOD_NOT_ALLOWED = 405
STATUS_UNAVAILABLE = 503

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    422: "Unprocessable Entity",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def reason(status: int) -> str:
    return _REASONS.get(status, "Unknown")


class ProtocolError(ValueError):
    """A malformed request; rendered as a 400 with this message."""


def encode(payload: Mapping[str, Any]) -> bytes:
    """Canonical response encoding: sorted keys, compact, newline-terminated."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


# -- wire renderings ----------------------------------------------------------


def diagnostic_to_wire(diag: Diagnostic) -> dict[str, Any]:
    """One diagnostic as JSON; ``span_id`` (run-dependent) is excluded.

    ``rendered`` is the exact text the CLI prints for this diagnostic
    (:meth:`Diagnostic.render`), hint line included, so server clients and
    CLI users read identical messages.
    """
    return {
        "severity": diag.severity.label,
        "stage": diag.stage,
        "message": diag.message,
        "component": diag.component,
        "hint": diag.hint,
        "span": None if diag.span is None else {
            "file": diag.span.file,
            "line": diag.span.line,
            "end_line": diag.span.end_line,
        },
        "rendered": diag.render(),
    }


def measurement_to_wire(m: ComponentMeasurement) -> dict[str, Any]:
    """A component measurement as JSON (metrics + measured specializations)."""
    return {
        "name": m.name,
        "top": m.top,
        "policy": {
            "count_each_component_once": m.policy.count_each_component_once,
            "minimize_parameters": m.policy.minimize_parameters,
        },
        "metrics": {k: float(v) for k, v in sorted(m.metrics.items())},
        "specializations": [
            [module, {k: int(v) for k, v in sorted(params.items())}]
            for module, params in m.specializations
        ],
    }


# -- request parsing ----------------------------------------------------------


def _require_dict(body: Any) -> dict:
    if not isinstance(body, dict):
        raise ProtocolError("request body must be a JSON object")
    return body


def _parse_files(body: dict) -> list[SourceFile]:
    files = body.get("files")
    if not isinstance(files, list) or not files:
        raise ProtocolError('"files" must be a non-empty list')
    sources: list[SourceFile] = []
    for i, entry in enumerate(files):
        if not isinstance(entry, dict):
            raise ProtocolError(f'"files[{i}]" must be an object')
        fname = entry.get("name")
        text = entry.get("text")
        if not isinstance(fname, str) or not fname:
            raise ProtocolError(f'"files[{i}].name" must be a non-empty string')
        if not isinstance(text, str):
            raise ProtocolError(f'"files[{i}].text" must be a string')
        sources.append(SourceFile(fname, text))
    return sources


def _parse_flag(body: dict, key: str, default: bool = False) -> bool:
    value = body.get(key, default)
    if not isinstance(value, bool):
        raise ProtocolError(f'"{key}" must be a boolean')
    return value


@dataclass(frozen=True)
class MeasureRequest:
    """A validated ``POST /measure`` body."""

    spec: ComponentSpec
    strict: bool
    lint: bool


def parse_measure_request(body: Any) -> MeasureRequest:
    body = _require_dict(body)
    sources = _parse_files(body)
    top = body.get("top")
    if not isinstance(top, str) or not top:
        raise ProtocolError('"top" must be a non-empty string')
    name = body.get("name", top)
    if not isinstance(name, str) or not name:
        raise ProtocolError('"name" must be a non-empty string')
    accounting = _parse_flag(body, "accounting", True)
    policy = (
        AccountingPolicy.recommended() if accounting
        else AccountingPolicy.disabled()
    )
    return MeasureRequest(
        spec=ComponentSpec(
            name=name, sources=tuple(sources), top=top, policy=policy,
        ),
        strict=_parse_flag(body, "strict"),
        lint=_parse_flag(body, "lint"),
    )


@dataclass(frozen=True)
class LintRequest:
    """A validated ``POST /lint`` body."""

    sources: tuple[SourceFile, ...]
    only: tuple[str, ...] | None
    disable: tuple[str, ...]
    strict: bool


def _parse_codes(body: dict, key: str) -> tuple[str, ...] | None:
    value = body.get(key)
    if value is None:
        return None
    if isinstance(value, str):
        value = [c for c in value.split(",") if c]
    if not isinstance(value, list) or not all(
        isinstance(c, str) for c in value
    ):
        raise ProtocolError(f'"{key}" must be a list of rule codes')
    return tuple(value)


def parse_lint_request(body: Any) -> LintRequest:
    body = _require_dict(body)
    return LintRequest(
        sources=tuple(_parse_files(body)),
        only=_parse_codes(body, "rules"),
        disable=_parse_codes(body, "disable") or (),
        strict=_parse_flag(body, "strict"),
    )


@dataclass(frozen=True)
class EstimateRequest:
    """A validated ``POST /estimate`` body."""

    metrics: dict[str, float]
    team: str | None
    dataset_csv: str | None
    keep_going: bool
    strict: bool


def parse_estimate_request(body: Any) -> EstimateRequest:
    body = _require_dict(body)
    raw = body.get("metrics")
    if not isinstance(raw, dict) or not raw:
        raise ProtocolError('"metrics" must be a non-empty object')
    metrics: dict[str, float] = {}
    for key, value in raw.items():
        if not isinstance(key, str):
            raise ProtocolError('"metrics" keys must be strings')
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(f'"metrics.{key}" must be a number')
        metrics[key] = float(value)
    team = body.get("team")
    if team is not None and not isinstance(team, str):
        raise ProtocolError('"team" must be a string')
    dataset_csv = body.get("dataset_csv")
    if dataset_csv is not None and not isinstance(dataset_csv, str):
        raise ProtocolError('"dataset_csv" must be a string')
    return EstimateRequest(
        metrics=metrics,
        team=team,
        dataset_csv=dataset_csv,
        keep_going=_parse_flag(body, "keep_going"),
        strict=_parse_flag(body, "strict"),
    )


# -- response builders --------------------------------------------------------


def measure_response(
    request_id: str,
    result: Result[ComponentMeasurement],
    *,
    strict: bool = False,
) -> tuple[int, dict[str, Any]]:
    """(status, payload) for one measured component.

    The payload is a pure function of the :class:`Result` (plus the
    request id), which is what the byte-identity e2e tests rely on: the
    same Result always encodes to the same bytes.
    """
    code = exit_code(
        result.diagnostics, fatal=result.value is None, strict=strict,
    )
    verdict = (
        "failed" if result.failed
        else "degraded" if result.degraded else "ok"
    )
    payload = {
        "request_id": request_id,
        "exit_code": code,
        "verdict": verdict,
        "component": (
            None if result.value is None
            else measurement_to_wire(result.value)
        ),
        "diagnostics": [diagnostic_to_wire(d) for d in result.diagnostics],
    }
    return STATUS_BY_EXIT[code], payload


def lint_response(
    request_id: str, report: Any, *, strict: bool = False,
) -> tuple[int, dict[str, Any]]:
    """(status, payload) for one lint run (``report``: LintReport)."""
    code = report.exit_code
    if strict and code == EXIT_DEGRADED:
        code = EXIT_FATAL
    payload = {
        "request_id": request_id,
        "exit_code": code,
        "summary": report.summary(),
        "modules": report.modules,
        "files": report.files,
        "findings": [
            diagnostic_to_wire(f.to_diagnostic()) for f in report.findings
        ],
        "errors": [diagnostic_to_wire(d) for d in report.errors],
    }
    return STATUS_BY_EXIT[code], payload


def estimate_response(
    request_id: str,
    *,
    median: float,
    interval: tuple[float, float],
    team: str | None,
    fitter: str,
    degraded: bool,
    diagnostics: Sequence[Diagnostic],
    strict: bool = False,
) -> tuple[int, dict[str, Any]]:
    """(status, payload) for one effort estimate."""
    code = exit_code(diagnostics, strict=strict)
    payload = {
        "request_id": request_id,
        "exit_code": code,
        "median": float(median),
        "interval": [float(interval[0]), float(interval[1])],
        "team": team,
        "fitter": fitter,
        "degraded": degraded,
        "diagnostics": [diagnostic_to_wire(d) for d in diagnostics],
    }
    return STATUS_BY_EXIT[code], payload


def error_response(
    status: int, message: str, request_id: str | None = None,
) -> tuple[int, dict[str, Any]]:
    payload: dict[str, Any] = {"error": message}
    if request_id is not None:
        payload["request_id"] = request_id
    return status, payload
