"""The serve daemon's work loop: one dispatcher thread over one Engine.

The asyncio server (:mod:`repro.serve.server`) parses HTTP and hands each
request body to a :class:`ServeSession`; the session owns the long-lived
:class:`~repro.core.engine.Engine` and a single **dispatcher thread** that
consumes requests from a queue, micro-batches whatever is waiting, and
resolves each request's future with a ``(status, payload)`` pair.

Why a thread and not the event loop?  The pipeline is synchronous Python:
a measurement blocks for seconds.  Running it on the loop would freeze
``/healthz``; running it in a thread pool would put N concurrent writers
on the process-global tracer and metrics registry.  One dispatcher thread
keeps the single-writer observability model intact *and* gives the server
batching for free: requests that arrive while a measurement is running
pile up in the queue and are dispatched as one
:meth:`Engine.measure_components` call into the supervised pool
(chunked, cache-aware -- a fully warm batch never dispatches a task).

Trace ids: every request is assigned ``r<n>``.  A request processed alone
runs under a ``serve.request`` span (engine spans nest beneath it); a
micro-batch runs under one ``serve.batch`` span with a ``serve.request``
span recorded per member, so the exported span tree always pairs request
ids with the work done for them.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

from repro.core.engine import Engine
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic, Result
from repro.serve import protocol
from repro.serve.protocol import (
    STATUS_UNAVAILABLE,
    EstimateRequest,
    LintRequest,
    MeasureRequest,
    ProtocolError,
)

_STOP = object()


@dataclass
class _Pending:
    """One submitted request travelling from the loop to the dispatcher."""

    rid: str
    endpoint: str
    body: Any
    future: "Future[tuple[int, dict[str, Any]]]"
    enqueued: float = field(default_factory=time.perf_counter)


class ServeSession:
    """Request queue + dispatcher thread around a long-lived Engine."""

    def __init__(self, engine: Engine) -> None:
        self.engine = engine
        self._queue: "queue.SimpleQueue[Any]" = queue.SimpleQueue()
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._inflight: dict[str, _Pending] = {}
        self._started = False
        self._thread = threading.Thread(
            target=self._run, name="serve-dispatcher", daemon=True
        )

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        self._thread.start()
        self._started = True

    def stop(self, grace_s: float = 30.0) -> bool:
        """Drain the queue and stop the dispatcher.

        Already-queued requests are still answered (that is the drain
        contract); only if the thread outlives ``grace_s`` is the
        in-flight pool run aborted via :func:`repro.exec.request_interrupt`
        and any unresolved futures failed with 503.  Returns True for a
        clean (non-forced) stop.
        """
        if not self._started:
            return True
        self._queue.put(_STOP)
        self._thread.join(grace_s)
        clean = not self._thread.is_alive()
        if not clean:
            from repro import exec as rexec

            rexec.request_interrupt()
            self._thread.join(grace_s)
            with self._lock:
                leftovers = list(self._inflight.values())
                self._inflight.clear()
            for item in leftovers:
                if not item.future.done():
                    item.future.set_result(
                        protocol.error_response(
                            STATUS_UNAVAILABLE,
                            "server shutting down",
                            item.rid,
                        )
                    )
        return clean

    # -- submission (called from the event loop thread) ------------------------

    def submit(
        self, endpoint: str, body: Any
    ) -> tuple[str, "Future[tuple[int, dict[str, Any]]]"]:
        """Queue one parsed-JSON request body; returns (request id, future)."""
        rid = f"r{next(self._ids)}"
        item = _Pending(rid, endpoint, body, Future())
        with self._lock:
            self._inflight[rid] = item
        self._queue.put(item)
        return rid, item.future

    def pending(self) -> int:
        with self._lock:
            return len(self._inflight)

    # -- dispatcher ------------------------------------------------------------

    def _run(self) -> None:
        while True:
            head = self._queue.get()
            if head is _STOP:
                return
            batch = [head]
            while True:
                try:
                    nxt = self._queue.get_nowait()
                except queue.Empty:
                    break
                if nxt is _STOP:
                    self._dispatch(batch)
                    return
                batch.append(nxt)
            self._dispatch(batch)

    def _dispatch(self, batch: list[_Pending]) -> None:
        obs_metrics.counter("serve.batches").inc()
        obs_metrics.histogram("serve.batch_size").observe(len(batch))
        tracer = obs_trace.active()
        if len(batch) == 1:
            item = batch[0]
            with obs_trace.span(
                "serve.request", request=item.rid, endpoint=item.endpoint
            ):
                self._finish(item, self._handle(item))
            return
        starts: dict[str, float] = {}
        with obs_trace.span(
            "serve.batch", requests=len(batch)
        ) as batch_span:
            # Measure requests in the batch go through the pool together;
            # everything else (lint/estimate, malformed bodies) is handled
            # inline in arrival order.
            outcomes = self._handle_batch(batch, starts)
        if tracer is not None:
            for item in batch:
                tracer.record_span(
                    "serve.request",
                    starts.get(item.rid, batch_span.start),
                    batch_span.wall_s,
                    parent_id=batch_span.span_id,
                    request=item.rid,
                    endpoint=item.endpoint,
                )
        for item, outcome in zip(batch, outcomes):
            self._finish(item, outcome)

    def _finish(
        self, item: _Pending, outcome: tuple[int, dict[str, Any]]
    ) -> None:
        status, _payload = outcome
        obs_metrics.counter("serve.requests").inc()
        obs_metrics.counter(f"serve.responses_{status // 100}xx").inc()
        obs_metrics.histogram("serve.request_latency_s").observe(
            time.perf_counter() - item.enqueued
        )
        with self._lock:
            self._inflight.pop(item.rid, None)
        if not item.future.done():
            item.future.set_result(outcome)

    # -- handlers --------------------------------------------------------------

    def _handle(self, item: _Pending) -> tuple[int, dict[str, Any]]:
        try:
            if item.endpoint == "measure":
                req = protocol.parse_measure_request(item.body)
                return self._measure_one(item.rid, req)
            if item.endpoint == "lint":
                return self._lint(item.rid, protocol.parse_lint_request(item.body))
            if item.endpoint == "estimate":
                return self._estimate(
                    item.rid, protocol.parse_estimate_request(item.body)
                )
            return protocol.error_response(
                protocol.STATUS_NOT_FOUND, f"unknown endpoint {item.endpoint}",
                item.rid,
            )
        except ProtocolError as exc:
            return protocol.error_response(
                protocol.STATUS_BAD_REQUEST, str(exc), item.rid
            )
        except Exception as exc:  # pipeline bug: fail the request, not the server
            return self._internal_error(item.rid, exc)

    def _handle_batch(
        self, batch: list[_Pending], starts: dict[str, float]
    ) -> list[tuple[int, dict[str, Any]]]:
        # Parse everything first so malformed requests answer 400 without
        # holding up the pool dispatch.
        outcomes: list[tuple[int, dict[str, Any]] | None] = []
        measures: list[tuple[int, _Pending, MeasureRequest]] = []
        for i, item in enumerate(batch):
            starts[item.rid] = time.perf_counter()
            try:
                if item.endpoint == "measure":
                    measures.append(
                        (i, item, protocol.parse_measure_request(item.body))
                    )
                    outcomes.append(None)
                    continue
            except ProtocolError as exc:
                outcomes.append(
                    protocol.error_response(
                        protocol.STATUS_BAD_REQUEST, str(exc), item.rid
                    )
                )
                continue
            outcomes.append(self._handle(item))
        # Group pooled measurements by flag set; a repeated component name
        # within one group is deferred to a follow-up engine call so the
        # name-keyed batch result cannot conflate two different requests.
        remaining = measures
        while remaining:
            group: list[tuple[int, _Pending, MeasureRequest]] = []
            deferred: list[tuple[int, _Pending, MeasureRequest]] = []
            flags = (remaining[0][2].strict, remaining[0][2].lint)
            names: set[str] = set()
            for entry in remaining:
                _i, _item, req = entry
                if (req.strict, req.lint) != flags or req.spec.name in names:
                    deferred.append(entry)
                else:
                    names.add(req.spec.name)
                    group.append(entry)
            try:
                results = self.engine.measure_components(
                    [req.spec for _i, _item, req in group],
                    strict=flags[0],
                    lint=flags[1],
                    pool=True,
                ).results
            except Exception as exc:
                for i, item, _req in group:
                    outcomes[i] = self._internal_error(item.rid, exc)
            else:
                for i, item, req in group:
                    outcomes[i] = protocol.measure_response(
                        item.rid,
                        results[req.spec.name],
                        strict=req.strict,
                    )
            remaining = deferred
        return [
            out if out is not None
            else protocol.error_response(500, "request not dispatched")
            for out in outcomes
        ]

    def _measure_one(
        self, rid: str, req: MeasureRequest
    ) -> tuple[int, dict[str, Any]]:
        # pool=True even for a single spec: untrusted request sources run
        # in a supervised worker, so a crash or hang quarantines this one
        # request instead of the dispatcher.  The memo probe still happens
        # in the parent, so warm requests never touch the pool.
        result: Result = self.engine.measure_components(
            [req.spec], strict=req.strict, lint=req.lint, pool=True,
        ).results[req.spec.name]
        return protocol.measure_response(rid, result, strict=req.strict)

    def _lint(self, rid: str, req: LintRequest) -> tuple[int, dict[str, Any]]:
        from repro.lint.config import LintConfig

        config = LintConfig().with_rules(only=req.only, disable=req.disable)
        report = self.engine.lint(list(req.sources), config)
        return protocol.lint_response(rid, report, strict=req.strict)

    def _estimate(
        self, rid: str, req: EstimateRequest
    ) -> tuple[int, dict[str, Any]]:
        import hashlib

        diagnostics: list[Diagnostic] = []
        if req.dataset_csv is None:
            from repro.data.paper import paper_dataset

            dataset = paper_dataset()
            dataset_key = "paper"
        else:
            from repro.data.dataset import EffortDataset

            loaded = EffortDataset.from_csv_checked(
                req.dataset_csv, keep_going=req.keep_going
            )
            diagnostics.extend(loaded.diagnostics)
            if loaded.value is None:
                return protocol.STATUS_BY_EXIT[2], {
                    "request_id": rid,
                    "exit_code": 2,
                    "error": "dataset failed to load",
                    "diagnostics": [
                        protocol.diagnostic_to_wire(d) for d in diagnostics
                    ],
                }
            dataset = loaded.value
            dataset_key = "csv:" + hashlib.sha256(
                req.dataset_csv.encode("utf-8")
            ).hexdigest()
        est = self.engine.fit_estimator(
            dataset, sorted(req.metrics), dataset_key=dataset_key
        )
        diagnostics.extend(est.fit_diagnostics)
        try:
            median = est.estimate(req.metrics, team=req.team)
            lo, hi = est.interval(req.metrics, team=req.team)
        except (KeyError, ValueError) as exc:
            raise ProtocolError(str(exc)) from exc
        return protocol.estimate_response(
            rid,
            median=median,
            interval=(lo, hi),
            team=req.team,
            fitter=est.fitter_name,
            degraded=est.degraded,
            diagnostics=diagnostics,
            strict=req.strict,
        )

    def _internal_error(
        self, rid: str, exc: BaseException
    ) -> tuple[int, dict[str, Any]]:
        obs_metrics.counter("serve.internal_errors").inc()
        return protocol.STATUS_BY_EXIT[2], {
            "request_id": rid,
            "exit_code": 2,
            "error": f"{type(exc).__name__}: {exc}",
        }
