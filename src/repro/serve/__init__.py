"""``ucomplexity serve``: the long-running measurement service.

A stdlib-only HTTP/JSON daemon over the same :class:`~repro.core.engine.
Engine` the CLI uses: ``POST /measure``, ``POST /lint``,
``POST /estimate``, plus ``GET /healthz`` and ``GET /metrics``.  The wire
contract lives in :mod:`repro.serve.protocol`, the dispatcher thread and
batching in :mod:`repro.serve.session`, and the asyncio front end in
:mod:`repro.serve.server`.  See DESIGN.md section 14.
"""

from repro.serve.protocol import (
    STATUS_BY_EXIT,
    ProtocolError,
    diagnostic_to_wire,
    encode,
    measurement_to_wire,
)
from repro.serve.server import MeasureServer, ServeConfig, serve_forever
from repro.serve.session import ServeSession

__all__ = [
    "MeasureServer",
    "ProtocolError",
    "STATUS_BY_EXIT",
    "ServeConfig",
    "ServeSession",
    "diagnostic_to_wire",
    "encode",
    "measurement_to_wire",
    "serve_forever",
]
