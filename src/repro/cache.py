"""Content-addressed on-disk cache for synthesis products.

Measurement pipelines are rerun constantly during calibration -- every
Table 3 / Figure 6 refresh re-lexes, re-elaborates, and re-synthesizes RTL
that has not changed.  This module memoizes the expensive end of the
parse -> elaborate -> synthesize chain: the :class:`~repro.synth.report.
SynthesisReport` of one *specialization* (a module at one parameter
binding) within one design.

Keys are content-addressed, so the cache never needs invalidation logic:

``key = SHA-256( source texts  +  specialization module name  +
                 sorted parameter binding  +  library/version salt )``

The salt folds in the frontend, elaboration, and lowering algorithm
revisions (``PARSER_VERSION``/``ELAB_VERSION``/``SYNTH_VERSION``), so
upgrading any pipeline stage silently starts a fresh key space instead of
serving stale products.  Editing a source file or changing a parameter
binding changes the key the same way.

Degradation rules (see DESIGN.md, "Parallelism & caching"):

* a **corrupt** entry (truncated file, bad pickle, wrong type) is deleted,
  counted in ``cache.errors``, and reported as a *corrupt* lookup -- the
  caller recomputes and, on the fault-tolerant path, emits a WARNING
  diagnostic; the run never crashes on cache state;
* a **store** failure (read-only directory, disk full) is swallowed after
  counting ``cache.errors`` -- caching is an optimization, not a stage.

Counters (``cache.hits``/``cache.misses``/``cache.stores``/
``cache.errors``) land in the default metrics registry, so hit rates ride
along in every ``--trace`` file and ``RunReport``.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

from repro.elab.elaborator import ELAB_VERSION
from repro.flow.dfg import FLOW_VERSION
from repro.hdl.verilog.parser import PARSER_VERSION as VERILOG_PARSER_VERSION
from repro.hdl.vhdl.parser import PARSER_VERSION as VHDL_PARSER_VERSION
from repro.obs import metrics as obs_metrics
from repro.synth.lower import SYNTH_VERSION
from repro.synth.report import SynthesisReport

#: Cache container format revision (bump when the entry encoding changes).
CACHE_FORMAT = 1

#: The library/version salt folded into every key.  ``flow`` rides along
#: because synthesis reports now embed a :class:`~repro.flow.metrics.
#: FlowReport`; entries written before it existed must not be served.
SALT = (
    f"ucx-cache{CACHE_FORMAT}"
    f"|verilog{VERILOG_PARSER_VERSION}"
    f"|vhdl{VHDL_PARSER_VERSION}"
    f"|elab{ELAB_VERSION}"
    f"|synth{SYNTH_VERSION}"
    f"|flow{FLOW_VERSION}"
)

#: Default cache location (``$XDG_CACHE_HOME`` respected).
def default_cache_dir() -> Path:
    base = os.environ.get("XDG_CACHE_HOME")
    root = Path(base) if base else Path.home() / ".cache"
    return root / "ucomplexity"


@dataclass(frozen=True)
class CacheLookup:
    """Outcome of one cache probe."""

    status: str  # "hit" | "miss" | "corrupt"
    value: SynthesisReport | None = None
    detail: str = ""

    @property
    def hit(self) -> bool:
        return self.status == "hit"

    @property
    def corrupt(self) -> bool:
        return self.status == "corrupt"


_MISS = CacheLookup("miss")


@dataclass(frozen=True)
class SynthesisCache:
    """A content-addressed synthesis-report cache rooted at ``directory``.

    The object is a picklable value (a path plus the salt), so pool workers
    (:mod:`repro.parallel`) can carry it across process boundaries and
    share one on-disk key space; stores are atomic (write-to-temp + rename)
    which makes concurrent writers safe -- last writer wins with identical
    content.
    """

    directory: Path
    salt: str = SALT

    def __post_init__(self) -> None:
        object.__setattr__(self, "directory", Path(self.directory))

    @classmethod
    def default(cls) -> "SynthesisCache":
        return cls(default_cache_dir())

    # -- keys ----------------------------------------------------------------

    def key(
        self,
        source_texts: Iterable[str],
        module: str,
        parameters: Mapping[str, int],
    ) -> str:
        """The SHA-256 key of one specialization's synthesis product.

        ``source_texts`` are the texts of every file that formed the design
        (post-quarantine on the fault-tolerant path), ``module`` the
        specialization's top name, ``parameters`` its resolved binding.
        """
        h = hashlib.sha256()
        h.update(self.salt.encode("utf-8"))
        for text in source_texts:
            h.update(b"\x00source\x00")
            h.update(text.encode("utf-8"))
        h.update(b"\x00top\x00" + module.encode("utf-8"))
        for name, value in sorted(parameters.items()):
            h.update(f"\x00param\x00{name}={int(value)}".encode("utf-8"))
        return h.hexdigest()

    def entry_path(self, key: str) -> Path:
        # Two-level fan-out keeps directories small at catalog scale.
        return self.directory / key[:2] / f"{key}.pkl"

    # -- load / store --------------------------------------------------------

    def load(self, key: str) -> CacheLookup:
        """Probe the cache; corruption degrades to a recompute, never raises."""
        path = self.entry_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            obs_metrics.counter("cache.misses").inc()
            return _MISS
        except OSError as exc:
            obs_metrics.counter("cache.errors").inc()
            return CacheLookup("corrupt", detail=f"unreadable entry: {exc}")
        try:
            value = pickle.loads(blob)
            if not isinstance(value, SynthesisReport):
                raise TypeError(
                    f"entry holds {type(value).__name__}, not SynthesisReport"
                )
        except Exception as exc:  # noqa: BLE001 -- any bad entry degrades
            obs_metrics.counter("cache.errors").inc()
            self._evict(path)
            return CacheLookup(
                "corrupt", detail=f"{path.name}: {type(exc).__name__}: {exc}"
            )
        obs_metrics.counter("cache.hits").inc()
        return CacheLookup("hit", value=value)

    def store(self, key: str, report: SynthesisReport) -> bool:
        """Atomically write one entry; failures are counted, not raised."""
        path = self.entry_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(report, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:  # noqa: BLE001 -- caching is best-effort
            obs_metrics.counter("cache.errors").inc()
            return False
        obs_metrics.counter("cache.stores").inc()
        return True

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    # -- whole-measurement memo ----------------------------------------------
    #
    # One level up from specialization synthesis: the memo keyed on a whole
    # component (sources + top + policy + flags) stores its finished,
    # *pristine* measurement Result.  This is what lets the parallel path's
    # cache-aware dispatch resolve warm components in the parent without
    # touching the worker pool at all.  Entries live under ``measure/``
    # (depth 3), deliberately invisible to :meth:`entries` so synthesis-
    # entry tooling (poisoning tests, eviction sweeps) is unaffected.

    def measurement_key(self, spec, strict: bool = False,
                        lint: bool = False) -> str:
        """Content key of one whole-component measurement.

        Identical to the journal's task key (same content, same salt): a
        memo hit is exactly a journal skip that survives across runs
        without a journal file.
        """
        from repro.parallel import measure_task_key

        return measure_task_key(spec, strict, lint)

    def measurement_path(self, key: str) -> Path:
        return self.directory / "measure" / key[:2] / f"{key}.pkl"

    def load_measurement(self, key: str):
        """Probe the measurement memo; any bad entry degrades to a miss.

        Returns the stored pristine ``Result`` on a hit, else ``None``
        (counted in ``cache.measure_hits``/``cache.measure_misses``;
        corrupt entries are evicted and counted in ``cache.errors``).
        """
        from repro.runtime.diagnostics import Result

        path = self.measurement_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            obs_metrics.counter("cache.measure_misses").inc()
            return None
        except OSError:
            obs_metrics.counter("cache.errors").inc()
            obs_metrics.counter("cache.measure_misses").inc()
            return None
        try:
            value = pickle.loads(blob)
            if not isinstance(value, Result) or value.value is None \
                    or value.diagnostics:
                raise TypeError("entry is not a pristine measurement Result")
        except Exception:  # noqa: BLE001 -- any bad entry degrades
            obs_metrics.counter("cache.errors").inc()
            obs_metrics.counter("cache.measure_misses").inc()
            self._evict(path)
            return None
        obs_metrics.counter("cache.measure_hits").inc()
        return value

    def store_measurement(self, key: str, result) -> bool:
        """Memoize one *pristine* measurement (value, no diagnostics).

        Degraded or failed results are never stored: their diagnostics
        must be re-derived (and re-reported) by a real run.
        """
        if getattr(result, "value", None) is None \
                or getattr(result, "diagnostics", ()):
            return False
        path = self.measurement_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:  # noqa: BLE001 -- caching is best-effort
            obs_metrics.counter("cache.errors").inc()
            return False
        obs_metrics.counter("cache.measure_stores").inc()
        return True

    # -- per-module lint memo ------------------------------------------------
    #
    # The deep rules (DFG build, SCC/reachability analysis) dominate lint
    # wall time; the audit of one module is a pure function of the source
    # texts, the module name, and the enabled-rule set (severity overrides
    # and baseline suppression are applied *after* the per-module compute
    # in ``_assemble``, so they stay out of the key).  Entries live under
    # ``lint/``, invisible to :meth:`entries` like the measurement memo.

    def lint_key(
        self, source_texts: Iterable[str], module: str,
        enabled_rules: Iterable[str],
    ) -> str:
        """Content key of one module's lint result."""
        from repro.lint.rules import LINT_VERSION

        h = hashlib.sha256()
        h.update(self.salt.encode("utf-8"))
        h.update(f"\x00lint{LINT_VERSION}\x00".encode("utf-8"))
        for text in source_texts:
            h.update(b"\x00source\x00")
            h.update(text.encode("utf-8"))
        h.update(b"\x00module\x00" + module.encode("utf-8"))
        for rule in sorted(enabled_rules):
            h.update(f"\x00rule\x00{rule}".encode("utf-8"))
        return h.hexdigest()

    def lint_path(self, key: str) -> Path:
        return self.directory / "lint" / key[:2] / f"{key}.pkl"

    def load_lint(self, key: str):
        """Probe the lint memo; returns a clean ``ModuleLintResult`` or None.

        Error-carrying results are never served (mirroring the measurement
        memo's pristine-only contract): their diagnostics must be
        re-derived by a real run.
        """
        from repro.lint.engine import ModuleLintResult

        path = self.lint_path(key)
        try:
            blob = path.read_bytes()
        except FileNotFoundError:
            obs_metrics.counter("cache.lint_misses").inc()
            return None
        except OSError:
            obs_metrics.counter("cache.errors").inc()
            obs_metrics.counter("cache.lint_misses").inc()
            return None
        try:
            value = pickle.loads(blob)
            if not isinstance(value, ModuleLintResult) or value.errors:
                raise TypeError("entry is not a clean ModuleLintResult")
        except Exception:  # noqa: BLE001 -- any bad entry degrades
            obs_metrics.counter("cache.errors").inc()
            obs_metrics.counter("cache.lint_misses").inc()
            self._evict(path)
            return None
        obs_metrics.counter("cache.lint_hits").inc()
        return value

    def store_lint(self, key: str, result) -> bool:
        """Memoize one error-free module lint result."""
        if getattr(result, "errors", ()):
            return False
        path = self.lint_path(key)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(
                dir=path.parent, prefix=path.stem, suffix=".tmp"
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    pickle.dump(result, fh, protocol=pickle.HIGHEST_PROTOCOL)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        except Exception:  # noqa: BLE001 -- caching is best-effort
            obs_metrics.counter("cache.errors").inc()
            return False
        obs_metrics.counter("cache.lint_stores").inc()
        return True

    # -- maintenance ---------------------------------------------------------

    def entries(self) -> list[Path]:
        """Every synthesis entry file currently on disk, sorted."""
        if not self.directory.is_dir():
            return []
        return sorted(self.directory.glob("*/*.pkl"))

    def measurement_entries(self) -> list[Path]:
        """Every whole-measurement memo entry on disk, sorted."""
        root = self.directory / "measure"
        if not root.is_dir():
            return []
        return sorted(root.glob("*/*.pkl"))

    def lint_entries(self) -> list[Path]:
        """Every per-module lint memo entry on disk, sorted."""
        root = self.directory / "lint"
        if not root.is_dir():
            return []
        return sorted(root.glob("*/*.pkl"))

    def clear(self) -> int:
        """Delete all entries (every kind); returns how many were removed."""
        removed = 0
        for path in (
            self.entries() + self.measurement_entries() + self.lint_entries()
        ):
            self._evict(path)
            removed += 1
        return removed


def hit_rate(counters: Mapping[str, float] | None = None) -> float | None:
    """Cache hit rate from a counters snapshot (default registry if None).

    Folds the whole-measurement memo probes in with the synthesis-entry
    probes: a memo hit short-circuits the synthesis probes it replaces,
    so counting only the latter would under-report warm runs.  Returns
    None when the run never probed the cache.
    """
    if counters is None:
        counters = obs_metrics.snapshot()["counters"]
    hits = (
        float(counters.get("cache.hits", 0.0))
        + float(counters.get("cache.measure_hits", 0.0))
        + float(counters.get("cache.lint_hits", 0.0))
    )
    misses = (
        float(counters.get("cache.misses", 0.0))
        + float(counters.get("cache.measure_misses", 0.0))
        + float(counters.get("cache.lint_misses", 0.0))
    )
    total = hits + misses
    if total == 0:
        return None
    return hits / total
