"""Supervised worker processes: one pipe, one task in flight, killable.

The supervisor does not use :class:`concurrent.futures.ProcessPoolExecutor`
because that pool treats any worker death as fatal (``BrokenExecutor``
poisons every outstanding future) and offers no way to kill one hung
worker.  Here each worker owns a private duplex :func:`multiprocessing.Pipe`
and runs at most one task at a time, so the parent can:

* detect a death promptly -- a dead worker's pipe end closes, which makes
  the connection readable (EOF) and wakes the monitor immediately;
* kill a hung worker without touching its siblings -- only that worker's
  pipe is discarded when it is replaced;
* attribute every failure to exactly one task -- the unit the supervisor
  retries, backs off, or quarantines.

Workers are daemonic: if the parent dies uncleanly, the kernel reaps the
pool instead of leaving orphaned processes behind.

The wire protocol is deliberately tiny.  Parent -> worker: ``(task_id,
payload)`` or ``None`` (shutdown).  Worker -> parent: ``("ok", task_id,
TaskOutcome)`` or ``("exc", task_id, exc_type, exc_text)`` when an
exception escaped the task function (task functions promise not to raise;
escapes are exactly what supervision exists for -- memory ceilings, chaos
faults, bugs).

Both ends serialize explicitly (``ForkingPickler.dumps`` +
``send_bytes`` / ``recv_bytes`` + ``pickle.loads`` -- byte-identical to
what ``Connection.send``/``recv`` do internally) so every message's
pickle time and payload size can be attributed: the parent times payload
pickling and result unpickling, the worker times payload unpickling and
the task's compute, and ships its numbers back inside the outcome's
telemetry (see :func:`repro.exec.task.annotate_worker_stats`).
"""

from __future__ import annotations

import multiprocessing as mp
import pickle
import time
from multiprocessing.connection import Connection
from multiprocessing.reduction import ForkingPickler
from typing import Any, Callable

#: Seconds to wait for a worker to exit after a graceful shutdown message
#: (or after a kill) before escalating.
JOIN_TIMEOUT_S = 2.0


def apply_memory_limit(limit_mb: int) -> bool:
    """Cap this process's address space at ``limit_mb`` MiB.

    Returns False (instead of raising) on platforms without ``resource``
    or where the limit cannot be lowered -- the ceiling is an extra guard
    rail, not a correctness requirement.
    """
    try:
        import resource

        limit = int(limit_mb) * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        return True
    except Exception:  # noqa: BLE001 -- best-effort on exotic platforms
        return False


def worker_main(
    conn: Connection,
    task: Callable[[Any], Any],
    memory_limit_mb: int | None,
) -> None:
    """The worker loop: receive a payload, run the task, send the outcome."""
    if memory_limit_mb is not None:
        apply_memory_limit(memory_limit_mb)
    while True:
        try:
            buf = conn.recv_bytes()
        except (EOFError, OSError):
            return  # parent went away
        t0 = time.perf_counter()
        msg = pickle.loads(buf)
        unpickle_s = time.perf_counter() - t0
        if msg is None:
            return  # graceful shutdown
        task_id, payload = msg
        try:
            t0 = time.perf_counter()
            value = task(payload)
            compute_s = time.perf_counter() - t0
            _annotate(value, len(buf), unpickle_s, compute_s)
            reply = ("ok", task_id, value)
        except MemoryError:
            # Drop references before replying: the allocation that tripped
            # the ceiling may still be reachable from the frame.
            reply = ("exc", task_id, "MemoryError",
                     "task exceeded the worker memory ceiling")
        except BaseException as exc:  # noqa: BLE001 -- escapes are supervised
            reply = ("exc", task_id, type(exc).__name__, str(exc))
        try:
            conn.send_bytes(bytes(ForkingPickler.dumps(reply)))
        except (BrokenPipeError, OSError):
            return
        except Exception as exc:  # noqa: BLE001 -- e.g. unpicklable outcome
            try:
                conn.send(("exc", task_id, type(exc).__name__,
                           f"result could not be returned: {exc}"))
            except Exception:  # noqa: BLE001
                return


def _annotate(value: Any, payload_bytes: int, unpickle_s: float,
              compute_s: float) -> None:
    """Attach this attempt's worker-side costs to the outcome's telemetry."""
    try:
        from repro.exec.task import annotate_worker_stats

        annotate_worker_stats(value, payload_bytes=payload_bytes,
                              unpickle_s=unpickle_s, compute_s=compute_s)
    except Exception:  # noqa: BLE001 -- observability must never fail a task
        pass


class WorkerHandle:
    """Parent-side handle for one supervised worker process."""

    def __init__(
        self,
        task: Callable[[Any], Any],
        memory_limit_mb: int | None,
        ctx: mp.context.BaseContext | None = None,
        wid: str = "w?",
    ) -> None:
        ctx = ctx or mp.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, task, memory_limit_mb),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn: Connection = parent_conn
        #: Stable lane id of this worker within one supervised run ("w0",
        #: "w1", ...; respawns get fresh ids) -- the timeline's Gantt lane.
        self.wid = wid
        #: Index of the task currently in flight (None = idle).
        self.task_idx: int | None = None
        #: Monotonic instants bounding the current attempt.
        self.started_at: float = 0.0
        self.deadline_at: float | None = None
        #: Parent-side costs of the attempt in flight (for the attempt's
        #: ``exec.task`` span): payload pickle time/size at dispatch, then
        #: result transfer size/unpickle time filled in by recv_message.
        self.pickle_s: float = 0.0
        self.payload_bytes: int = 0
        self.unpickle_s: float = 0.0
        self.result_bytes: int = 0
        self.queue_wait_s: float = 0.0

    @property
    def busy(self) -> bool:
        return self.task_idx is not None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def dispatch(self, task_idx: int, payload: Any,
                 deadline_s: float | None) -> None:
        """Send one task; raises OSError/BrokenPipeError if the worker died."""
        t0 = time.perf_counter()
        buf = bytes(ForkingPickler.dumps((task_idx, payload)))
        self.pickle_s = time.perf_counter() - t0
        self.payload_bytes = len(buf)
        self.unpickle_s = 0.0
        self.result_bytes = 0
        self.conn.send_bytes(buf)
        self.task_idx = task_idx
        self.started_at = time.monotonic()
        self.deadline_at = (
            self.started_at + deadline_s if deadline_s is not None else None
        )

    def recv_message(self) -> Any:
        """Receive one worker reply, recording its size and unpickle time."""
        buf = self.conn.recv_bytes()
        t0 = time.perf_counter()
        msg = pickle.loads(buf)
        self.unpickle_s = time.perf_counter() - t0
        self.result_bytes = len(buf)
        return msg

    def mark_idle(self) -> None:
        self.task_idx = None
        self.deadline_at = None

    def kill(self) -> None:
        """Forcibly terminate the worker and release its pipe."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(JOIN_TIMEOUT_S)
        # close() releases the process handle promptly (3.7+: no zombie).
        try:
            self.proc.close()
        except (ValueError, AttributeError):
            pass

    def shutdown(self) -> None:
        """Ask the worker to exit; escalate to a kill if it does not."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(JOIN_TIMEOUT_S)
        self.kill()
