"""Supervised worker processes: warm, chunk-fed, killable.

The supervisor does not use :class:`concurrent.futures.ProcessPoolExecutor`
because that pool treats any worker death as fatal (``BrokenExecutor``
poisons every outstanding future) and offers no way to kill one hung
worker.  Here each worker owns a private duplex :func:`multiprocessing.Pipe`
so the parent can:

* detect a death promptly -- a dead worker's pipe end closes, which makes
  the connection readable (EOF) and wakes the monitor immediately;
* kill a hung worker without touching its siblings -- only that worker's
  pipe is discarded when it is replaced;
* attribute every failure to exactly one task -- the unit the supervisor
  retries, backs off, or quarantines.

Workers are daemonic: if the parent dies uncleanly, the kernel reaps the
pool instead of leaving orphaned processes behind.

**Warm-pool contract.**  Workers spawn once per supervised run and stay
warm: a :class:`~repro.exec.task.WorkerContext` delivered at spawn (under
the default ``fork`` start method it is inherited copy-on-write, never
pickled) carries the run-invariant state -- cache handles, strictness
flags, a :class:`~repro.exec.blobs.BlobStore` of heavy shared objects --
and ``preload`` modules are imported before the first task so no attempt
pays import cost.  Task functions read it back with
:func:`worker_context`; the parent's inline-fallback path installs the
same context around in-process execution via :func:`using_context`, so a
task function behaves identically in both places.

**Wire protocol.**  Parent -> worker: a *chunk* ``[(task_id, payload),
...]`` or ``None`` (shutdown).  The worker runs the chunk's tasks in
order and streams one reply per task as it goes -- ``("ok", task_id,
TaskOutcome)`` or ``("exc", task_id, exc_type, exc_text)`` when an
exception escaped the task function (task functions promise not to
raise; escapes are exactly what supervision exists for -- memory
ceilings, chaos faults, bugs).  Streaming keeps supervision per-task:
the parent re-arms the deadline as each reply lands, and a worker that
dies mid-chunk loses only its in-flight task (the chunk's unstarted
remainder is requeued uncharged).  Chunking exists purely to amortize
the per-message pipe round-trip that profiling showed dominating short
tasks.

Both ends serialize explicitly (``ForkingPickler.dumps`` +
``send_bytes`` / ``recv_bytes`` + ``pickle.loads`` -- byte-identical to
what ``Connection.send``/``recv`` do internally) so every message's
pickle time and payload size can be attributed: the parent times payload
pickling and result unpickling, the worker times payload unpickling and
each task's compute, and ships its numbers back inside the outcome's
telemetry (see :func:`repro.exec.task.annotate_worker_stats`).  Chunk
costs are apportioned evenly over the chunk's tasks so per-attempt
attribution stays meaningful.
"""

from __future__ import annotations

import importlib
import multiprocessing as mp
import pickle
import time
from collections import deque
from contextlib import contextmanager
from multiprocessing.connection import Connection
from multiprocessing.reduction import ForkingPickler
from typing import Any, Callable, Iterator, Sequence

from repro.exec.task import WorkerContext

#: Seconds to wait for a worker to exit after a graceful shutdown message
#: (or after a kill) before escalating.
JOIN_TIMEOUT_S = 2.0

#: The process-wide WorkerContext, installed once at worker startup (or
#: temporarily by :func:`using_context` for parent-side inline execution).
_WORKER_CONTEXT: WorkerContext | None = None


def worker_context() -> WorkerContext | None:
    """The installed :class:`WorkerContext`, or ``None`` outside a pool."""
    return _WORKER_CONTEXT


def require_worker_context() -> WorkerContext:
    """The installed context; raises if the task runs without one."""
    if _WORKER_CONTEXT is None:
        raise RuntimeError(
            "no WorkerContext installed -- this task function must run "
            "under a supervised pool (or inside using_context())"
        )
    return _WORKER_CONTEXT


def _install_context(context: WorkerContext | None) -> None:
    """Install ``context`` process-wide and import its preload modules.

    Also usable directly as a ``ProcessPoolExecutor`` initializer.
    Preload failures are swallowed: the import would fail again (with a
    real traceback) the moment a task needs the module.
    """
    global _WORKER_CONTEXT
    _WORKER_CONTEXT = context
    if context is None:
        return
    for name in context.preload:
        try:
            importlib.import_module(name)
        except Exception:  # noqa: BLE001 -- warmup only, never fatal
            pass


@contextmanager
def using_context(context: WorkerContext | None) -> Iterator[None]:
    """Temporarily install ``context`` in *this* process.

    The supervisor wraps its inline-fallback path (and the parent-side
    replay guard) in this so task functions see the same context they
    would inside a worker.
    """
    global _WORKER_CONTEXT
    prev = _WORKER_CONTEXT
    _install_context(context)
    try:
        yield
    finally:
        _WORKER_CONTEXT = prev


def apply_memory_limit(limit_mb: int) -> bool:
    """Cap this process's address space at ``limit_mb`` MiB.

    Returns False (instead of raising) on platforms without ``resource``
    or where the limit cannot be lowered -- the ceiling is an extra guard
    rail, not a correctness requirement.
    """
    try:
        import resource

        limit = int(limit_mb) * 1024 * 1024
        resource.setrlimit(resource.RLIMIT_AS, (limit, limit))
        return True
    except Exception:  # noqa: BLE001 -- best-effort on exotic platforms
        return False


def worker_main(
    conn: Connection,
    task: Callable[[Any], Any],
    memory_limit_mb: int | None,
    context: WorkerContext | None = None,
) -> None:
    """The worker loop: receive a chunk, stream one outcome per task."""
    _install_context(context)
    if memory_limit_mb is not None:
        apply_memory_limit(memory_limit_mb)
    while True:
        try:
            buf = conn.recv_bytes()
        except (EOFError, OSError):
            return  # parent went away
        t0 = time.perf_counter()
        msg = pickle.loads(buf)
        unpickle_s = time.perf_counter() - t0
        if msg is None:
            return  # graceful shutdown
        # Chunk costs are shared evenly across its tasks so each attempt's
        # attribution stays meaningful (and nonzero).
        share_n = max(1, len(msg))
        unpickle_share = unpickle_s / share_n
        byte_share = max(1, len(buf) // share_n)
        for task_id, payload in msg:
            try:
                t0 = time.perf_counter()
                value = task(payload)
                compute_s = time.perf_counter() - t0
                _annotate(value, byte_share, unpickle_share, compute_s)
                reply = ("ok", task_id, value)
            except MemoryError:
                # Drop references before replying: the allocation that
                # tripped the ceiling may still be reachable from the frame.
                reply = ("exc", task_id, "MemoryError",
                         "task exceeded the worker memory ceiling")
            except BaseException as exc:  # noqa: BLE001 -- supervised
                reply = ("exc", task_id, type(exc).__name__, str(exc))
            try:
                conn.send_bytes(bytes(ForkingPickler.dumps(reply)))
            except (BrokenPipeError, OSError):
                return
            except Exception as exc:  # noqa: BLE001 -- unpicklable outcome
                try:
                    conn.send(("exc", task_id, type(exc).__name__,
                               f"result could not be returned: {exc}"))
                except Exception:  # noqa: BLE001
                    return


def _annotate(value: Any, payload_bytes: int, unpickle_s: float,
              compute_s: float) -> None:
    """Attach this attempt's worker-side costs to the outcome's telemetry."""
    try:
        from repro.exec.task import annotate_worker_stats

        annotate_worker_stats(value, payload_bytes=payload_bytes,
                              unpickle_s=unpickle_s, compute_s=compute_s)
    except Exception:  # noqa: BLE001 -- observability must never fail a task
        pass


class WorkerHandle:
    """Parent-side handle for one supervised worker process."""

    def __init__(
        self,
        task: Callable[[Any], Any],
        memory_limit_mb: int | None,
        ctx: mp.context.BaseContext | None = None,
        wid: str = "w?",
        context: WorkerContext | None = None,
    ) -> None:
        ctx = ctx or mp.get_context()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.proc = ctx.Process(
            target=worker_main,
            args=(child_conn, task, memory_limit_mb, context),
            daemon=True,
        )
        self.proc.start()
        child_conn.close()
        self.conn: Connection = parent_conn
        #: Stable lane id of this worker within one supervised run ("w0",
        #: "w1", ...) -- the timeline's Gantt lane.  A respawn reuses its
        #: dead predecessor's lane id (see the supervisor's lane pool), so
        #: kills do not proliferate lanes.
        self.wid = wid
        #: Task ids dispatched to this worker and not yet resolved; the
        #: head is the task in flight, the rest are queued in the worker.
        self.chunk: deque[int] = deque()
        self._deadline_s: float | None = None
        #: Monotonic instants bounding the current attempt (the chunk
        #: head); re-armed by :meth:`advance` as replies stream in.
        self.started_at: float = 0.0
        self.deadline_at: float | None = None
        #: Parent-side costs of the attempt in flight (for the attempt's
        #: ``exec.task`` span): payload pickle time/size at dispatch
        #: (chunk totals shared evenly over its tasks), then result
        #: transfer size/unpickle time filled in by recv_message.
        self.pickle_s: float = 0.0
        self.payload_bytes: int = 0
        self.unpickle_s: float = 0.0
        self.result_bytes: int = 0
        self.queue_wait_s: float = 0.0

    @property
    def busy(self) -> bool:
        return bool(self.chunk)

    @property
    def task_idx(self) -> int | None:
        """The task currently in flight (chunk head), or None if idle."""
        return self.chunk[0] if self.chunk else None

    @property
    def alive(self) -> bool:
        return self.proc.is_alive()

    def _arm(self, now: float) -> None:
        self.started_at = now
        self.deadline_at = (
            now + self._deadline_s if self._deadline_s is not None else None
        )

    def dispatch(self, items: Sequence[tuple[int, Any]],
                 deadline_s: float | None) -> None:
        """Send one chunk; raises OSError/BrokenPipeError if the worker died.

        The chunk is recorded on the handle only after the send succeeds,
        so a dispatch failure leaves the handle idle and the tasks safely
        in the caller's queue.
        """
        t0 = time.perf_counter()
        buf = bytes(ForkingPickler.dumps(list(items)))
        pickle_total = time.perf_counter() - t0
        n = max(1, len(items))
        self.pickle_s = pickle_total / n
        self.payload_bytes = max(1, len(buf) // n)
        self.unpickle_s = 0.0
        self.result_bytes = 0
        self.conn.send_bytes(buf)
        self.chunk = deque(idx for idx, _ in items)
        self._deadline_s = deadline_s
        self._arm(time.monotonic())

    def recv_message(self) -> Any:
        """Receive one worker reply, recording its size and unpickle time."""
        buf = self.conn.recv_bytes()
        t0 = time.perf_counter()
        msg = pickle.loads(buf)
        self.unpickle_s = time.perf_counter() - t0
        self.result_bytes = len(buf)
        return msg

    def advance(self) -> None:
        """Resolve the chunk head; re-arm the deadline for the next task."""
        if self.chunk:
            self.chunk.popleft()
        if self.chunk:
            self._arm(time.monotonic())
        else:
            self.deadline_at = None
            self._deadline_s = None

    def mark_idle(self) -> None:
        self.chunk.clear()
        self.deadline_at = None
        self._deadline_s = None

    def kill(self) -> None:
        """Forcibly terminate the worker and release its pipe."""
        try:
            self.conn.close()
        except OSError:
            pass
        if self.proc.is_alive():
            self.proc.kill()
        self.proc.join(JOIN_TIMEOUT_S)
        # close() releases the process handle promptly (3.7+: no zombie).
        try:
            self.proc.close()
        except (ValueError, AttributeError):
            pass

    def shutdown(self) -> None:
        """Ask the worker to exit; escalate to a kill if it does not."""
        try:
            self.conn.send(None)
        except (BrokenPipeError, OSError):
            pass
        self.proc.join(JOIN_TIMEOUT_S)
        self.kill()
