"""Supervised execution: the fault-surviving engine under ``--jobs N``.

``repro.parallel`` grew up: where the original module wrapped a bare
:class:`~concurrent.futures.ProcessPoolExecutor` (one hung or OOM-killed
worker poisoned the whole pool), this package runs every parallel batch
under a :class:`Supervisor` that enforces per-task deadlines, kills and
respawns hung workers, retries transient failures with exponential
backoff + jitter, quarantines poison tasks as structured diagnostics,
applies optional per-worker memory ceilings, and journals completed work
so an interrupted run resumes where it stopped.

Layering: this package depends only on :mod:`repro.obs` and
:mod:`repro.runtime.diagnostics`; the measurement-specific task entry
points and telemetry merging stay in :mod:`repro.parallel`, which
delegates execution here.  See DESIGN.md section 11 for the supervision
model and the journal format.
"""

from repro.exec.blobs import BlobError, BlobRef, BlobStore
from repro.exec.journal import JOURNAL_VERSION, RunJournal, content_key
from repro.exec.policy import SupervisionPolicy
from repro.exec.supervisor import (
    AUTO_CHUNK_CAP,
    QUARANTINE_HINT,
    RunInterrupted,
    Supervisor,
    clear_interrupt,
    interrupt_requested,
    request_interrupt,
)
from repro.exec.task import (
    TaskOutcome,
    WorkerContext,
    WorkerTelemetry,
    run_traced_task,
)
from repro.exec.workers import (
    WorkerHandle,
    apply_memory_limit,
    require_worker_context,
    using_context,
    worker_context,
    worker_main,
)

__all__ = [
    "AUTO_CHUNK_CAP",
    "BlobError",
    "BlobRef",
    "BlobStore",
    "JOURNAL_VERSION",
    "QUARANTINE_HINT",
    "RunInterrupted",
    "RunJournal",
    "Supervisor",
    "SupervisionPolicy",
    "TaskOutcome",
    "WorkerContext",
    "WorkerHandle",
    "WorkerTelemetry",
    "apply_memory_limit",
    "clear_interrupt",
    "content_key",
    "interrupt_requested",
    "request_interrupt",
    "require_worker_context",
    "run_traced_task",
    "using_context",
    "worker_context",
    "worker_main",
]
