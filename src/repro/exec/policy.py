"""Supervision policy: every knob of the supervised worker pool.

One frozen dataclass holds the full contract between a caller and the
:class:`~repro.exec.supervisor.Supervisor`, so a policy can be passed
through the measurement APIs, embedded in tests, and rendered into docs
without chasing keyword arguments through the stack:

* **Deadlines** -- ``deadline_s`` bounds each task *attempt*; a worker
  still busy past it is presumed hung, killed, and respawned.
* **Retries** -- failures are classified as *kills* (the worker died or
  was killed: OOM, SIGKILL, deadline) or *soft failures* (an exception
  escaped the task function inside a surviving worker, e.g. a
  ``MemoryError`` under the memory ceiling).  A task is re-dispatched with
  exponential backoff + deterministic jitter until it exhausts
  ``max_task_kills`` / ``max_retries``, at which point it is *poison* and
  quarantined as a structured diagnostic instead of retrying forever.
* **Memory ceilings** -- ``memory_limit_mb`` applies
  ``resource.setrlimit(RLIMIT_AS)`` in each worker, converting a runaway
  allocation into a contained ``MemoryError`` (soft failure) or, at
  worst, a worker death the supervisor absorbs -- never pool collapse.
* **Signals** -- ``handle_signals`` opts the run into SIGINT/SIGTERM
  handling: the pool drains, the journal stays flushed, and the run
  raises :class:`~repro.exec.supervisor.RunInterrupted` for the CLI to
  map onto its documented exit code.
* **Chaos** -- ``chaos`` maps task labels to fault injectors from
  :mod:`repro.runtime.faultinject` (``hang_worker``/``kill_worker``/
  ``slow_task``/``oom_task``); production callers leave it ``None``.
* **Progress** -- ``progress`` names a writable text stream for the live
  heartbeat line (tasks done, rate, ETA) the monitor loop repaints every
  ``progress_interval_s``; ``None`` (the default) stays silent.
* **Attribution** -- ``task_spans`` controls whether each attempt is
  recorded as an ``exec.task`` span on the active tracer (queue wait,
  pickle/unpickle cost, byte counts, outcome); see
  :mod:`repro.obs.attrib`.  On by default: recording is a dict append,
  and it only happens when a tracer is active anyway.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Mapping


@dataclass(frozen=True)
class SupervisionPolicy:
    """Deadlines, retry/backoff, ceilings, and hooks for one supervised run."""

    #: Per-attempt wall-clock deadline in seconds; ``None`` disables
    #: hung-worker detection (a task may then run forever).
    deadline_s: float | None = 120.0
    #: Soft-failure retries per task before quarantine (an exception that
    #: escaped the task function while the worker survived).
    max_retries: int = 2
    #: Worker kills (death or deadline) a single task may cause before it
    #: is declared poison and quarantined.
    max_task_kills: int = 2
    #: Exponential backoff: ``base * 2**(failures-1)`` capped at ``cap``,
    #: plus ``jitter`` as a fraction of the computed delay.
    backoff_base_s: float = 0.05
    backoff_cap_s: float = 2.0
    backoff_jitter: float = 0.5
    #: Seed for the jitter RNG -- supervision schedules are reproducible.
    seed: int = 0
    #: Per-worker address-space ceiling (``RLIMIT_AS``) in MiB; ``None``
    #: leaves the OS limits untouched.
    memory_limit_mb: int | None = None
    #: Worker respawns allowed across the run before the supervisor stops
    #: replacing killed workers; ``None`` means ``4 + 2 * jobs``.
    max_respawns: int | None = None
    #: Upper bound on one monitor sleep, so heartbeats and signal flags
    #: stay responsive even when nothing is due.
    poll_interval_s: float = 0.25
    #: Install SIGINT/SIGTERM handlers for the duration of the run
    #: (parent process, main thread only).  Off by default: library
    #: callers should not have their signal disposition changed.
    handle_signals: bool = False
    #: Chaos plan: task label -> ``(fault_name, args)`` resolved by
    #: :func:`repro.runtime.faultinject.apply_worker_fault` inside the
    #: worker.  Test-only; ``None`` in production.
    chaos: Mapping[str, tuple] | None = field(default=None, hash=False)
    #: Record one ``exec.task`` span per attempt (plus ``exec.spawn`` per
    #: worker start) on the active tracer -- the raw material of
    #: ``ucomplexity profile``.  No-op when no tracer is active.
    task_spans: bool = True
    #: Writable text stream for the live heartbeat line (``--progress``);
    #: ``None`` disables it.
    progress: Any | None = field(default=None, hash=False, compare=False)
    #: Seconds between heartbeat repaints when ``progress`` is set.
    progress_interval_s: float = 0.5
    #: Upper bound on tasks batched into one dispatch message.  ``None``
    #: lets the supervisor size chunks adaptively (spread the ready queue
    #: over the idle workers, capped at 16); ``1`` restores strict
    #: one-task-at-a-time dispatch.  Chunking amortizes the per-message
    #: pipe round-trip that profiling showed dominating short tasks; the
    #: deadline still bounds each *task*, not the whole chunk, because a
    #: worker streams one reply per task as it progresses.
    chunk_size: int | None = None

    def __post_init__(self) -> None:
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive (or None)")
        if self.max_retries < 0 or self.max_task_kills < 1:
            raise ValueError("max_retries >= 0 and max_task_kills >= 1 required")
        if self.backoff_base_s < 0 or self.backoff_cap_s < self.backoff_base_s:
            raise ValueError("need 0 <= backoff_base_s <= backoff_cap_s")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError("backoff_jitter must be in [0, 1]")
        if self.memory_limit_mb is not None and self.memory_limit_mb <= 0:
            raise ValueError("memory_limit_mb must be positive (or None)")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be positive")
        if self.progress_interval_s <= 0:
            raise ValueError("progress_interval_s must be positive")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1 (or None for adaptive)")

    def backoff_s(self, failures: int, rng: random.Random) -> float:
        """Delay before re-dispatching a task that failed ``failures`` times.

        Exponential in the failure count, capped, with multiplicative
        jitter drawn from ``rng`` (the supervisor's seeded generator), so
        two poisoned tasks released together do not retry in lockstep.
        """
        if failures < 1:
            raise ValueError("backoff_s needs failures >= 1")
        base = min(
            self.backoff_base_s * (2.0 ** (failures - 1)), self.backoff_cap_s
        )
        return base * (1.0 + self.backoff_jitter * rng.random())

    def respawn_budget(self, jobs: int) -> int:
        """Total worker respawns allowed for a ``jobs``-wide run."""
        if self.max_respawns is not None:
            return self.max_respawns
        return 4 + 2 * max(1, jobs)
