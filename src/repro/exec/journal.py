"""Crash-safe run journal: resume an interrupted batch where it stopped.

A :class:`RunJournal` is an append-only JSONL file mapping *task keys* to
completed :class:`~repro.exec.task.TaskOutcome` payloads.  The supervisor
appends one line per completed task (single ``write`` + flush, so a kill
mid-run loses at most the line being written); a re-run opens the same
file, skips every journaled key without dispatching it, and appends only
the newly finished work.

Keys are content-addressed by the caller (see
:func:`repro.parallel.measure_task_key` and the specialization keys in
:mod:`repro.core.workflow`), so the journal layers on the same
no-invalidation property as the synthesis cache: edit a source file and
its tasks simply stop matching.

Line format (version :data:`JOURNAL_VERSION`)::

    {"v": 1, "salt": "...", "key": "<sha256>", "sha": "<blob sha12>",
     "blob": "<base64 pickle of the TaskOutcome, telemetry stripped>"}

Robustness rules:

* a torn or corrupt trailing line (interrupted write, bad base64, bad
  pickle, checksum mismatch) is skipped and counted in
  ``exec.journal_corrupt`` -- never raised;
* a line whose ``v``/``salt`` does not match is ignored, so stale
  journals from older pipeline revisions quietly stop matching;
* telemetry is stripped before journaling: a resumed run must not replay
  a previous run's counters;
* outcomes carrying a ferried exception (strict-mode failures) and
  supervisor quarantines are *not* journaled -- a resume retries them.

The journal is single-writer: one supervised run per file at a time
(concurrent batch runs should use distinct ``--journal`` paths).
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
from dataclasses import replace
from pathlib import Path

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

from repro.exec.task import TaskOutcome

#: Journal line format revision (bump when the encoding changes).
JOURNAL_VERSION = 1


def content_key(*parts: str) -> str:
    """A SHA-256 key over ``parts`` with unambiguous separators."""
    h = hashlib.sha256()
    for part in parts:
        h.update(b"\x00part\x00")
        h.update(part.encode("utf-8"))
    return h.hexdigest()


def _blob_sha(blob: str) -> str:
    return hashlib.sha256(blob.encode("ascii")).hexdigest()[:12]


class RunJournal:
    """Append-only completed-task journal rooted at ``path``.

    Opening loads every valid entry into memory; :meth:`get` answers
    resume probes and :meth:`record` appends + flushes one completion.
    """

    def __init__(self, path: str | Path, salt: str = "") -> None:
        self.path = Path(path)
        self.salt = salt
        self._outcomes: dict[str, TaskOutcome] = {}
        self._load()

    @classmethod
    def open(
        cls, journal: "RunJournal | str | Path | None", salt: str = ""
    ) -> "RunJournal | None":
        """Normalize a journal argument (path or instance) to an instance."""
        if journal is None or isinstance(journal, RunJournal):
            return journal
        return cls(journal, salt=salt)

    # -- reading -------------------------------------------------------------

    def _load(self) -> None:
        # The replay is part of a resumed run's startup cost, so it is
        # attributed like any other stage: one ``journal.load`` span plus
        # the ``exec.journal_replay_s`` / ``exec.journal_bytes_read``
        # instruments (see DESIGN.md section 12).
        with obs_trace.span("journal.load", path=str(self.path)) as sp:
            try:
                text = self.path.read_text(encoding="utf-8")
            except FileNotFoundError:
                return
            except OSError:
                obs_metrics.counter("exec.journal_corrupt").inc()
                return
            obs_metrics.counter("exec.journal_bytes_read").inc(len(text))
            for line in text.splitlines():
                if not line.strip():
                    continue
                outcome = self._decode(line)
                if outcome is None:
                    obs_metrics.counter("exec.journal_corrupt").inc()
                    continue
                key, value = outcome
                self._outcomes[key] = value
            sp.set_attr("entries", len(self._outcomes))
        if sp.wall_s is not None:
            obs_metrics.histogram("exec.journal_replay_s").observe(sp.wall_s)

    def _decode(self, line: str) -> tuple[str, TaskOutcome] | None:
        try:
            row = json.loads(line)
            if row.get("v") != JOURNAL_VERSION or row.get("salt") != self.salt:
                return None
            key, blob, sha = row["key"], row["blob"], row["sha"]
            if _blob_sha(blob) != sha:
                return None
            value = pickle.loads(base64.b64decode(blob.encode("ascii")))
            if not isinstance(value, TaskOutcome):
                return None
            return str(key), value
        except Exception:  # noqa: BLE001 -- any torn line degrades to a skip
            return None

    def get(self, key: str) -> TaskOutcome | None:
        return self._outcomes.get(key)

    def __contains__(self, key: str) -> bool:
        return key in self._outcomes

    def __len__(self) -> int:
        return len(self._outcomes)

    # -- writing -------------------------------------------------------------

    def record(self, key: str, outcome: TaskOutcome) -> bool:
        """Append one completed task; failures are counted, not raised.

        Telemetry is stripped (a resume must not replay old counters);
        outcomes carrying a ferried exception are refused so a resumed
        strict run retries them.
        """
        if outcome.error is not None:
            return False
        slim = replace(outcome, telemetry=None)
        try:
            blob = base64.b64encode(
                pickle.dumps(slim, protocol=pickle.HIGHEST_PROTOCOL)
            ).decode("ascii")
            line = json.dumps(
                {
                    "v": JOURNAL_VERSION,
                    "salt": self.salt,
                    "key": key,
                    "sha": _blob_sha(blob),
                    "blob": blob,
                },
                sort_keys=True,
            )
            self.path.parent.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(line + "\n")
                fh.flush()
        except Exception:  # noqa: BLE001 -- journaling is best-effort
            obs_metrics.counter("exec.journal_errors").inc()
            return False
        self._outcomes[key] = slim
        obs_metrics.counter("exec.journal_records").inc()
        obs_metrics.counter("exec.journal_bytes_written").inc(len(line) + 1)
        return True
