"""The unit-of-work vocabulary shared by every pool execution strategy.

A *task* is one picklable callable applied to one picklable payload inside
a worker process.  Task functions follow a no-raise contract: whatever
happens inside (a quarantined stage, a strict-mode error to re-raise in
the parent), the function returns a :class:`TaskOutcome` carrying the
value, the ferried exception, the structured diagnostics, and the worker's
observability payload.  Anything that *escapes* a task function -- a
``MemoryError`` under a worker memory ceiling, a chaos fault, a genuine
bug -- is the supervisor's business (retry, backoff, quarantine), not the
caller's.

These classes started life in :mod:`repro.parallel` (which re-exports
them for compatibility) and moved here so the supervised execution layer
(:mod:`repro.exec.supervisor`) can depend on them without importing the
measurement pipeline.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic


@dataclass
class WorkerTelemetry:
    """One worker task's observability payload, shipped back on join."""

    namespace: str
    metrics: dict[str, Any] = field(default_factory=dict)
    spans: list[obs_trace.Span] = field(default_factory=list)


@dataclass
class TaskOutcome:
    """What one pool task produced: a value, an error, or a quarantine."""

    value: Any = None
    error: BaseException | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    telemetry: WorkerTelemetry | None = None


def annotate_worker_stats(
    value: Any,
    *,
    payload_bytes: int,
    unpickle_s: float,
    compute_s: float,
) -> None:
    """Fold one attempt's worker-side costs into the outcome's telemetry.

    The worker loop (:func:`repro.exec.workers.worker_main`) measures what
    only it can see -- the payload's unpickle time and the task's pure
    compute time -- *after* the outcome object exists, so the numbers are
    injected into the telemetry's registry dump rather than recorded
    through the worker's (already closed) registry.  They merge into the
    parent registry on join like every other worker instrument:

    * ``exec.worker_unpickle_s`` / ``exec.worker_compute_s`` histograms;
    * ``exec.worker_payload_bytes`` counter.

    ``value`` is duck-typed: anything without a ``telemetry`` attribute
    (a non-``TaskOutcome`` task) is left untouched.
    """
    telemetry = getattr(value, "telemetry", None)
    if telemetry is None or not isinstance(telemetry.metrics, dict):
        return
    dump = telemetry.metrics
    hists = dump.setdefault("histogram_values", {})
    hists.setdefault("exec.worker_unpickle_s", []).append(float(unpickle_s))
    hists.setdefault("exec.worker_compute_s", []).append(float(compute_s))
    counters = dump.setdefault("counters", {})
    counters["exec.worker_payload_bytes"] = (
        counters.get("exec.worker_payload_bytes", 0.0) + float(payload_bytes)
    )


def run_traced_task(
    fn: Callable[[], tuple[Any, tuple]], namespace: str, capture_trace: bool
) -> TaskOutcome:
    """Run ``fn`` under a private registry/tracer; never raises."""
    registry = obs_metrics.MetricsRegistry()
    tracer = obs_trace.Tracer() if capture_trace else None
    value, error, diagnostics = None, None, ()
    with obs_metrics.using(registry):
        ctx = obs_trace.using(tracer) if tracer is not None else nullcontext()
        with ctx:
            try:
                value, diagnostics = fn()
            except Exception as exc:  # noqa: BLE001 -- ferried to the parent
                error = exc
    return TaskOutcome(
        value=value,
        error=error,
        diagnostics=tuple(diagnostics),
        telemetry=WorkerTelemetry(
            namespace=namespace,
            metrics=registry.dump(),
            spans=list(tracer.spans) if tracer is not None else [],
        ),
    )
