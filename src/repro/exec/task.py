"""The unit-of-work vocabulary shared by every pool execution strategy.

A *task* is one picklable callable applied to one picklable payload inside
a worker process.  Task functions follow a no-raise contract: whatever
happens inside (a quarantined stage, a strict-mode error to re-raise in
the parent), the function returns a :class:`TaskOutcome` carrying the
value, the ferried exception, the structured diagnostics, and the worker's
observability payload.  Anything that *escapes* a task function -- a
``MemoryError`` under a worker memory ceiling, a chaos fault, a genuine
bug -- is the supervisor's business (retry, backoff, quarantine), not the
caller's.

These classes started life in :mod:`repro.parallel` (which re-exports
them for compatibility) and moved here so the supervised execution layer
(:mod:`repro.exec.supervisor`) can depend on them without importing the
measurement pipeline.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Callable, Mapping

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic


@dataclass(frozen=True)
class WorkerContext:
    """Run-invariant state delivered to each worker once, not per task.

    The old wire protocol pickled everything a task needed -- strictness
    flags, cache handles, even whole parsed designs -- into every task
    tuple, which profiling showed dominated dispatch cost.  A
    ``WorkerContext`` carries that invariant state exactly once per
    worker lifetime: the supervisor hands it to ``worker_main`` at spawn
    (under the default ``fork`` start method it is inherited copy-on-write,
    i.e. never serialized at all), and task functions read it back via
    :func:`repro.exec.workers.worker_context`.

    ``values`` is an immutable mapping of whatever the task family needs
    (e.g. a :class:`~repro.exec.blobs.BlobStore`, strict/lint flags, the
    run's trace namespace).  ``preload`` names modules the worker imports
    eagerly at startup so the first task does not pay import cost.
    """

    values: Mapping[str, Any] = field(default_factory=dict)
    preload: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # Freeze the mapping so sharing one context across workers is safe.
        object.__setattr__(self, "values", MappingProxyType(dict(self.values)))

    def __getitem__(self, key: str) -> Any:
        return self.values[key]

    def get(self, key: str, default: Any = None) -> Any:
        return self.values.get(key, default)

    # MappingProxyType is unpicklable; ship the plain dict instead.
    def __getstate__(self) -> dict:
        return {"values": dict(self.values), "preload": self.preload}

    def __setstate__(self, state: dict) -> None:
        object.__setattr__(self, "values", MappingProxyType(state["values"]))
        object.__setattr__(self, "preload", state["preload"])


@dataclass
class WorkerTelemetry:
    """One worker task's observability payload, shipped back on join."""

    namespace: str
    metrics: dict[str, Any] = field(default_factory=dict)
    spans: list[obs_trace.Span] = field(default_factory=list)


@dataclass
class TaskOutcome:
    """What one pool task produced: a value, an error, or a quarantine."""

    value: Any = None
    error: BaseException | None = None
    diagnostics: tuple[Diagnostic, ...] = ()
    telemetry: WorkerTelemetry | None = None


def annotate_worker_stats(
    value: Any,
    *,
    payload_bytes: int,
    unpickle_s: float,
    compute_s: float,
) -> None:
    """Fold one attempt's worker-side costs into the outcome's telemetry.

    The worker loop (:func:`repro.exec.workers.worker_main`) measures what
    only it can see -- the payload's unpickle time and the task's pure
    compute time -- *after* the outcome object exists, so the numbers are
    injected into the telemetry's registry dump rather than recorded
    through the worker's (already closed) registry.  They merge into the
    parent registry on join like every other worker instrument:

    * ``exec.worker_unpickle_s`` / ``exec.worker_compute_s`` histograms;
    * ``exec.worker_payload_bytes`` counter.

    ``value`` is duck-typed: anything without a ``telemetry`` attribute
    (a non-``TaskOutcome`` task) is left untouched.
    """
    telemetry = getattr(value, "telemetry", None)
    if telemetry is None or not isinstance(telemetry.metrics, dict):
        return
    dump = telemetry.metrics
    hists = dump.setdefault("histogram_values", {})
    hists.setdefault("exec.worker_unpickle_s", []).append(float(unpickle_s))
    hists.setdefault("exec.worker_compute_s", []).append(float(compute_s))
    counters = dump.setdefault("counters", {})
    counters["exec.worker_payload_bytes"] = (
        counters.get("exec.worker_payload_bytes", 0.0) + float(payload_bytes)
    )


def run_traced_task(
    fn: Callable[[], tuple[Any, tuple]], namespace: str, capture_trace: bool
) -> TaskOutcome:
    """Run ``fn`` under a private registry/tracer; never raises."""
    registry = obs_metrics.MetricsRegistry()
    tracer = obs_trace.Tracer() if capture_trace else None
    value, error, diagnostics = None, None, ()
    with obs_metrics.using(registry):
        ctx = obs_trace.using(tracer) if tracer is not None else nullcontext()
        with ctx:
            try:
                value, diagnostics = fn()
            except Exception as exc:  # noqa: BLE001 -- ferried to the parent
                error = exc
    return TaskOutcome(
        value=value,
        error=error,
        diagnostics=tuple(diagnostics),
        telemetry=WorkerTelemetry(
            namespace=namespace,
            metrics=registry.dump(),
            spans=list(tracer.spans) if tracer is not None else [],
        ),
    )
