"""The supervisor: a process pool that survives its workers.

:class:`Supervisor.run` executes one homogeneous batch of tasks over a
pool of :mod:`repro.exec.workers` processes and owns every failure mode
the bare executor in :mod:`repro.parallel` could not:

* **Hung workers.**  Each attempt runs under the policy deadline; a
  worker still busy past it is killed and replaced, and the task is
  re-dispatched with exponential backoff + jitter.
* **Dead workers.**  A worker that dies mid-task (OOM kill, SIGKILL,
  segfault) closes its pipe, which wakes the monitor immediately; the
  task is charged one *kill* and retried on a fresh worker.
* **Escaped exceptions.**  Task functions promise not to raise; when
  something escapes anyway (``MemoryError`` under the worker memory
  ceiling, a chaos fault, a bug) the surviving worker reports it and the
  task is charged one *soft failure* and retried.
* **Poison tasks.**  A task that exhausts ``max_task_kills`` kills or
  ``max_retries`` soft failures is quarantined: its outcome is a
  structured :class:`~repro.runtime.diagnostics.Diagnostic` (stage
  ``"exec"``), never an unhandled crash or an infinite retry loop.
* **Resume.**  With a :class:`~repro.exec.journal.RunJournal` and
  content-addressed task keys, completed outcomes are appended as they
  finish; a re-run after a crash skips straight past them.
* **Interrupts.**  With ``policy.handle_signals``, SIGINT/SIGTERM drain
  the pool, leave the journal flushed, and surface as
  :class:`RunInterrupted` for the CLI's documented exit code.
* **Degradation.**  If workers cannot be spawned at all (fork failure,
  respawn budget exhausted with none left alive), the remaining tasks run
  inline in the parent -- slower, without deadlines, never wrong --
  counted in ``parallel.fallback_sequential``.

Telemetry flows through :mod:`repro.obs`: ``exec.dispatched``,
``exec.completed``, ``exec.retries``, ``exec.kills``,
``exec.deadline_kills``, ``exec.worker_deaths``, ``exec.respawns``,
``exec.quarantined``, ``exec.journal_skips``, ``exec.heartbeats``, the
``exec.workers`` gauge, and the ``exec.deadline_margin_s`` histogram
(how close completed tasks came to their deadline).

Cost attribution (the raw material of ``ucomplexity profile`` -- see
:mod:`repro.obs.attrib` / :mod:`repro.obs.timeline`): with an active
tracer, every task *attempt* is recorded as an ``exec.task`` span
positioned on the parent timeline (start = dispatch, end = completion or
kill) carrying the worker lane (``wid``), the task's telemetry namespace
(``ns``), queue wait, payload pickle time/size, result unpickle
time/size, the attempt number, and the outcome (``ok``/``exc``/``kill``).
Worker spawns are recorded as ``exec.spawn`` spans.  The same costs feed
always-on instruments: ``exec.queue_wait_s``/``exec.pickle_s``/
``exec.unpickle_s``/``exec.spawn_s`` histograms and
``exec.payload_bytes``/``exec.result_bytes`` counters, with the
worker-side halves (``exec.worker_unpickle_s``,
``exec.worker_compute_s``, ``exec.worker_payload_bytes``) merged in from
each outcome's telemetry.
"""

from __future__ import annotations

import heapq
import itertools
import math
import random
import signal
import threading
import time
from dataclasses import dataclass
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.runtime.diagnostics import Diagnostic, Severity

from repro.exec.journal import RunJournal
from repro.exec.policy import SupervisionPolicy
from repro.exec.task import TaskOutcome, WorkerContext
from repro.exec.workers import WorkerHandle, using_context

#: Ceiling on adaptive chunk size (``policy.chunk_size=None``): chunks
#: amortize the per-message pipe round-trip, but an over-long chunk
#: serializes work that idle workers could steal, so adaptive sizing
#: spreads the ready queue over the idle workers and never exceeds this.
AUTO_CHUNK_CAP = 16


# -- cross-thread interrupts --------------------------------------------------
#
# Signal handlers only run on the main thread, but the serve daemon runs
# supervised batches on a dispatcher thread while asyncio owns the main
# thread's signal handling.  ``request_interrupt`` is the thread-safe
# equivalent of delivering SIGTERM to a supervised run: the monitor loop
# checks the event alongside its own signal flag and raises
# :class:`RunInterrupted`, draining the pool and flushing the journal the
# same way.  The flag is process-global (one serve daemon per process);
# ``clear_interrupt`` resets it before a new run.

_EXTERNAL_INTERRUPT = threading.Event()
_EXTERNAL_SIGNUM: int = int(signal.SIGTERM)


def request_interrupt(signum: int = signal.SIGTERM) -> None:
    """Ask every running (and future) supervised batch to stop draining."""
    global _EXTERNAL_SIGNUM
    _EXTERNAL_SIGNUM = int(signum)
    _EXTERNAL_INTERRUPT.set()


def clear_interrupt() -> None:
    """Re-arm supervised execution after :func:`request_interrupt`."""
    _EXTERNAL_INTERRUPT.clear()


def interrupt_requested() -> bool:
    """Whether a cross-thread interrupt is pending."""
    return _EXTERNAL_INTERRUPT.is_set()


class RunInterrupted(RuntimeError):
    """A supervised run was stopped by SIGINT/SIGTERM.

    Completed tasks are already journaled; ``completed``/``total`` report
    how far the run got so the CLI can say so before exiting.
    """

    def __init__(self, signum: int, completed: int, total: int) -> None:
        self.signum = signum
        self.completed = completed
        self.total = total
        try:
            name = signal.Signals(signum).name
        except ValueError:
            name = f"signal {signum}"
        super().__init__(
            f"run interrupted by {name}: {completed}/{total} tasks finished "
            "(journaled results are preserved; re-run with the same "
            "--journal to resume)"
        )


@dataclass
class _TaskState:
    """Supervision bookkeeping for one task of the batch."""

    index: int
    payload: Any
    label: str
    key: str | None = None
    namespace: str | None = None
    soft_failures: int = 0
    kills: int = 0
    not_before: float = 0.0
    enqueued_at: float = 0.0
    last_detail: str = ""

    @property
    def attempts(self) -> int:
        return self.soft_failures + self.kills


#: Recovery hint attached to every quarantine diagnostic.
QUARANTINE_HINT = (
    "the task repeatedly hung, crashed, or exhausted its worker and was "
    "quarantined; the rest of the batch is unaffected -- inspect the "
    "component (or raise the deadline / memory ceiling) and re-run"
)


class Supervisor:
    """Run batches of picklable tasks under deadlines, retries, and a journal."""

    def __init__(self, jobs: int, policy: SupervisionPolicy | None = None) -> None:
        self.jobs = max(1, int(jobs))
        self.policy = policy or SupervisionPolicy()
        self._rng = random.Random(self.policy.seed)
        self._signal: int | None = None

    # -- public entry point --------------------------------------------------

    def run(
        self,
        task: Callable[[Any], TaskOutcome],
        payloads: Sequence[Any],
        *,
        keys: Sequence[str] | None = None,
        labels: Sequence[str] | None = None,
        journal: RunJournal | None = None,
        namespaces: Sequence[str] | None = None,
        context: WorkerContext | None = None,
    ) -> list[TaskOutcome]:
        """Execute ``task`` over ``payloads``; outcomes align with payloads.

        ``keys`` (content-addressed, parallel to ``payloads``) enable the
        journal: journaled keys are returned without dispatch, completed
        tasks are appended as they finish.  ``labels`` name tasks in
        diagnostics and chaos plans (default ``task<i>``).  ``namespaces``
        (parallel to ``payloads``) are the tasks' worker-telemetry
        namespaces; when given, each ``exec.task`` span carries its task's
        namespace as the ``ns`` attribute, which is what lets the timeline
        re-base grafted worker span trees onto the parent clock.
        ``context`` is the run-invariant :class:`WorkerContext` delivered
        to each worker once at spawn (and installed around the parent's
        own inline execution paths), instead of being pickled into every
        task payload.
        """
        n = len(payloads)
        if labels is None:
            labels = [f"task{i}" for i in range(n)]
        if keys is None or journal is None:
            keys = [None] * n  # type: ignore[list-item]
        outcomes: list[TaskOutcome | None] = [None] * n

        skipped = 0
        for i in range(n):
            if keys[i] is not None and journal is not None:
                done = journal.get(keys[i])
                if done is not None:
                    outcomes[i] = done
                    skipped += 1
        if skipped:
            obs_metrics.counter("exec.journal_skips").inc(skipped)
        states = [
            _TaskState(index=i, payload=payloads[i], label=labels[i],
                       key=keys[i],
                       namespace=namespaces[i] if namespaces else None)
            for i in range(n)
            if outcomes[i] is None
        ]
        if not states:
            return [o for o in outcomes if o is not None]

        task, states = self._apply_chaos(task, states)
        obs_metrics.gauge("parallel.jobs").set(self.jobs)
        with obs_trace.span(
            "exec.supervised", tasks=len(states), jobs=self.jobs,
            skipped=skipped,
        ):
            with self._signals_installed():
                self._run_supervised(task, states, outcomes, journal, context)
        # Every slot is filled on a normal exit; the guard keeps alignment
        # even if a future refactor leaks a hole.  It runs in-process, so
        # the worker context must be installed around it.
        payload_by_index = {s.index: s.payload for s in states}
        if any(o is None for o in outcomes):
            with using_context(context):
                for i, outcome in enumerate(outcomes):
                    if outcome is None:
                        outcomes[i] = task(payload_by_index[i])
        return outcomes  # type: ignore[return-value]

    # -- chaos ----------------------------------------------------------------

    def _apply_chaos(self, task, states):
        """Wrap payloads per the policy's chaos plan (test harness only)."""
        plan = self.policy.chaos
        if not plan:
            return task, states
        from repro.runtime.faultinject import chaos_task

        for state in states:
            fault = plan.get(state.label)
            state.payload = (fault, task, state.payload)
        return chaos_task, states

    # -- signal handling ------------------------------------------------------

    def _signals_installed(self):
        from contextlib import contextmanager

        @contextmanager
        def ctx():
            installed: list[tuple[int, Any]] = []
            if (
                self.policy.handle_signals
                and threading.current_thread() is threading.main_thread()
            ):
                def handler(signum, frame):  # noqa: ARG001
                    self._signal = signum

                for sig in (signal.SIGINT, signal.SIGTERM):
                    try:
                        installed.append((sig, signal.signal(sig, handler)))
                    except (ValueError, OSError):
                        pass
            try:
                yield
            finally:
                for sig, prev in installed:
                    try:
                        signal.signal(sig, prev)
                    except (ValueError, OSError):
                        pass

        return ctx()

    # -- the monitor loop -----------------------------------------------------

    def _run_supervised(
        self,
        task: Callable[[Any], TaskOutcome],
        states: list[_TaskState],
        outcomes: list[TaskOutcome | None],
        journal: RunJournal | None,
        context: WorkerContext | None = None,
    ) -> None:
        policy = self.policy
        total = len(states)
        queued: list[_TaskState] = list(states)
        by_index = {s.index: s for s in states}
        workers: list[WorkerHandle] = []
        respawns_left = policy.respawn_budget(self.jobs)
        completed = 0

        # Attribution clock: exec.task/exec.spawn spans are timed on the
        # monotonic clock but recorded on the tracer's timeline; this pins
        # the two clocks together once so every recorded instant lands at
        # its true position relative to the stack-managed spans.
        tracer = obs_trace.active() if policy.task_spans else None
        mono_epoch = time.monotonic()
        trace_epoch = tracer.now() if tracer is not None else 0.0

        def rel(mono_instant: float) -> float:
            return trace_epoch + (mono_instant - mono_epoch)

        for state in states:
            state.enqueued_at = mono_epoch

        # Lane pool: a respawned worker takes over its dead predecessor's
        # lane (lowest freed lane first) instead of a fresh id, so a
        # kill/respawn cycle does not proliferate timeline Gantt lanes.
        # ``lane_gen`` counts takeovers per lane; the generation is
        # recorded on the exec.spawn span as ``respawn`` so the timeline
        # can label the lane "w1(+2)".
        lane_seq = itertools.count()
        free_lanes: list[int] = []
        lane_gen: dict[int, int] = {}
        progress_last = 0.0
        progress_painted = 0

        def paint_progress(final: bool = False) -> None:
            """Repaint the live heartbeat line (tasks/s, ETA) in place."""
            nonlocal progress_last, progress_painted
            stream = policy.progress
            if stream is None:
                return
            now = time.monotonic()
            if not final and now - progress_last < policy.progress_interval_s:
                return
            progress_last = now
            elapsed = max(now - mono_epoch, 1e-9)
            rate = completed / elapsed
            if completed >= total:
                eta = "0s"
            elif rate > 0:
                eta = f"{(total - completed) / rate:.0f}s"
            else:
                eta = "?"
            line = (
                f"[exec] {completed}/{total} tasks  {rate:.1f}/s  "
                f"eta {eta}  workers {len(workers)}  queued {len(queued)}"
            )
            try:
                stream.write("\r" + line.ljust(progress_painted))
                if final:
                    stream.write("\n")
                stream.flush()
            except (OSError, ValueError):
                return
            progress_painted = max(progress_painted, len(line))

        def record_task_span(
            w: WorkerHandle, state: _TaskState, outcome: str,
            error: str | None = None,
        ) -> None:
            """One finished attempt -> one ``exec.task`` span."""
            if tracer is None:
                return
            wall = max(time.monotonic() - w.started_at, 0.0)
            tracer.record_span(
                "exec.task",
                rel(w.started_at),
                wall,
                status="ok" if outcome == "ok" else "error",
                error=error,
                task=state.label,
                index=state.index,
                wid=w.wid,
                ns=state.namespace,
                attempt=state.attempts + 1,
                outcome=outcome,
                queue_wait_s=round(w.queue_wait_s, 9),
                pickle_s=round(w.pickle_s, 9),
                payload_bytes=w.payload_bytes,
                unpickle_s=round(w.unpickle_s, 9),
                result_bytes=w.result_bytes,
            )

        def spawn() -> WorkerHandle | None:
            t0 = time.monotonic()
            lane = heapq.heappop(free_lanes) if free_lanes else next(lane_seq)
            gen = lane_gen.get(lane, -1) + 1
            try:
                w = WorkerHandle(task, policy.memory_limit_mb,
                                 wid=f"w{lane}", context=context)
            except OSError:
                heapq.heappush(free_lanes, lane)
                return None
            lane_gen[lane] = gen
            w.lane = lane  # type: ignore[attr-defined]
            spawn_s = time.monotonic() - t0
            obs_metrics.histogram("exec.spawn_s").observe(spawn_s)
            if tracer is not None:
                tracer.record_span("exec.spawn", rel(t0), spawn_s,
                                   wid=w.wid, respawn=gen)
            workers.append(w)
            obs_metrics.gauge("exec.workers").set(len(workers))
            return w

        def retire(w: WorkerHandle) -> None:
            w.kill()
            if w in workers:
                workers.remove(w)
                heapq.heappush(free_lanes, w.lane)  # type: ignore[attr-defined]
            obs_metrics.gauge("exec.workers").set(len(workers))

        def quarantine(state: _TaskState, reason: str) -> None:
            nonlocal completed
            obs_metrics.counter("exec.quarantined").inc()
            outcomes[state.index] = TaskOutcome(
                value=None,
                error=None,
                diagnostics=(
                    Diagnostic(
                        severity=Severity.ERROR,
                        stage="exec",
                        message=(
                            f"{state.label}: task quarantined after "
                            f"{state.kills} worker kill(s) and "
                            f"{state.soft_failures} failed attempt(s): "
                            f"{reason}"
                        ),
                        component=state.label,
                        hint=QUARANTINE_HINT,
                    ),
                ),
            )
            completed += 1

        def task_failed(state: _TaskState, *, kill: bool, reason: str) -> None:
            """Charge one failure; requeue with backoff or quarantine."""
            state.last_detail = reason
            if kill:
                state.kills += 1
                obs_metrics.counter("exec.kills").inc()
                exhausted = state.kills >= policy.max_task_kills
            else:
                state.soft_failures += 1
                exhausted = state.soft_failures > policy.max_retries
            if exhausted:
                quarantine(state, reason)
                return
            obs_metrics.counter("exec.retries").inc()
            state.not_before = time.monotonic() + policy.backoff_s(
                state.attempts, self._rng
            )
            state.enqueued_at = time.monotonic()
            queued.append(state)

        def advance_worker(w: WorkerHandle) -> None:
            """Resolve the chunk head; surface the next queued task (if any)
            as the new in-flight attempt with its own deadline and costs."""
            w.advance()
            head = w.task_idx
            if head is None:
                return
            st = by_index.get(head)
            if st is not None:
                w.queue_wait_s = max(
                    time.monotonic() - max(st.enqueued_at, st.not_before), 0.0
                )
            obs_metrics.histogram("exec.queue_wait_s").observe(w.queue_wait_s)
            obs_metrics.histogram("exec.pickle_s").observe(w.pickle_s)
            obs_metrics.counter("exec.payload_bytes").inc(w.payload_bytes)

        def worker_lost(w: WorkerHandle, reason: str) -> None:
            """A worker died or was killed; charge its in-flight task (the
            chunk head), requeue the chunk's unstarted remainder uncharged,
            and replace the worker."""
            nonlocal respawns_left
            state = by_index.get(w.task_idx) if w.task_idx is not None else None
            if state is not None and outcomes[state.index] is None:
                record_task_span(w, state, "kill", error=reason)
            mates = [by_index[i] for i in list(w.chunk)[1:] if i in by_index]
            retire(w)
            now = time.monotonic()
            for mate in mates:
                if outcomes[mate.index] is None:
                    mate.enqueued_at = now
                    queued.append(mate)
            if state is not None:
                task_failed(state, kill=True, reason=reason)
            if completed < total and respawns_left > 0:
                if spawn() is not None:
                    respawns_left -= 1
                    obs_metrics.counter("exec.respawns").inc()

        def complete(w: WorkerHandle, outcome: TaskOutcome) -> None:
            nonlocal completed
            state = by_index.get(w.task_idx if w.task_idx is not None else -1)
            deadline_at = w.deadline_at
            if state is None or outcomes[state.index] is not None:
                advance_worker(w)
                return  # stale reply for a task already resolved
            record_task_span(w, state, "ok")
            advance_worker(w)
            if deadline_at is not None:
                obs_metrics.histogram("exec.deadline_margin_s").observe(
                    deadline_at - time.monotonic()
                )
            outcomes[state.index] = outcome
            completed += 1
            obs_metrics.counter("exec.completed").inc()
            obs_metrics.counter("parallel.tasks").inc()
            if journal is not None and state.key is not None:
                journal.record(state.key, outcome)

        # Initial pool: one worker per job, capped by the work available.
        for _ in range(min(self.jobs, total)):
            if spawn() is None:
                break

        try:
            while completed < total:
                if self._signal is not None:
                    raise RunInterrupted(self._signal, completed, total)
                if _EXTERNAL_INTERRUPT.is_set():
                    raise RunInterrupted(_EXTERNAL_SIGNUM, completed, total)
                paint_progress()

                if not workers:
                    # No pool at all (or respawn budget exhausted with every
                    # worker dead): degrade to inline execution, the same
                    # never-wrong fallback the bare pool documented.  A task
                    # that already killed a worker never runs inline -- it
                    # would take the parent down with it -- so it is
                    # quarantined on the spot.
                    obs_metrics.counter("parallel.fallback_sequential").inc()
                    for state in queued:
                        if outcomes[state.index] is not None:
                            continue
                        if state.kills > 0:
                            quarantine(
                                state,
                                state.last_detail
                                or "worker pool lost; task not safe inline",
                            )
                            continue
                        t0 = time.monotonic()
                        with using_context(context):
                            outcome = task(state.payload)
                        if tracer is not None:
                            tracer.record_span(
                                "exec.task", rel(t0),
                                max(time.monotonic() - t0, 0.0),
                                task=state.label, index=state.index,
                                wid="inline", ns=state.namespace,
                                attempt=state.attempts + 1, outcome="ok",
                                queue_wait_s=round(max(t0 - state.enqueued_at,
                                                       0.0), 9),
                                pickle_s=0.0, payload_bytes=0,
                                unpickle_s=0.0, result_bytes=0,
                            )
                        outcomes[state.index] = outcome
                        completed += 1
                        obs_metrics.counter("exec.completed").inc()
                        obs_metrics.counter("parallel.tasks").inc()
                        if journal is not None and state.key is not None:
                            journal.record(state.key, outcome)
                        paint_progress()
                    queued.clear()
                    continue

                now = time.monotonic()
                # Dispatch ready tasks (lowest index first) to idle workers
                # in chunks: the ready queue is spread evenly over the idle
                # workers (so nobody starves) up to the policy's chunk cap,
                # amortizing the per-message round-trip that dominates
                # short tasks.  Workers stream one reply per task, so
                # deadlines and failure charging stay per-task.
                queued.sort(key=lambda s: s.index)
                ready = [s for s in queued if s.not_before <= now]
                idle = [w for w in workers if not w.busy]
                if ready and idle:
                    cap = policy.chunk_size or AUTO_CHUNK_CAP
                    per_worker = max(
                        1, min(cap, math.ceil(len(ready) / len(idle)))
                    )
                    pos = 0
                    for w in idle:
                        batch = ready[pos:pos + per_worker]
                        if not batch:
                            break
                        try:
                            w.dispatch(
                                [(s.index, s.payload) for s in batch],
                                policy.deadline_s,
                            )
                        except (BrokenPipeError, OSError):
                            # Idle worker died between chunks: the batch was
                            # never recorded on the handle, so it stays in
                            # the queue untouched.
                            obs_metrics.counter("exec.worker_deaths").inc()
                            worker_lost(w, "worker died while idle")
                            break
                        pos += len(batch)
                        for s in batch:
                            queued.remove(s)
                        head = batch[0]
                        w.queue_wait_s = max(
                            time.monotonic()
                            - max(head.enqueued_at, head.not_before),
                            0.0,
                        )
                        obs_metrics.counter("exec.dispatched").inc(len(batch))
                        obs_metrics.histogram("exec.queue_wait_s").observe(
                            w.queue_wait_s
                        )
                        obs_metrics.histogram("exec.pickle_s").observe(
                            w.pickle_s
                        )
                        obs_metrics.counter("exec.payload_bytes").inc(
                            w.payload_bytes
                        )

                # Sleep until something can happen: a result, a deadline,
                # a backoff release, or the heartbeat tick.
                timeout = policy.poll_interval_s
                for w in workers:
                    if w.busy and w.deadline_at is not None:
                        timeout = min(timeout, max(w.deadline_at - now, 0.0))
                for state in queued:
                    if state.not_before > now:
                        timeout = min(timeout, state.not_before - now)
                busy = [w for w in workers if w.busy]
                obs_metrics.counter("exec.heartbeats").inc()
                if busy:
                    ready_conns = mp_connection.wait(
                        [w.conn for w in busy], timeout
                    )
                    conn_map = {w.conn: w for w in busy}
                    for conn in ready_conns:
                        w = conn_map[conn]
                        # Drain every reply this worker has streamed so far
                        # (a chunk produces several per wakeup), stopping
                        # when its buffer is empty or its chunk is done.
                        while True:
                            try:
                                msg = w.recv_message()
                            except (EOFError, OSError):
                                obs_metrics.counter("exec.worker_deaths").inc()
                                worker_lost(w, "worker process died mid-task")
                                break
                            obs_metrics.histogram("exec.unpickle_s").observe(
                                w.unpickle_s
                            )
                            obs_metrics.counter("exec.result_bytes").inc(
                                w.result_bytes
                            )
                            kind, task_id, *rest = msg
                            if task_id != w.task_idx:
                                pass  # reply for a task already re-routed
                            elif kind == "ok":
                                complete(w, rest[0])
                            else:
                                exc_type, exc_text = rest
                                state = by_index[task_id]
                                if outcomes[state.index] is None:
                                    record_task_span(
                                        w, state, "exc",
                                        error=f"{exc_type}: {exc_text}",
                                    )
                                advance_worker(w)
                                if outcomes[state.index] is None:
                                    task_failed(
                                        state, kill=False,
                                        reason=f"{exc_type}: {exc_text}",
                                    )
                            if not w.busy:
                                break
                            try:
                                if not w.conn.poll():
                                    break
                            except (OSError, ValueError):
                                break
                elif timeout > 0:
                    time.sleep(timeout)

                # Deadline scan: anything still busy past its deadline hangs.
                now = time.monotonic()
                for w in list(workers):
                    if w.busy and w.deadline_at is not None and now > w.deadline_at:
                        obs_metrics.counter("exec.deadline_kills").inc()
                        elapsed = now - w.started_at
                        worker_lost(
                            w,
                            f"attempt exceeded the {policy.deadline_s:.6g}s "
                            f"deadline (ran {elapsed:.1f}s); worker killed",
                        )
        finally:
            for w in list(workers):
                if w.busy:
                    w.kill()
                else:
                    w.shutdown()
            workers.clear()
            obs_metrics.gauge("exec.workers").set(0)
            if progress_painted:
                paint_progress(final=True)
