"""Content-addressed blob transfer for the warm worker pool.

The profiling work behind ``ucomplexity profile`` showed that the old
parallel path shipped every task's full payload -- HDL source text,
parsed designs, cache handles -- through the worker pipe on *every*
dispatch.  A :class:`BlobStore` replaces that with reference semantics:

* the parent :meth:`~BlobStore.put`\\ s each heavy object once, getting
  back a :class:`BlobRef` (the SHA-256 of the object's pickle, i.e. a
  content hash -- identical objects share one blob);
* task payloads carry only the tiny ref; workers :meth:`~BlobStore.get`
  the object on first use and keep it in a per-process cache, so a
  worker deserializes each design/spec **once per run**, not once per
  task;
* the on-disk file is memory-mapped for the load, so under the default
  ``fork`` start method the page cache (and, for blobs put before the
  pool spawned, the parent's already-materialized object cache) is
  shared for free.

The store is a plain directory of ``<sha256>.blob`` files under a
private temp dir; :meth:`put` writes atomically (temp + rename), so a
parent and a late worker racing on the same content are safe -- last
writer wins with identical bytes.  The object itself pickles as just the
directory path: each process that receives it starts with an empty local
cache and faults blobs in on demand.

Lifetime: the pool run that creates the store owns it; :meth:`close`
removes the directory after the workers are gone.  Refs never outlive
their store -- they are run-scoped handles, not durable keys (the
durable, salted key space is :mod:`repro.cache`).
"""

from __future__ import annotations

import hashlib
import mmap
import os
import pickle
import shutil
import tempfile
from pathlib import Path
from typing import Any


class BlobRef(str):
    """A content hash naming one object in a :class:`BlobStore`."""

    __slots__ = ()


class BlobError(RuntimeError):
    """A ref could not be resolved (missing/corrupt blob file)."""


class BlobStore:
    """A run-scoped, content-addressed object store shared with workers."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        # Per-process materialized-object cache: the whole point of the
        # store.  Not pickled (see __getstate__): every process resolves
        # refs against its own cache, falling back to the mmap'd file.
        self._cache: dict[str, Any] = {}

    @classmethod
    def create(cls, prefix: str = "ucx-blobs-") -> "BlobStore":
        """A fresh store under a private temp directory."""
        return cls(tempfile.mkdtemp(prefix=prefix))

    # -- pickling: the path travels, the cache stays home ---------------------

    def __getstate__(self) -> dict:
        return {"directory": self.directory}

    def __setstate__(self, state: dict) -> None:
        self.directory = state["directory"]
        self._cache = {}

    # -- put / get ------------------------------------------------------------

    def _path(self, ref: str) -> Path:
        return self.directory / f"{ref}.blob"

    def put(self, obj: Any) -> BlobRef:
        """Store one object; returns its content ref.

        Identical objects (equal pickles) share one blob and one ref.
        The parent's local cache is primed with the live object, so
        in-parent resolution (inline fallback, journal replay) is free.
        """
        buf = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        ref = BlobRef(hashlib.sha256(buf).hexdigest())
        path = self._path(ref)
        if not path.exists():
            self.directory.mkdir(parents=True, exist_ok=True)
            fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
            try:
                with os.fdopen(fd, "wb") as fh:
                    fh.write(buf)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
        self._cache[ref] = obj
        return ref

    def get(self, ref: str) -> Any:
        """Resolve a ref to its object (cached per process after first use)."""
        try:
            return self._cache[ref]
        except KeyError:
            pass
        path = self._path(ref)
        try:
            with open(path, "rb") as fh:
                size = os.fstat(fh.fileno()).st_size
                if size == 0:
                    raise BlobError(f"empty blob {ref[:12]}")
                with mmap.mmap(fh.fileno(), size,
                               access=mmap.ACCESS_READ) as mapped:
                    obj = pickle.loads(mapped)
        except BlobError:
            raise
        except FileNotFoundError:
            raise BlobError(
                f"unknown blob ref {ref[:12]} (store closed or never put?)"
            ) from None
        except Exception as exc:  # noqa: BLE001 -- corrupt file, bad pickle
            raise BlobError(
                f"corrupt blob {ref[:12]}: {type(exc).__name__}: {exc}"
            ) from exc
        self._cache[ref] = obj
        return obj

    def __contains__(self, ref: str) -> bool:
        return ref in self._cache or self._path(ref).exists()

    def __len__(self) -> int:
        if not self.directory.is_dir():
            return 0
        return sum(1 for _ in self.directory.glob("*.blob"))

    # -- lifetime -------------------------------------------------------------

    def close(self) -> None:
        """Drop the on-disk store (the owning run is over)."""
        self._cache.clear()
        shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "BlobStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()
